//! Golden test for the semantic analyses over a small fixture tree.
//!
//! The fixture is a miniature workspace (an "engine" crate with two modules
//! plus an out-of-crate caller) exercising every resolution shape the call
//! graph supports — same-file free calls, cross-module free calls, inherent
//! methods through `self` and through typed receivers — and each semantic
//! rule end to end through the public [`pygko_analysis::lint_sources`]
//! entry point.

use pygko_analysis::callgraph::{CallGraph, CallKind};
use pygko_analysis::model::{crate_of, FileModel, Workspace};
use pygko_analysis::tokenizer::LintSource;
use pygko_analysis::{lint_sources, RULE_ATOMIC_ORDERING, RULE_LOCK_ORDER, RULE_PANIC_REACH};
use std::collections::BTreeMap;

const STORE_RS: &str = r#"
use std::sync::Mutex;

pub struct Store {
    slot: Mutex<Option<usize>>, // lock: store.slot
    journal: Mutex<Vec<usize>>, // lock: store.journal
}

impl Store {
    pub fn publish(&self, v: usize) {
        let mut slot = self.slot.lock().unwrap_or_default();
        crate::journal::append(self, v);
        *slot = Some(v);
    }

    pub fn record(&self, v: usize) {
        let mut j = self.journal.lock().unwrap_or_default();
        j.push(v);
    }
}
"#;

const JOURNAL_RS: &str = r#"
pub fn append(store: &crate::store::Store, v: usize) {
    store.record(v);
}
"#;

const FACADE_RS: &str = r#"
pub fn publish_twice(store: &gko_fixture::store::Store) {
    store.publish(1);
    store.publish(2);
}
"#;

fn fixture() -> Vec<(&'static str, &'static str)> {
    vec![
        ("crates/engine/src/store.rs", STORE_RS),
        ("crates/engine/src/journal.rs", JOURNAL_RS),
        ("crates/core/src/facade.rs", FACADE_RS),
    ]
}

fn workspace() -> Workspace {
    let models = fixture()
        .into_iter()
        .map(|(p, s)| FileModel {
            path: p.to_string(),
            krate: crate_of(p),
            source: LintSource::parse(s),
        })
        .collect();
    let mut deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
    deps.insert("core".into(), vec!["engine".into()]);
    deps.insert("engine".into(), vec![]);
    Workspace::build(models, &deps)
}

fn fn_id(ws: &Workspace, label: &str) -> usize {
    ws.functions
        .iter()
        .position(|f| f.label() == label)
        .unwrap_or_else(|| panic!("fixture function `{label}` not found"))
}

#[test]
fn cross_module_free_call_resolves() {
    let ws = workspace();
    let graph = CallGraph::build(&ws);
    let publish = fn_id(&ws, "Store::publish");
    let append = fn_id(&ws, "append");
    let site = graph.calls[publish]
        .iter()
        .find(|c| c.name == "append")
        .expect("publish calls append");
    assert_eq!(site.kind, CallKind::Free);
    assert_eq!(site.targets, vec![append]);
}

#[test]
fn method_call_through_typed_receiver_resolves() {
    let ws = workspace();
    let graph = CallGraph::build(&ws);
    let append = fn_id(&ws, "append");
    let record = fn_id(&ws, "Store::record");
    let site = graph.calls[append]
        .iter()
        .find(|c| c.name == "record")
        .expect("append calls record");
    assert_eq!(site.kind, CallKind::Method);
    assert_eq!(site.targets, vec![record]);
}

#[test]
fn cross_crate_method_call_respects_dependency_direction() {
    let ws = workspace();
    let graph = CallGraph::build(&ws);
    let caller = fn_id(&ws, "publish_twice");
    let publish = fn_id(&ws, "Store::publish");
    // core depends on engine, so the facade's `store.publish(..)` resolves
    // into the engine crate.
    let sites: Vec<_> = graph.calls[caller]
        .iter()
        .filter(|c| c.name == "publish")
        .collect();
    assert_eq!(sites.len(), 2);
    for site in sites {
        assert_eq!(site.targets, vec![publish]);
    }
}

#[test]
fn interprocedural_lock_cycle_is_reported_with_chain() {
    // `publish` holds store.slot and calls (via journal::append) `record`,
    // which takes store.journal — and a second entry point takes them in
    // the opposite order. The cycle witness must name both hops.
    let mut files = fixture();
    files.push((
        "crates/engine/src/reorder.rs",
        r#"
pub fn drain(store: &crate::store::Store) {
    let j = store.journal.lock().unwrap_or_default();
    let s = store.slot.lock().unwrap_or_default();
    let _ = (j, s);
}
"#,
    ));
    let diags = lint_sources(&files);
    let cycle: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == RULE_LOCK_ORDER)
        .collect();
    assert!(
        cycle.iter().any(|d| d.message.contains("lock-order cycle")
            && d.message.contains("store.slot")
            && d.message.contains("store.journal")
            && d.message.contains("crates/engine/src/")),
        "expected a cycle naming both locks with file:line witnesses, got: {diags:?}"
    );
}

#[test]
fn clean_fixture_has_no_semantic_diagnostics() {
    // Without the reordered acquisition the fixture is consistent:
    // slot -> journal only.
    let diags = lint_sources(&fixture());
    let semantic: Vec<_> = diags
        .iter()
        .filter(|d| {
            d.rule == RULE_LOCK_ORDER
                || d.rule == RULE_ATOMIC_ORDERING
                || d.rule == RULE_PANIC_REACH
        })
        .collect();
    assert!(semantic.is_empty(), "expected clean fixture, got: {semantic:?}");
}

#[test]
fn panic_reach_crosses_modules_with_witness_chain() {
    let files = vec![
        (
            "crates/engine/src/matrix/kernel.rs",
            "pub fn spmv() {\n    crate::helpers::checked_div(1, 0);\n}\n",
        ),
        (
            "crates/engine/src/helpers.rs",
            "pub fn checked_div(a: usize, b: usize) -> usize {\n    a.checked_div(b).unwrap()\n}\n",
        ),
    ];
    let diags = lint_sources(&files);
    let reach: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == RULE_PANIC_REACH)
        .collect();
    assert_eq!(reach.len(), 1, "got: {diags:?}");
    assert_eq!(reach[0].path, "crates/engine/src/matrix/kernel.rs");
    assert!(
        reach[0].message.contains("checked_div")
            && reach[0].message.contains("crates/engine/src/helpers.rs:2"),
        "witness chain should name the panic site file:line, got: {}",
        reach[0].message
    );
}
