//! A line-oriented approximate Rust lexer.
//!
//! The lint rules only need to know, per line, (a) what the *code* says with
//! comments and literal contents blanked out, (b) what the *comments* say,
//! and (c) whether the line sits inside a `#[cfg(test)]` item. A full parser
//! would be overkill for an in-tree gate; this state machine handles the
//! constructs that actually trip naive `grep`-style linting: line and nested
//! block comments, string/byte-string literals with escapes, raw strings
//! (`r#"…"#`), and the char-literal vs. lifetime ambiguity (`'a'` vs `'a`).
//!
//! Masking preserves line structure exactly: masked output has the same
//! number of lines as the input, with literal contents replaced by spaces
//! (delimiters kept) and comment text removed from the code channel, so
//! every diagnostic's `file:line` points at the real source.

/// One source line after lexing.
#[derive(Clone, Debug, Default)]
pub struct Masked {
    /// The line's code with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated comment text appearing on this line (markers stripped),
    /// or `None` if the line carries no comment.
    pub comment: Option<String>,
    /// True when the line's comment is a doc comment (`///`, `//!`, `/**`,
    /// `/*!`).
    pub doc: bool,
}

/// A parsed `// lint: allow(<rule>): <justification>` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// The stated justification (may be empty — the lint flags that).
    pub justification: String,
}

/// A function item discovered in the masked code.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// The masked text of the function body (between its outer braces);
    /// empty for bodyless trait-method declarations.
    pub body: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// True when the function sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// A lexed source file, ready for rule checks.
pub struct LintSource {
    /// Per-line lexing results.
    pub lines: Vec<Masked>,
    allows: Vec<Vec<Allow>>,
    in_test: Vec<bool>,
    /// All masked lines joined with `\n` (for multi-line scans).
    full: String,
    /// Byte offset of each line's start within `full`.
    line_starts: Vec<usize>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
}

impl LintSource {
    /// Lexes a source file.
    pub fn parse(src: &str) -> Self {
        let lines = mask(src);
        // Doc comments never carry directives — prose describing the
        // allow syntax must not activate it.
        let allows: Vec<Vec<Allow>> = lines
            .iter()
            .map(|l| {
                if l.doc {
                    Vec::new()
                } else {
                    l.comment.as_deref().map_or_else(Vec::new, parse_allows)
                }
            })
            .collect();
        let mut full = String::new();
        let mut line_starts = Vec::with_capacity(lines.len());
        for l in &lines {
            line_starts.push(full.len());
            full.push_str(&l.code);
            full.push('\n');
        }
        let mut in_test = vec![false; lines.len()];
        mark_test_regions(&full, &line_starts, &mut in_test);
        LintSource {
            lines,
            allows,
            in_test,
            full,
            line_starts,
        }
    }

    /// The masked code of a line (comments stripped, literals blanked).
    pub fn code(&self, line: usize) -> &str {
        &self.lines[line].code
    }

    /// True when `line` (0-based) is inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: usize) -> bool {
        self.in_test.get(line).copied().unwrap_or(false)
    }

    /// The `lint: allow(...)` directives governing `line`: those written on
    /// the line itself plus any on an unbroken run of comment-only or blank
    /// lines immediately above it.
    pub fn allow_at(&self, line: usize) -> Vec<&Allow> {
        let mut out: Vec<&Allow> = self.allows[line].iter().collect();
        let mut l = line;
        while l > 0 {
            l -= 1;
            let code_empty = self.lines[l].code.trim().is_empty();
            if !code_empty {
                break;
            }
            out.extend(self.allows[l].iter());
        }
        out
    }

    /// Every allow directive in the file, with its 0-based line.
    pub fn all_allows(&self) -> impl Iterator<Item = (usize, &Allow)> {
        self.allows
            .iter()
            .enumerate()
            .flat_map(|(line, v)| v.iter().map(move |a| (line, a)))
    }

    /// Extracts `fn` items (free functions and methods) from the masked
    /// code by brace matching.
    pub fn functions(&self) -> Vec<FnInfo> {
        let bytes = self.full.as_bytes();
        let mut out = Vec::new();
        let mut i = 0usize;
        while let Some(pos) = self.full[i..].find("fn") {
            let at = i + pos;
            i = at + 2;
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let after_ok = at + 2 >= bytes.len() || !is_ident_byte(bytes[at + 2]);
            if !(before_ok && after_ok) {
                continue;
            }
            // Skip whitespace, read the name (absent for `fn(..)` types).
            let mut j = at + 2;
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if j == name_start {
                continue;
            }
            let name = self.full[name_start..j].to_string();
            // Find the body's opening brace — or a `;` for a bodyless decl.
            let mut k = j;
            while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
                k += 1;
            }
            let line = self.line_of(at);
            if k >= bytes.len() || bytes[k] == b';' {
                out.push(FnInfo {
                    name,
                    body: String::new(),
                    line,
                    in_test: self.in_test(line),
                });
                continue;
            }
            let body_end = match_brace(bytes, k);
            out.push(FnInfo {
                name,
                body: self.full[k + 1..body_end].to_string(),
                line,
                in_test: self.in_test(line),
            });
        }
        out
    }

    fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset).max(1) - 1
    }

    /// The whole file's masked code joined with `\n` (literal contents
    /// blanked, comments stripped). Multi-line constructs — chained call
    /// receivers, signatures split across lines — can be matched here
    /// without comment/string false positives.
    pub fn full_code(&self) -> &str {
        &self.full
    }

    /// Maps a byte offset within [`full_code`](Self::full_code) back to its
    /// 0-based line, so semantic rules can report `file:line` diagnostics.
    pub fn line_of_offset(&self, offset: usize) -> usize {
        self.line_of(offset)
    }

    /// Byte offset of a 0-based line's start within [`full_code`](Self::full_code).
    pub fn line_start(&self, line: usize) -> usize {
        self.line_starts.get(line).copied().unwrap_or(self.full.len())
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Returns the index of the `}` matching the `{` at `open` (or the end of
/// input when unbalanced — truncated files must not hang the gate).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < bytes.len() {
        match bytes[k] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    bytes.len()
}

/// Marks lines governed by `#[cfg(test)]` / `#[test]` attributes: from the
/// attribute through the matching close brace (or semicolon) of the item it
/// decorates.
fn mark_test_regions(full: &str, line_starts: &[usize], in_test: &mut [bool]) {
    let bytes = full.as_bytes();
    for pat in ["#[cfg(test)]", "#[test]"] {
        let mut i = 0usize;
        while let Some(pos) = full[i..].find(pat) {
            let at = i + pos;
            i = at + pat.len();
            let mut k = i;
            while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
                k += 1;
            }
            let end = if k >= bytes.len() {
                bytes.len().saturating_sub(1)
            } else if bytes[k] == b';' {
                k
            } else {
                match_brace(bytes, k).min(bytes.len().saturating_sub(1))
            };
            let first = line_starts.partition_point(|&s| s <= at).max(1) - 1;
            let last = line_starts.partition_point(|&s| s <= end).max(1) - 1;
            for flag in in_test.iter_mut().take(last + 1).skip(first) {
                *flag = true;
            }
        }
    }
}

/// Parses all `lint: allow(<rule>)[: justification]` directives out of one
/// line's comment text.
fn parse_allows(comment: &str) -> Vec<Allow> {
    const MARKER: &str = "lint: allow(";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(MARKER) {
        let after = &rest[pos + MARKER.len()..];
        let Some(close) = after.find(')') else { break };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let justification = tail
            .strip_prefix(':')
            .map(|j| j.trim().to_string())
            .unwrap_or_default();
        out.push(Allow {
            rule,
            justification,
        });
        rest = tail;
    }
    out
}

/// The lexer proper: walks the source once, splitting every character into
/// the code channel (literal contents blanked) or the comment channel.
fn mask(src: &str) -> Vec<Masked> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Masked::default();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! finish_line {
        () => {{
            if !comment.is_empty() {
                cur.comment = Some(std::mem::take(&mut comment));
            }
            lines.push(std::mem::take(&mut cur));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            finish_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    if matches!(chars.get(i + 2), Some('/') | Some('!')) {
                        cur.doc = true;
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: 1 };
                    if matches!(chars.get(i + 2), Some('*') | Some('!'))
                        && chars.get(i + 3) != Some(&'/')
                    {
                        cur.doc = true;
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && (i == 0 || !chars[i - 1].is_alphanumeric() && chars[i - 1] != '_')
                {
                    // Possible raw/byte string prefix: r", r#", b", br", br#".
                    let mut j = i;
                    if c == 'b' {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'r') {
                        j += 1;
                        let mut hashes = 0;
                        while chars.get(j + hashes) == Some(&'#') {
                            hashes += 1;
                        }
                        if chars.get(j + hashes) == Some(&'"') {
                            for _ in i..=(j + hashes) {
                                cur.code.push(' ');
                            }
                            cur.code.pop();
                            cur.code.push('"');
                            state = State::RawStr { hashes };
                            i = j + hashes + 1;
                            continue;
                        }
                    } else if c == 'b' && chars.get(j) == Some(&'"') {
                        cur.code.push('b');
                        cur.code.push('"');
                        state = State::Str;
                        i = j + 1;
                        continue;
                    }
                    cur.code.push(c);
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: `'\…'` and `'x'` are chars,
                    // `'ident` is a lifetime.
                    if next == Some('\\') || chars.get(i + 2) == Some(&'\'') {
                        cur.code.push('\'');
                        i += 1;
                        // Consume to the closing quote, blanking contents.
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            if chars[i] == '\\' {
                                cur.code.push(' ');
                                i += 1;
                            }
                            if i < chars.len() && chars[i] != '\n' {
                                cur.code.push(' ');
                                i += 1;
                            }
                        }
                        if chars.get(i) == Some(&'\'') {
                            cur.code.push('\'');
                            i += 1;
                        }
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment { depth } => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: depth + 1 };
                    comment.push_str("/*");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment { depth: depth - 1 };
                        comment.push_str("*/");
                    }
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1) != Some(&'\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' {
                    let closed = (0..hashes).all(|h| chars.get(i + 1 + h) == Some(&'#'));
                    if closed {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push(' ');
                        }
                        state = State::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                cur.code.push(' ');
                i += 1;
            }
        }
    }
    finish_line!();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_leave_code_channel() {
        let p = LintSource::parse("let x = 1; // trailing unwrap() note\n");
        assert!(p.code(0).contains("let x = 1;"));
        assert!(!p.code(0).contains("unwrap"));
        assert!(p.lines[0].comment.as_deref().unwrap().contains("unwrap"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let p = LintSource::parse("let s = \"call .unwrap() now\";\n");
        assert!(!p.code(0).contains("unwrap"));
        assert!(p.code(0).contains('"'));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let p = LintSource::parse("let s = \"a\\\"b.unwrap()\"; let y = 2;\n");
        assert!(!p.code(0).contains("unwrap"));
        assert!(p.code(0).contains("let y = 2;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let p = LintSource::parse("let s = r#\"panic! \"inner\" unwrap()\"#; let z = 3;\n");
        assert!(!p.code(0).contains("unwrap"));
        assert!(!p.code(0).contains("panic"));
        assert!(p.code(0).contains("let z = 3;"));
    }

    #[test]
    fn lifetimes_survive_char_literals() {
        let p = LintSource::parse("fn f<'a>(x: &'a str, c: char) -> bool { c == 'x' }\n");
        assert!(p.code(0).contains("&'a str"));
        assert!(!p.code(0).contains("'x'") || p.code(0).contains("' '"));
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let p = LintSource::parse("let q = '\\''; let w = 4;\n");
        assert!(p.code(0).contains("let w = 4;"));
    }

    #[test]
    fn nested_block_comments() {
        let p = LintSource::parse("/* outer /* inner */ still comment */ let a = 5;\n");
        assert!(p.code(0).contains("let a = 5;"));
        assert!(!p.code(0).contains("outer"));
    }

    #[test]
    fn multi_line_block_comment_keeps_line_count() {
        let p = LintSource::parse("/* one\ntwo\nthree */ let b = 6;\n");
        assert_eq!(p.lines.len(), 4);
        assert!(p.code(2).contains("let b = 6;"));
        assert!(p.lines[1].comment.as_deref().unwrap().contains("two"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n";
        let p = LintSource::parse(src);
        assert!(!p.in_test(0));
        assert!(p.in_test(1));
        assert!(p.in_test(3));
        assert!(!p.in_test(5));
    }

    #[test]
    fn cfg_test_on_bodyless_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let p = LintSource::parse(src);
        assert!(p.in_test(1));
        assert!(!p.in_test(2));
    }

    #[test]
    fn functions_are_extracted_with_bodies() {
        let src = "impl T {\n    pub fn apply(&self) {\n        self.go();\n    }\n}\nfn free() { helper(); }\n";
        let p = LintSource::parse(src);
        let fns = p.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "apply");
        assert!(fns[0].body.contains("self.go()"));
        assert_eq!(fns[1].name, "free");
        assert!(fns[1].body.contains("helper()"));
    }

    #[test]
    fn bodyless_trait_method_does_not_swallow_neighbors() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_default(&self) { self.decl() }\n}\n";
        let p = LintSource::parse(src);
        let fns = p.functions();
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_empty());
        assert!(fns[1].body.contains("self.decl()"));
    }

    #[test]
    fn allow_directive_parses_rule_and_justification() {
        let p = LintSource::parse("x(); // lint: allow(panic): provably non-empty.\n");
        let allows = p.allow_at(0);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "panic");
        assert_eq!(allows[0].justification, "provably non-empty.");
    }

    #[test]
    fn allow_on_preceding_comment_line_covers_next_code_line() {
        let p = LintSource::parse("// lint: allow(panic): bounded above.\nx();\n");
        assert!(p.allow_at(1).iter().any(|a| a.rule == "panic"));
    }

    #[test]
    fn allow_does_not_leak_past_code() {
        let p = LintSource::parse("// lint: allow(panic): one.\nx();\ny();\n");
        assert!(p.allow_at(2).is_empty());
    }

    #[test]
    fn doc_comments_are_flagged() {
        let p = LintSource::parse("/// # Safety\n/// caller checks i.\nfn f() {}\n");
        assert!(p.lines[0].doc);
        assert!(p.lines[0].comment.as_deref().unwrap().contains("# Safety"));
    }
}
