//! Workspace call graph and the interprocedural `panic-reach` rule.
//!
//! Call resolution is name-based and deliberately over-approximate, with
//! three honesty valves that keep the approximation useful:
//!
//! * **crate direction** — a call in crate `X` only resolves to functions in
//!   `X` or its (transitive) dependencies, so the facade crate's deliberately
//!   Python-like panicking API can never be attributed to engine kernels;
//! * **receiver shape** — `self.m(..)` prefers methods on the enclosing
//!   `impl` type, `Type::m(..)` resolves by type + name, free `f(..)` prefers
//!   same-file then same-crate definitions;
//! * **a deny-list** — `expr.m(..)` method calls with ubiquitous names
//!   (`len`, `get`, `clone`, …) are left unresolved rather than linked to
//!   every impl in the workspace.
//!
//! `panic-reach` closes the blind spot of the line-local `panic` rule: a
//! panic-free-zone function calling *out* of the zone into a function that
//! transitively reaches an unjustified `unwrap()`/`panic!` is flagged at the
//! boundary call site, with the full call chain in the diagnostic. Panic
//! sites already justified by `// lint: allow(panic): ...` do not propagate
//! (the justification argues the site cannot fire, which covers every
//! caller); boundary call sites can be blessed with
//! `// lint: allow(panic-reach): ...`.

use crate::model::{FnId, Workspace};
use crate::{macro_invoked, Diagnostic, RULE_PANIC_REACH};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq)]
pub enum CallKind {
    /// `self.name(..)`.
    SelfMethod,
    /// `Type::name(..)`.
    TypeMethod(String),
    /// `name(..)` with no receiver.
    Free,
    /// `expr.name(..)`.
    Method,
}

/// One syntactic call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Receiver shape.
    pub kind: CallKind,
    /// Byte offset of the callee name in the file's masked full code.
    pub offset: usize,
    /// Resolved candidate definitions (empty when unresolvable).
    pub targets: Vec<FnId>,
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// Per-function call sites, indexed by `FnId`.
    pub calls: Vec<Vec<CallSite>>,
}

/// Method names too ubiquitous to resolve by name alone: linking these to
/// every same-named impl in the workspace would drown the analysis in false
/// edges. Calls through them are treated as opaque.
const METHOD_DENY_LIST: &[&str] = &[
    "new", "default", "len", "is_empty", "get", "get_mut", "push", "pop", "insert", "remove",
    "clone", "iter", "iter_mut", "into_iter", "next", "map", "and_then", "unwrap_or",
    "unwrap_or_else", "unwrap_or_default", "ok_or", "ok_or_else", "fmt", "to_string", "as_ref",
    "as_mut", "as_str", "as_slice", "as_bytes", "lock", "read", "write", "load", "store", "swap",
    "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_max", "fetch_min", "fetch_update",
    "compare_exchange", "compare_exchange_weak", "drain", "extend", "contains", "contains_key",
    "clear", "with", "min", "max", "abs", "sqrt", "collect", "filter", "fold", "sum", "rev",
    "zip", "enumerate", "take", "skip", "chain", "flat_map", "flatten", "any", "all", "find",
    "position", "count", "sort", "sort_by", "sort_by_key", "split_at", "chunks", "windows",
    "join", "split", "trim", "starts_with", "ends_with", "parse", "from", "into", "try_into",
    "eq", "cmp", "partial_cmp", "hash", "send", "recv", "wait", "notify_one", "notify_all",
    "is_some", "is_none", "is_ok", "is_err", "ok", "err", "expect", "unwrap", "take_while",
    "copied", "cloned", "entry", "or_insert_with", "keys", "values", "last", "first", "resize",
    "reserve", "truncate", "to_vec", "to_owned", "into_inner", "get_or_insert_with", "replace",
    "finish", "write_str", "write_fmt", "push_str", "floor", "ceil", "round", "powi", "powf",
    "exp", "ln", "log2", "saturating_sub", "saturating_add", "wrapping_add", "wrapping_sub",
    "checked_add", "checked_sub", "checked_mul", "min_by_key", "max_by_key", "retain",
    "snapshot", "state", "stats", "name", "reset", "init", "run", "get_ref", "handle",
];

impl CallGraph {
    /// Extracts and resolves every call site in the workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        // Name-indexed candidate tables.
        let mut methods: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut free_fns: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, f) in ws.functions.iter().enumerate() {
            if f.self_ty.is_some() {
                methods.entry(f.name.as_str()).or_default().push(id);
            } else {
                free_fns.entry(f.name.as_str()).or_default().push(id);
            }
        }
        let mut calls = Vec::with_capacity(ws.functions.len());
        for id in 0..ws.functions.len() {
            calls.push(extract_and_resolve(ws, id, &methods, &free_fns));
        }
        CallGraph { calls }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn extract_and_resolve(
    ws: &Workspace,
    id: FnId,
    methods: &BTreeMap<&str, Vec<FnId>>,
    free_fns: &BTreeMap<&str, Vec<FnId>>,
) -> Vec<CallSite> {
    let f = &ws.functions[id];
    let full = ws.files[f.file].source.full_code();
    let bytes = full.as_bytes();
    let skip = ws.nested_fn_ranges(id);
    let mut out = Vec::new();
    let mut i = f.body_start;
    while i < f.body_end {
        if let Some((s, e)) = skip.iter().find(|(s, e)| *s <= i && i < *e) {
            i = *e;
            let _ = s;
            continue;
        }
        let b = bytes[i];
        if !is_ident_byte(b) || b.is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < f.body_end && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let name = &full[start..i];
        // A call is `name(`: the open paren must follow directly (macro
        // invocations have `!` in between and are not calls).
        if i >= f.body_end || bytes[i] != b'(' {
            continue;
        }
        let kind = classify_site(full, start);
        let Some(kind) = kind else { continue };
        let targets = resolve(ws, f, name, &kind, methods, free_fns);
        out.push(CallSite {
            name: name.to_string(),
            kind,
            offset: start,
            targets,
        });
    }
    out
}

/// Classifies `name(` at `start` by what precedes the name. Returns `None`
/// for non-call positions (declarations, `|x|` closure params, etc.).
fn classify_site(full: &str, start: usize) -> Option<CallKind> {
    let before = full[..start].trim_end();
    if before.ends_with("fn") {
        return None; // a declaration, not a call
    }
    if let Some(prev) = before.strip_suffix('.') {
        let recv = prev.trim_end();
        if recv.ends_with("self") && !recv[..recv.len() - 4].ends_with(|c: char| is_ident_byte(c as u8) || c == '.')
        {
            return Some(CallKind::SelfMethod);
        }
        return Some(CallKind::Method);
    }
    if let Some(prev) = before.strip_suffix("::") {
        // Read the path segment before `::`.
        let seg_end = prev.len();
        let seg_start = prev
            .rfind(|c: char| !is_ident_byte(c as u8))
            .map_or(0, |p| p + 1);
        let seg = &prev[seg_start..seg_end];
        if seg.chars().next().is_some_and(|c| c.is_uppercase()) {
            return Some(CallKind::TypeMethod(seg.to_string()));
        }
        // Module-qualified free call (`plan::merge_segments(`).
        return Some(CallKind::Free);
    }
    Some(CallKind::Free)
}

fn resolve(
    ws: &Workspace,
    caller: &crate::model::Function,
    name: &str,
    kind: &CallKind,
    methods: &BTreeMap<&str, Vec<FnId>>,
    free_fns: &BTreeMap<&str, Vec<FnId>>,
) -> Vec<FnId> {
    let caller_krate = ws.files[caller.file].krate.clone();
    let visible = |id: &FnId| {
        let g = &ws.functions[*id];
        ws.sees(&caller_krate, &ws.files[g.file].krate) && (caller.in_test || !g.in_test)
    };
    match kind {
        CallKind::SelfMethod => {
            if let Some(self_ty) = &caller.self_ty {
                let same_type: Vec<FnId> = methods
                    .get(name)
                    .into_iter()
                    .flatten()
                    .filter(|id| ws.functions[**id].self_ty.as_deref() == Some(self_ty))
                    .filter(|id| visible(id))
                    .copied()
                    .collect();
                if !same_type.is_empty() {
                    return same_type;
                }
            }
            // Trait-object / inherited method: fall back to by-name.
            resolve(ws, caller, name, &CallKind::Method, methods, free_fns)
        }
        CallKind::TypeMethod(ty) => methods
            .get(name)
            .into_iter()
            .flatten()
            .filter(|id| ws.functions[**id].self_ty.as_deref() == Some(ty.as_str()))
            .filter(|id| visible(id))
            .copied()
            .collect(),
        CallKind::Free => {
            let all: Vec<FnId> = free_fns
                .get(name)
                .into_iter()
                .flatten()
                .filter(|id| visible(id))
                .copied()
                .collect();
            let same_file: Vec<FnId> = all
                .iter()
                .filter(|id| ws.functions[**id].file == caller.file)
                .copied()
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate: Vec<FnId> = all
                .iter()
                .filter(|id| ws.files[ws.functions[**id].file].krate == caller_krate)
                .copied()
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            all
        }
        CallKind::Method => {
            if METHOD_DENY_LIST.contains(&name) {
                return Vec::new();
            }
            methods
                .get(name)
                .into_iter()
                .flatten()
                .filter(|id| visible(id))
                .copied()
                .collect()
        }
    }
}

// ---------------------------------------------------------------------------
// panic-reach
// ---------------------------------------------------------------------------

/// A direct panic site inside a function.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 0-based line.
    pub line: usize,
    /// What panics (`unwrap()`, `panic!`, …).
    pub what: &'static str,
}

/// Per-function direct panic sites, excluding test code and sites justified
/// by `// lint: allow(panic): ...`.
pub fn direct_panic_sites(ws: &Workspace) -> Vec<Vec<PanicSite>> {
    let mut out = vec![Vec::new(); ws.functions.len()];
    for (id, f) in ws.functions.iter().enumerate() {
        if f.in_test || f.body_start == f.body_end {
            continue;
        }
        let src = &ws.files[f.file].source;
        let first = src.line_of_offset(f.body_start);
        let last = src.line_of_offset(f.body_end.saturating_sub(1));
        for line in first..=last.min(src.lines.len().saturating_sub(1)) {
            if src.in_test(line) {
                continue;
            }
            if src.allow_at(line).iter().any(|a| a.rule == "panic") {
                continue;
            }
            let code = src.code(line);
            let what: Option<&'static str> = if code.contains(".unwrap()") {
                Some("unwrap()")
            } else if code.contains(".expect(") {
                Some("expect(..)")
            } else if macro_invoked(code, "panic") {
                Some("panic!")
            } else if macro_invoked(code, "unreachable") {
                Some("unreachable!")
            } else if macro_invoked(code, "todo") || macro_invoked(code, "unimplemented") {
                Some("todo!/unimplemented!")
            } else {
                None
            };
            if let Some(what) = what {
                out[id].push(PanicSite { line, what });
            }
        }
    }
    out
}

/// Fixed point of "can this function transitively reach a panic site".
pub fn can_panic(ws: &Workspace, graph: &CallGraph, sites: &[Vec<PanicSite>]) -> Vec<bool> {
    let n = ws.functions.len();
    let mut can = vec![false; n];
    // Reverse edges for worklist propagation.
    let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); n];
    for (caller, calls) in graph.calls.iter().enumerate() {
        for c in calls {
            for t in &c.targets {
                rev[*t].push(caller);
            }
        }
    }
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for id in 0..n {
        if !sites[id].is_empty() {
            can[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for caller in &rev[id] {
            if !can[*caller] {
                can[*caller] = true;
                queue.push_back(*caller);
            }
        }
    }
    can
}

/// Shortest witness chain from `start` to a concrete panic site:
/// `[(fn, line-of-call-or-panic)]` ending at the panicking function.
fn witness_chain(
    ws: &Workspace,
    graph: &CallGraph,
    sites: &[Vec<PanicSite>],
    start: FnId,
) -> Vec<String> {
    // BFS over can-panic edges.
    let mut prev: BTreeMap<FnId, (FnId, usize)> = BTreeMap::new(); // node -> (pred, call line)
    let mut queue = VecDeque::new();
    let mut seen = BTreeSet::new();
    queue.push_back(start);
    seen.insert(start);
    let mut terminal = None;
    while let Some(id) = queue.pop_front() {
        if !sites[id].is_empty() {
            terminal = Some(id);
            break;
        }
        for c in &graph.calls[id] {
            for t in &c.targets {
                if (!sites[*t].is_empty() || has_panicking_succ(graph, sites, *t))
                    && seen.insert(*t)
                {
                    let line = ws.files[ws.functions[id].file]
                        .source
                        .line_of_offset(c.offset);
                    prev.insert(*t, (id, line));
                    queue.push_back(*t);
                }
            }
        }
    }
    let Some(mut at) = terminal else {
        return vec![format!("{} (chain truncated)", ws.functions[start].label())];
    };
    let mut chain = Vec::new();
    let site = &sites[at][0];
    let f = &ws.functions[at];
    chain.push(format!(
        "`{}` at {}:{} ({})",
        site.what,
        ws.files[f.file].path,
        site.line + 1,
        f.label()
    ));
    while let Some((pred, line)) = prev.get(&at).copied() {
        let p = &ws.functions[pred];
        chain.push(format!(
            "{} ({}:{})",
            p.label(),
            ws.files[p.file].path,
            line + 1
        ));
        at = pred;
    }
    chain.reverse();
    chain
}

fn has_panicking_succ(graph: &CallGraph, sites: &[Vec<PanicSite>], id: FnId) -> bool {
    // One-step lookahead is enough to keep BFS on productive edges; deeper
    // reachability is re-derived as the search advances.
    !sites[id].is_empty()
        || graph.calls[id]
            .iter()
            .any(|c| c.targets.iter().any(|t| !sites[*t].is_empty()))
        || graph.calls[id].iter().any(|c| !c.targets.is_empty())
}

/// The `panic-reach` rule: flags panic-free-zone functions whose calls cross
/// out of the zone into transitively-panicking code.
pub fn check_panic_reach(ws: &Workspace, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let sites = direct_panic_sites(ws);
    let can = can_panic(ws, graph, &sites);
    let in_zone = |file: usize| {
        let p = &ws.files[file].path;
        crate::PANIC_FREE_DIRS.iter().any(|d| p.starts_with(d))
    };
    for (id, f) in ws.functions.iter().enumerate() {
        if f.in_test || !in_zone(f.file) {
            continue;
        }
        let src = &ws.files[f.file].source;
        // One diagnostic per boundary line keeps chained calls readable.
        let mut flagged_lines = BTreeSet::new();
        for c in &graph.calls[id] {
            let Some(&worst) = c
                .targets
                .iter()
                .find(|t| !in_zone(ws.functions[**t].file) && can[**t])
            else {
                continue;
            };
            let line = src.line_of_offset(c.offset);
            if src.in_test(line) || !flagged_lines.insert(line) {
                continue;
            }
            if src
                .allow_at(line)
                .iter()
                .any(|a| a.rule == RULE_PANIC_REACH || a.rule == "panic")
            {
                continue;
            }
            let chain = witness_chain(ws, graph, &sites, worst);
            diags.push(Diagnostic {
                path: ws.files[f.file].path.clone(),
                line: line + 1,
                rule: RULE_PANIC_REACH,
                message: format!(
                    "panic-free-zone fn `{}` calls `{}` which can panic: {} — \
                     make the callee fallible, justify the panic at its site \
                     with `// lint: allow(panic): ...`, or bless this boundary \
                     with `// lint: allow(panic-reach): ...`",
                    f.label(),
                    c.name,
                    chain.join(" -> ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{crate_of, FileModel};
    use crate::tokenizer::LintSource;
    use std::collections::BTreeMap;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let models = files
            .iter()
            .map(|(p, s)| FileModel {
                path: p.to_string(),
                krate: crate_of(p),
                source: LintSource::parse(s),
            })
            .collect();
        Workspace::build(models, &BTreeMap::new())
    }

    fn fn_id(w: &Workspace, name: &str) -> FnId {
        w.functions.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn cross_module_free_call_resolves() {
        let w = ws(&[
            ("crates/engine/src/a.rs", "pub fn caller() { helper(1); }\n"),
            ("crates/engine/src/b.rs", "pub fn helper(x: u32) -> u32 { x }\n"),
        ]);
        let g = CallGraph::build(&w);
        let caller = fn_id(&w, "caller");
        let helper = fn_id(&w, "helper");
        assert_eq!(g.calls[caller].len(), 1);
        assert_eq!(g.calls[caller][0].targets, vec![helper]);
    }

    #[test]
    fn same_file_free_call_shadows_other_crates() {
        let w = ws(&[
            (
                "crates/engine/src/a.rs",
                "pub fn caller() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/sim/src/b.rs", "pub fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&w);
        let caller = fn_id(&w, "caller");
        assert_eq!(g.calls[caller][0].targets.len(), 1);
        assert_eq!(w.functions[g.calls[caller][0].targets[0]].file, 0);
    }

    #[test]
    fn self_method_resolves_to_own_impl() {
        let src = "struct A; struct B;\n\
                   impl A {\n    fn go(&self) { self.step(); }\n    fn step(&self) {}\n}\n\
                   impl B {\n    fn step(&self) {}\n}\n";
        let w = ws(&[("crates/engine/src/a.rs", src)]);
        let g = CallGraph::build(&w);
        let go = fn_id(&w, "go");
        assert_eq!(g.calls[go].len(), 1);
        let t = g.calls[go][0].targets.clone();
        assert_eq!(t.len(), 1);
        assert_eq!(w.functions[t[0]].self_ty.as_deref(), Some("A"));
    }

    #[test]
    fn type_method_resolves_by_type() {
        let src = "struct A; struct B;\n\
                   impl A {\n    fn mk() -> A { A }\n}\n\
                   impl B {\n    fn mk() -> B { B }\n}\n\
                   fn f() { let _ = A::mk(); }\n";
        let w = ws(&[("crates/engine/src/a.rs", src)]);
        let g = CallGraph::build(&w);
        let f = fn_id(&w, "f");
        let call = g.calls[f].iter().find(|c| c.name == "mk").unwrap();
        assert_eq!(call.targets.len(), 1);
        assert_eq!(w.functions[call.targets[0]].self_ty.as_deref(), Some("A"));
    }

    #[test]
    fn method_call_resolves_across_modules_minus_deny_list() {
        let w = ws(&[
            (
                "crates/engine/src/a.rs",
                "struct K;\nimpl K {\n    fn apply_stage(&self) {}\n}\n",
            ),
            (
                "crates/engine/src/b.rs",
                "pub fn drive(k: &super::a::K) { k.apply_stage(); k.len(); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let drive = fn_id(&w, "drive");
        let apply = g.calls[drive].iter().find(|c| c.name == "apply_stage").unwrap();
        assert_eq!(apply.targets.len(), 1);
        let len = g.calls[drive].iter().find(|c| c.name == "len").unwrap();
        assert!(len.targets.is_empty(), "deny-listed name stays opaque");
    }

    #[test]
    fn crate_direction_blocks_resolution() {
        let mut deps = BTreeMap::new();
        deps.insert("engine".to_string(), Vec::<String>::new());
        deps.insert("core".to_string(), vec!["engine".to_string()]);
        let models = vec![
            FileModel {
                path: "crates/engine/src/a.rs".into(),
                krate: "engine".into(),
                source: LintSource::parse("pub fn engine_fn() { facade_fn(); }\n"),
            },
            FileModel {
                path: "crates/core/src/b.rs".into(),
                krate: "core".into(),
                source: LintSource::parse("pub fn facade_fn() { engine_fn(); }\n"),
            },
        ];
        let w = Workspace::build(models, &deps);
        let g = CallGraph::build(&w);
        let engine_fn = fn_id(&w, "engine_fn");
        let facade_fn = fn_id(&w, "facade_fn");
        assert!(
            g.calls[engine_fn][0].targets.is_empty(),
            "engine cannot call up into the facade"
        );
        assert_eq!(g.calls[facade_fn][0].targets, vec![engine_fn]);
    }

    #[test]
    fn panic_reach_crosses_crate_boundary() {
        let w = ws(&[
            (
                "crates/engine/src/solver/cg.rs",
                "pub fn iterate() { out_of_zone_helper(); }\n",
            ),
            (
                "crates/engine/src/base/util.rs",
                "pub fn out_of_zone_helper() { deeper(); }\n\
                 fn deeper() { None::<u32>.unwrap(); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let mut diags = Vec::new();
        check_panic_reach(&w, &g, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_PANIC_REACH);
        assert_eq!(diags[0].path, "crates/engine/src/solver/cg.rs");
        assert!(diags[0].message.contains("deeper"), "{}", diags[0].message);
        assert!(diags[0].message.contains("unwrap()"));
    }

    #[test]
    fn allow_at_panic_site_stops_propagation() {
        let w = ws(&[
            (
                "crates/engine/src/solver/cg.rs",
                "pub fn iterate() { out_of_zone_helper(); }\n",
            ),
            (
                "crates/engine/src/base/util.rs",
                "pub fn out_of_zone_helper() {\n    // lint: allow(panic): provably non-empty.\n    Some(1u32).unwrap();\n}\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let mut diags = Vec::new();
        check_panic_reach(&w, &g, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_panic_reach_at_boundary_site() {
        let w = ws(&[
            (
                "crates/engine/src/solver/cg.rs",
                "pub fn iterate() {\n    // lint: allow(panic-reach): validator aborts deliberately.\n    out_of_zone_helper();\n}\n",
            ),
            (
                "crates/engine/src/base/util.rs",
                "pub fn out_of_zone_helper() { panic!(\"boom\"); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let mut diags = Vec::new();
        check_panic_reach(&w, &g, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn in_zone_callee_is_not_reflagged() {
        // Zone-internal panics belong to the line-local `panic` rule.
        let w = ws(&[(
            "crates/engine/src/solver/cg.rs",
            "pub fn iterate() { zone_helper(); }\npub fn zone_helper() { panic!(\"x\"); }\n",
        )]);
        let g = CallGraph::build(&w);
        let mut diags = Vec::new();
        check_panic_reach(&w, &g, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
