//! The workspace lint gate.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pygko-analysis --bin lint_gate [--] [WORKSPACE_ROOT]
//! cargo run -p pygko-analysis --bin lint_gate -- --format=json
//! cargo run -p pygko-analysis --bin lint_gate -- --self-test
//! ```
//!
//! Scans every `.rs` file under `crates/`, `examples/`, and `tests/` and
//! prints one `path:line: [rule] message` diagnostic per violation (or, with
//! `--format=json`, a JSON document with the same diagnostics in the same
//! deterministic order, rendered by the engine's own config serializer).
//! Exit codes: 0 clean, 1 violations found, 2 I/O or self-test failure.

use gko::config::{json, Config};
use std::path::PathBuf;

fn main() {
    let mut root_arg: Option<PathBuf> = None;
    let mut self_test = false;
    let mut json_out = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--self-test" => self_test = true,
            "--format=json" => json_out = true,
            "--format=text" => json_out = false,
            "--help" | "-h" => {
                eprintln!("usage: lint_gate [--self-test] [--format=json] [WORKSPACE_ROOT]");
                return;
            }
            other => root_arg = Some(PathBuf::from(other)),
        }
    }

    if self_test {
        match pygko_analysis::run_self_test() {
            Ok(report) => {
                for line in &report {
                    println!("{line}");
                }
                println!("lint_gate: self-test passed ({} cases)", report.len());
            }
            Err(failures) => {
                for line in &failures {
                    eprintln!("{line}");
                }
                eprintln!("lint_gate: self-test FAILED ({} cases)", failures.len());
                std::process::exit(2);
            }
        }
        return;
    }

    let root = root_arg.unwrap_or_else(find_workspace_root);
    match pygko_analysis::lint_workspace(&root) {
        Ok((diags, files)) => {
            if json_out {
                // Diagnostics arrive sorted by (path, line, rule, message),
                // so the JSON output is deterministic run-to-run.
                let entries: Vec<Config> = diags
                    .iter()
                    .map(|d| {
                        Config::map()
                            .with("path", d.path.as_str())
                            .with("line", d.line)
                            .with("rule", d.rule)
                            .with("message", d.message.as_str())
                    })
                    .collect();
                let doc = Config::map()
                    .with("files_scanned", files)
                    .with("violations", entries.len())
                    .with("diagnostics", entries);
                println!("{}", json::to_string_pretty(&doc));
                if !diags.is_empty() {
                    std::process::exit(1);
                }
                return;
            }
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                println!("lint_gate: {files} files clean");
            } else {
                println!("lint_gate: {} violation(s) in {files} files", diags.len());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("lint_gate: {e}");
            std::process::exit(2);
        }
    }
}

/// Locates the workspace root: the analysis crate's grandparent when built
/// in-tree, otherwise the nearest ancestor of the current directory that
/// looks like the workspace (has both `Cargo.toml` and `crates/`).
fn find_workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
        if root.join("Cargo.toml").exists() {
            return root.to_owned();
        }
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.toml").exists() && cur.join("crates").is_dir() {
            return cur;
        }
        if !cur.pop() {
            return PathBuf::from(".");
        }
    }
}
