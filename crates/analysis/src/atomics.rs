//! Atomic declarations by role and the `atomic-ordering` rule.
//!
//! Every `Atomic*` field or static in `crates/engine` / `crates/core` must be
//! classified with a `// atomic: <role>` annotation:
//!
//! * **`counter`** — a statistic nobody synchronizes on (event counts,
//!   byte totals). Correct ordering is `Relaxed` everywhere; an
//!   Acquire/Release/SeqCst access is a wasted fence on the hot path and is
//!   flagged.
//! * **`flag`** — a boolean/handshake other threads *act* on (shutdown,
//!   armed, rendezvous counts). A `Relaxed` store publishing a flag is
//!   flagged: writes that precede the store are not ordered before it for
//!   the observing thread, so the flag can be seen before the data it
//!   guards. Stores must use `Release` (or stronger), or be justified with
//!   `// lint: allow(atomic-ordering): ...` when an external happens-before
//!   edge (a mutex, a channel) already orders them.
//! * **`seqlock`** — part of a hand-rolled seqlock/versioning protocol with
//!   its own fence discipline; exempt from both checks.
//!
//! Attribution reuses the receiver-chain parser and cascade from the lock
//! analysis; unattributable receivers (locals, call results) are skipped.

use crate::model::{valid_annotation_name, Workspace, ATOMIC_ROLES};
use crate::{Diagnostic, RULE_ATOMIC_ORDERING};
use std::collections::BTreeMap;

/// A declared (annotated) atomic.
#[derive(Debug)]
pub struct AtomicDecl {
    /// Role: `counter`, `flag`, or `seqlock`.
    pub role: String,
    /// Declaring struct, or `None` for a static.
    pub struct_name: Option<String>,
    /// Field / static identifier.
    pub field: String,
    /// Declaring file index.
    pub file: usize,
    /// 0-based declaration line.
    pub line: usize,
}

fn is_atomic_type(ty: &str) -> bool {
    // `AtomicU64`, `AtomicUsize`, `AtomicBool`, … — an `Atomic`-prefixed
    // identifier anywhere in the type text (incl. `Arc<AtomicBool>`).
    let bytes = ty.as_bytes();
    let mut i = 0;
    while let Some(pos) = ty[i..].find("Atomic") {
        let at = i + pos;
        i = at + 6;
        let before_ok = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        if before_ok {
            return true;
        }
    }
    false
}

fn must_declare(path: &str) -> bool {
    (path.starts_with("crates/engine/") || path.starts_with("crates/core/"))
        && !path.contains("/tests/")
        && !path.contains("/benches/")
}

/// Collects declared atomics and emits declaration diagnostics.
pub fn collect_atomics(ws: &Workspace, diags: &mut Vec<Diagnostic>) -> Vec<AtomicDecl> {
    let mut decls = Vec::new();
    let mut push_decl = |file: usize,
                         line: usize,
                         struct_name: Option<&str>,
                         field: &str,
                         ty: &str,
                         role: &Option<String>,
                         in_test: bool,
                         diags: &mut Vec<Diagnostic>| {
        if !is_atomic_type(ty) {
            if role.is_some() && !in_test {
                diags.push(Diagnostic {
                    path: ws.files[file].path.clone(),
                    line: line + 1,
                    rule: RULE_ATOMIC_ORDERING,
                    message: format!(
                        "`// atomic:` annotation on `{field}`, whose type \
                         `{ty}` is not an Atomic*"
                    ),
                });
            }
            return;
        }
        if in_test {
            return;
        }
        let path = &ws.files[file].path;
        match role {
            Some(r) if ATOMIC_ROLES.contains(&r.as_str()) => decls.push(AtomicDecl {
                role: r.clone(),
                struct_name: struct_name.map(str::to_owned),
                field: field.to_owned(),
                file,
                line,
            }),
            Some(r) => diags.push(Diagnostic {
                path: path.clone(),
                line: line + 1,
                rule: RULE_ATOMIC_ORDERING,
                message: format!(
                    "unknown atomic role `{r}` on `{field}` — use \
                     `// atomic: counter|flag|seqlock`",
                ),
            }),
            None if must_declare(path) && valid_annotation_name(field) => {
                let src = &ws.files[file].source;
                if !src
                    .allow_at(line)
                    .iter()
                    .any(|a| a.rule == RULE_ATOMIC_ORDERING)
                {
                    diags.push(Diagnostic {
                        path: path.clone(),
                        line: line + 1,
                        rule: RULE_ATOMIC_ORDERING,
                        message: format!(
                            "unclassified atomic `{field}` — every engine/core \
                             Atomic* must carry `// atomic: counter|flag|seqlock` \
                             so ordering requirements are machine-checked"
                        ),
                    });
                }
            }
            None => {}
        }
    };
    for s in &ws.structs {
        for field in &s.fields {
            push_decl(
                s.file,
                field.line,
                Some(&s.name),
                &field.name,
                &field.ty,
                &field.atomic_role,
                s.in_test || ws.files[s.file].source.in_test(field.line),
                diags,
            );
        }
    }
    for st in &ws.statics {
        push_decl(
            st.file, st.line, None, &st.name, &st.ty, &st.atomic_role, st.in_test, diags,
        );
    }
    decls
}

/// Atomic accessor methods and whether each is a store-side (publishing)
/// operation.
const ATOMIC_OPS: &[(&str, bool)] = &[
    (".store(", true),
    (".load(", false),
    (".swap(", true),
    (".fetch_add(", true),
    (".fetch_sub(", true),
    (".fetch_or(", true),
    (".fetch_and(", true),
    (".fetch_xor(", true),
    (".fetch_max(", true),
    (".fetch_min(", true),
];

/// Extracts the `Ordering::X` (or bare `Relaxed`/`Acquire`/…) tokens in the
/// call's argument list.
fn orderings_in_args(full: &str, open_paren: usize) -> Vec<String> {
    let bytes = full.as_bytes();
    let close = {
        let mut depth = 0usize;
        let mut k = open_paren;
        loop {
            if k >= bytes.len() {
                break k;
            }
            match bytes[k] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
    };
    let args = &full[open_paren + 1..close.min(full.len())];
    let mut out = Vec::new();
    for name in ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"] {
        if crate::contains_word(args, name) {
            out.push(name.to_string());
        }
    }
    out
}

/// The `atomic-ordering` rule: role-checks every attributed atomic access.
pub fn check_atomic_ordering(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let decls = collect_atomics(ws, diags);
    // Field-name cascade table (same scheme as lock attribution).
    let mut by_field: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in decls.iter().enumerate() {
        by_field.entry(d.field.as_str()).or_default().push(i);
    }
    for (id, f) in ws.functions.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let src = &ws.files[f.file].source;
        let full = src.full_code();
        let skip = ws.nested_fn_ranges(id);
        for (pat, is_store) in ATOMIC_OPS {
            let mut i = f.body_start;
            while let Some(pos) = full[i..f.body_end].find(pat) {
                let dot = i + pos;
                let open_paren = dot + pat.len() - 1;
                i = dot + pat.len();
                if skip.iter().any(|(s, e)| *s <= dot && dot < *e) {
                    continue;
                }
                let line = src.line_of_offset(dot);
                if src.in_test(line) {
                    continue;
                }
                let Some(segs) = crate::locks::receiver_segments(full, dot) else {
                    continue;
                };
                let Some(decl) = attribute_atomic(&decls, &by_field, f, &segs) else {
                    continue;
                };
                let orderings = orderings_in_args(full, open_paren);
                if orderings.is_empty() {
                    continue; // ordering passed through a variable — opaque
                }
                let allowed = || {
                    src.allow_at(line)
                        .iter()
                        .any(|a| a.rule == RULE_ATOMIC_ORDERING)
                };
                match decls[decl].role.as_str() {
                    "counter" if orderings.iter().any(|o| o != "Relaxed") && !allowed() => {
                        diags.push(Diagnostic {
                            path: ws.files[f.file].path.clone(),
                            line: line + 1,
                            rule: RULE_ATOMIC_ORDERING,
                            message: format!(
                                "{} ordering on counter `{}` — counters \
                                 synchronize nothing; use Relaxed (wasted \
                                 fence on the hot path), or reclassify the \
                                 atomic's role",
                                orderings.join("/"),
                                decls[decl].field
                            ),
                        });
                    }
                    "flag"
                        if *is_store
                            && orderings.iter().any(|o| o == "Relaxed")
                            && !allowed() =>
                    {
                        diags.push(Diagnostic {
                            path: ws.files[f.file].path.clone(),
                            line: line + 1,
                            rule: RULE_ATOMIC_ORDERING,
                            message: format!(
                                "Relaxed store publishes flag `{}` — \
                                 observers may see the flag before the data \
                                 it guards; store with Release, or justify \
                                 the external happens-before edge with \
                                 `// lint: allow(atomic-ordering): ...`",
                                decls[decl].field
                            ),
                        });
                    }
                    _ => {} // seqlock: exempt
                }
            }
        }
    }
}

fn attribute_atomic(
    decls: &[AtomicDecl],
    by_field: &BTreeMap<&str, Vec<usize>>,
    caller: &crate::model::Function,
    segs: &[crate::locks::ReceiverSegment],
) -> Option<usize> {
    let last = segs.last()?;
    if last.is_call {
        return None;
    }
    let hits = by_field.get(last.name.as_str())?;
    if segs.len() == 1 {
        // Bare ident: unique static, or a same-named field as a fallback
        // (atomics are often passed as `shutdown: &AtomicBool` parameters
        // named after their field).
        let statics: Vec<usize> = hits
            .iter()
            .filter(|i| decls[**i].struct_name.is_none())
            .copied()
            .collect();
        if statics.len() == 1 {
            return Some(statics[0]);
        }
        return if hits.len() == 1 { Some(hits[0]) } else { None };
    }
    match hits.len() {
        1 => Some(hits[0]),
        _ => {
            if let Some(self_ty) = &caller.self_ty {
                let by_ty: Vec<usize> = hits
                    .iter()
                    .filter(|i| decls[**i].struct_name.as_deref() == Some(self_ty))
                    .copied()
                    .collect();
                if by_ty.len() == 1 {
                    return Some(by_ty[0]);
                }
            }
            let by_file: Vec<usize> = hits
                .iter()
                .filter(|i| decls[**i].file == caller.file)
                .copied()
                .collect();
            if by_file.len() == 1 {
                Some(by_file[0])
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{crate_of, FileModel};
    use crate::tokenizer::LintSource;
    use std::collections::BTreeMap;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models = files
            .iter()
            .map(|(p, s)| FileModel {
                path: p.to_string(),
                krate: crate_of(p),
                source: LintSource::parse(s),
            })
            .collect();
        let ws = Workspace::build(models, &BTreeMap::new());
        let mut diags = Vec::new();
        check_atomic_ordering(&ws, &mut diags);
        diags
    }

    #[test]
    fn relaxed_store_on_flag_is_flagged() {
        let src = "use std::sync::atomic::{AtomicBool, Ordering};\n\
            pub struct S {\n\
                // atomic: flag\n\
                armed: AtomicBool,\n\
            }\n\
            impl S {\n\
                pub fn arm(&self) { self.armed.store(true, Ordering::Relaxed); }\n\
            }\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("Relaxed store publishes flag"));
    }

    #[test]
    fn release_store_on_flag_is_clean() {
        let src = "use std::sync::atomic::{AtomicBool, Ordering};\n\
            pub struct S {\n\
                // atomic: flag\n\
                armed: AtomicBool,\n\
            }\n\
            impl S {\n\
                pub fn arm(&self) { self.armed.store(true, Ordering::Release); }\n\
                pub fn check(&self) -> bool { self.armed.load(Ordering::Relaxed) }\n\
            }\n";
        assert!(run(&[("crates/engine/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn strong_ordering_on_counter_is_wasted_fence() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
            pub struct S {\n\
                // atomic: counter\n\
                hits: AtomicU64,\n\
            }\n\
            impl S {\n\
                pub fn hit(&self) { self.hits.fetch_add(1, Ordering::SeqCst); }\n\
            }\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("wasted fence"));
    }

    #[test]
    fn relaxed_counter_is_clean() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
            pub struct S {\n\
                // atomic: counter\n\
                hits: AtomicU64,\n\
            }\n\
            impl S {\n\
                pub fn hit(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
            }\n";
        assert!(run(&[("crates/engine/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn unclassified_engine_atomic_is_flagged() {
        let src = "use std::sync::atomic::AtomicUsize;\n\
            pub struct S {\n\
                n: AtomicUsize,\n\
            }\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("unclassified atomic `n`"));
    }

    #[test]
    fn seqlock_role_is_exempt() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
            pub struct S {\n\
                // atomic: seqlock\n\
                version: AtomicU64,\n\
            }\n\
            impl S {\n\
                pub fn bump(&self) { self.version.store(1, Ordering::Relaxed); }\n\
            }\n";
        assert!(run(&[("crates/engine/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn allow_blesses_relaxed_publish() {
        let src = "use std::sync::atomic::{AtomicBool, Ordering};\n\
            pub struct S {\n\
                // atomic: flag\n\
                shutdown: AtomicBool,\n\
            }\n\
            impl S {\n\
                pub fn stop(&self) {\n\
                    // lint: allow(atomic-ordering): ordered by the control mutex unlock below.\n\
                    self.shutdown.store(true, Ordering::Relaxed);\n\
                }\n\
            }\n";
        assert!(run(&[("crates/engine/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn bench_crate_atomics_need_no_annotation() {
        let src = "use std::sync::atomic::AtomicUsize;\npub struct S { n: AtomicUsize }\n";
        assert!(run(&[("crates/bench/src/x.rs", src)]).is_empty());
    }
}
