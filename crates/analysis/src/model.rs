//! A lightweight semantic model of the workspace.
//!
//! The per-line rules in [`crate::lint_file`] are deliberately local; the
//! concurrency rules (`lock-order`, `atomic-ordering`, `panic-reach`) need to
//! see *across* functions and files. This module parses every source file
//! into items — structs with their fields, `impl` blocks, `static`s, and
//! functions with brace-matched body spans — in the same "approximate but
//! honest" spirit as the tokenizer: no full type system, just enough
//! structure that lock fields can be named, atomics classified, and calls
//! resolved within the workspace.
//!
//! Declaration annotations are plain (non-doc) comments on the declaring
//! line or the line directly above it:
//!
//! * `// lock: <name>` — names a `Mutex`/`RwLock`/`ReentrantMutex` field or
//!   static for the lock-order analysis (`<name>` is `[A-Za-z0-9_.-]+`;
//!   prose may follow after whitespace).
//! * `// atomic: counter|flag|seqlock` — classifies an `Atomic*` field or
//!   static by role for the atomic-ordering analysis.

use crate::tokenizer::LintSource;
use std::collections::{BTreeMap, BTreeSet};

/// Roles an atomic declaration may take.
pub const ATOMIC_ROLES: &[&str] = &["counter", "flag", "seqlock"];

/// A field of a struct (tuple fields are named `"0"`, `"1"`, …).
#[derive(Debug)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Masked type text.
    pub ty: String,
    /// 0-based declaration line.
    pub line: usize,
    /// `// lock: <name>` annotation, if present.
    pub lock_name: Option<String>,
    /// `// atomic: <role>` annotation, if present.
    pub atomic_role: Option<String>,
}

/// A struct and its fields.
#[derive(Debug)]
pub struct StructInfo {
    /// Index of the declaring file in [`Workspace::files`].
    pub file: usize,
    /// Struct name.
    pub name: String,
    /// 0-based line of the `struct` keyword.
    pub line: usize,
    /// True when declared under `#[cfg(test)]`.
    pub in_test: bool,
    /// Parsed fields.
    pub fields: Vec<FieldInfo>,
}

/// A `static` item (named locks like a GIL live here).
#[derive(Debug)]
pub struct StaticInfo {
    /// Index of the declaring file in [`Workspace::files`].
    pub file: usize,
    /// Static name.
    pub name: String,
    /// Masked type text.
    pub ty: String,
    /// 0-based declaration line.
    pub line: usize,
    /// True when declared under `#[cfg(test)]`.
    pub in_test: bool,
    /// `// lock: <name>` annotation, if present.
    pub lock_name: Option<String>,
    /// `// atomic: <role>` annotation, if present.
    pub atomic_role: Option<String>,
}

/// A function or method with its brace-matched body span.
#[derive(Debug)]
pub struct Function {
    /// Index of the declaring file in [`Workspace::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, or `None` for free functions.
    pub self_ty: Option<String>,
    /// Masked text from after the name to the body `{` (params + return).
    pub signature: String,
    /// Byte offset (into the file's masked full code) just after the body's
    /// opening brace. `body_start == body_end` for bodyless declarations.
    pub body_start: usize,
    /// Byte offset of the body's closing brace.
    pub body_end: usize,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// True when inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

impl Function {
    /// Human-readable `Type::name` / `name` label for diagnostics.
    pub fn label(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed source file.
pub struct FileModel {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Crate directory name (`"engine"` for `crates/engine/...`), or `""`
    /// for sources outside `crates/` (tests, examples) which may see every
    /// crate.
    pub krate: String,
    /// The lexed source.
    pub source: LintSource,
}

/// The whole-workspace model: files, items, and crate visibility.
pub struct Workspace {
    /// Parsed files.
    pub files: Vec<FileModel>,
    /// All structs.
    pub structs: Vec<StructInfo>,
    /// All statics.
    pub statics: Vec<StaticInfo>,
    /// All functions, indexable by `FnId`.
    pub functions: Vec<Function>,
    /// crate dir -> set of crate dirs it may call into (transitive deps,
    /// including itself). Missing key means "sees everything".
    visible: BTreeMap<String, BTreeSet<String>>,
}

/// Index into [`Workspace::functions`].
pub type FnId = usize;

impl Workspace {
    /// Builds the model from pre-parsed sources and a crate dependency map
    /// (`crate dir -> direct dep dirs`; the closure is computed here). An
    /// empty map makes every crate visible to every other — convenient for
    /// tests and single-crate fixtures.
    pub fn build(files: Vec<FileModel>, deps: &BTreeMap<String, Vec<String>>) -> Workspace {
        let mut ws = Workspace {
            files,
            structs: Vec::new(),
            statics: Vec::new(),
            functions: Vec::new(),
            visible: transitive_closure(deps),
        };
        for idx in 0..ws.files.len() {
            let (structs, statics, functions) = parse_items(idx, &ws.files[idx]);
            ws.structs.extend(structs);
            ws.statics.extend(statics);
            ws.functions.extend(functions);
        }
        ws
    }

    /// True when code in `from_krate` may call into `to_krate`.
    pub fn sees(&self, from_krate: &str, to_krate: &str) -> bool {
        if from_krate == to_krate || from_krate.is_empty() {
            return true;
        }
        match self.visible.get(from_krate) {
            Some(set) => set.contains(to_krate),
            None => true,
        }
    }

    /// The innermost function whose body contains `offset` in file `file`.
    pub fn function_at(&self, file: usize, offset: usize) -> Option<FnId> {
        let mut best: Option<FnId> = None;
        for (id, f) in self.functions.iter().enumerate() {
            if f.file == file && f.body_start <= offset && offset < f.body_end {
                let tighter = best
                    .map(|b| self.functions[b].body_end - self.functions[b].body_start)
                    .is_none_or(|span| f.body_end - f.body_start < span);
                if tighter {
                    best = Some(id);
                }
            }
        }
        best
    }

    /// Byte ranges of *other* functions nested inside `f`'s body (nested
    /// `fn` items). Scans over `f`'s body should skip these.
    pub fn nested_fn_ranges(&self, id: FnId) -> Vec<(usize, usize)> {
        let f = &self.functions[id];
        self.functions
            .iter()
            .enumerate()
            .filter(|(other, g)| {
                *other != id
                    && g.file == f.file
                    && g.body_start > f.body_start
                    && g.body_end <= f.body_end
            })
            .map(|(_, g)| (g.body_start, g.body_end))
            .collect()
    }
}

fn transitive_closure(deps: &BTreeMap<String, Vec<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (k, direct) in deps {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<&String> = direct.iter().collect();
        seen.insert(k.clone());
        while let Some(d) = stack.pop() {
            if seen.insert(d.clone()) {
                if let Some(next) = deps.get(d) {
                    stack.extend(next.iter());
                }
            }
        }
        out.insert(k.clone(), seen);
    }
    out
}

/// Derives the crate dir name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
        .to_string()
}

// ---------------------------------------------------------------------------
// Item extraction
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn word_at(full: &str, at: usize, word: &str) -> bool {
    let bytes = full.as_bytes();
    let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
    let after = at + word.len();
    let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
    before_ok && after_ok
}

/// Finds every standalone occurrence of `word` in `full`.
fn word_positions(full: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = full[i..].find(word) {
        let at = i + pos;
        i = at + word.len();
        if word_at(full, at, word) {
            out.push(at);
        }
    }
    out
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

fn read_ident(full: &str, start: usize) -> (String, usize) {
    let bytes = full.as_bytes();
    let mut j = start;
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    (full[start..j].to_string(), j)
}

/// Returns the index of the byte matching the opener at `open` (`{`/`(`/`<`),
/// or the end of input when unbalanced.
fn match_delim(bytes: &[u8], open: usize, close_b: u8, open_b: u8) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < bytes.len() {
        if bytes[k] == open_b {
            depth += 1;
        } else if bytes[k] == close_b {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    bytes.len()
}

/// The `// lock:` / `// atomic:` annotation governing `line`: the non-doc
/// comment on the line itself, or on the directly preceding line.
fn annotation(src: &LintSource, line: usize, key: &str) -> Option<String> {
    for l in [Some(line), line.checked_sub(1)].into_iter().flatten() {
        let masked = &src.lines[l];
        if masked.doc {
            continue;
        }
        // A trailing comment only annotates its own line; the line above
        // counts only when it is comment-only (otherwise `a: Mutex<_>, // lock: a`
        // would leak onto the next field).
        if l != line && !masked.code.trim().is_empty() {
            continue;
        }
        let Some(comment) = masked.comment.as_deref() else {
            continue;
        };
        let trimmed = comment.trim_start();
        if let Some(rest) = trimmed.strip_prefix(key) {
            let token = rest
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_string();
            return Some(token);
        }
    }
    None
}

fn parse_items(
    file_idx: usize,
    file: &FileModel,
) -> (Vec<StructInfo>, Vec<StaticInfo>, Vec<Function>) {
    let src = &file.source;
    let full = src.full_code();
    let bytes = full.as_bytes();

    // impl / trait spans give methods their self type.
    let mut impl_spans: Vec<(usize, usize, String)> = Vec::new();
    for at in word_positions(full, "impl") {
        if let Some((start, end, ty)) = parse_impl_header(full, at) {
            impl_spans.push((start, end, ty));
        }
    }
    for at in word_positions(full, "trait") {
        let mut j = skip_ws(bytes, at + 5);
        let (name, after) = read_ident(full, j);
        if name.is_empty() {
            continue;
        }
        j = after;
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'{' {
            let end = match_delim(bytes, j, b'}', b'{');
            impl_spans.push((j, end, name));
        }
    }

    let mut structs = Vec::new();
    for at in word_positions(full, "struct") {
        if let Some(s) = parse_struct(file_idx, src, full, at) {
            structs.push(s);
        }
    }

    let mut statics = Vec::new();
    for at in word_positions(full, "static") {
        let mut j = skip_ws(bytes, at + 6);
        // `static mut` (none in-tree, but harmless to accept).
        if full[j..].starts_with("mut ") {
            j = skip_ws(bytes, j + 3);
        }
        let (name, after) = read_ident(full, j);
        if name.is_empty() {
            continue;
        }
        j = skip_ws(bytes, after);
        if j >= bytes.len() || bytes[j] != b':' {
            continue;
        }
        let ty_start = j + 1;
        let mut k = ty_start;
        while k < bytes.len() && bytes[k] != b'=' && bytes[k] != b';' {
            if bytes[k] == b'<' {
                k = match_delim(bytes, k, b'>', b'<');
            }
            k += 1;
        }
        let line = src.line_of_offset(at);
        statics.push(StaticInfo {
            file: file_idx,
            name,
            ty: full[ty_start..k.min(bytes.len())].trim().to_string(),
            line,
            in_test: src.in_test(line),
            lock_name: annotation(src, line, "lock:"),
            atomic_role: annotation(src, line, "atomic:"),
        });
    }

    let mut functions = Vec::new();
    for at in word_positions(full, "fn") {
        let mut j = skip_ws(bytes, at + 2);
        let (name, after) = read_ident(full, j);
        if name.is_empty() {
            continue; // `fn(..)` pointer type
        }
        j = after;
        // Signature runs to the body `{` or a `;`, skipping generic args,
        // parameter parens, and `where` bounds that may contain braces only
        // via closures (none in-tree).
        let sig_start = j;
        let mut k = j;
        while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
            match bytes[k] {
                b'<' => k = match_delim(bytes, k, b'>', b'<'),
                b'(' => k = match_delim(bytes, k, b')', b'('),
                _ => {}
            }
            k += 1;
        }
        let signature = full[sig_start..k.min(bytes.len())].to_string();
        let line = src.line_of_offset(at);
        let (body_start, body_end) = if k < bytes.len() && bytes[k] == b'{' {
            (k + 1, match_delim(bytes, k, b'}', b'{'))
        } else {
            (k, k)
        };
        let self_ty = impl_spans
            .iter()
            .filter(|(s, e, _)| *s <= at && at < *e)
            .min_by_key(|(s, e, _)| e - s)
            .map(|(_, _, ty)| ty.clone());
        functions.push(Function {
            file: file_idx,
            name,
            self_ty,
            signature,
            body_start,
            body_end,
            line,
            in_test: src.in_test(line),
        });
    }

    (structs, statics, functions)
}

/// Parses `impl [<..>] [Trait for] Type [<..>] [where ..] {` returning the
/// body span and the self type's base name.
fn parse_impl_header(full: &str, at: usize) -> Option<(usize, usize, String)> {
    let bytes = full.as_bytes();
    let mut j = skip_ws(bytes, at + 4);
    if j < bytes.len() && bytes[j] == b'<' {
        j = match_delim(bytes, j, b'>', b'<') + 1;
    }
    // Header text up to the body brace.
    let mut k = j;
    while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
        if bytes[k] == b'<' {
            k = match_delim(bytes, k, b'>', b'<');
        }
        k += 1;
    }
    if k >= bytes.len() || bytes[k] != b'{' {
        return None;
    }
    let header = &full[j..k];
    let header = header.split(" where ").next().unwrap_or(header);
    let ty_text = match header.find(" for ") {
        Some(pos) => &header[pos + 5..],
        None => header,
    };
    let ty = base_type_name(ty_text)?;
    let end = match_delim(bytes, k, b'}', b'{');
    Some((k, end, ty))
}

/// The base identifier of a type expression: last path segment before any
/// generics (`telemetry::FlightRecorder<T>` -> `FlightRecorder`).
fn base_type_name(ty: &str) -> Option<String> {
    let t = ty
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("dyn ")
        .trim();
    let before_generics = t.split('<').next().unwrap_or(t).trim();
    let seg = before_generics.rsplit("::").next().unwrap_or(before_generics);
    let seg: String = seg
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if seg.is_empty() {
        None
    } else {
        Some(seg)
    }
}

fn parse_struct(
    file_idx: usize,
    src: &LintSource,
    full: &str,
    at: usize,
) -> Option<StructInfo> {
    let bytes = full.as_bytes();
    let mut j = skip_ws(bytes, at + 6);
    let (name, after) = read_ident(full, j);
    if name.is_empty() {
        return None;
    }
    j = after;
    if j < bytes.len() && bytes[j] == b'<' {
        j = match_delim(bytes, j, b'>', b'<') + 1;
    }
    j = skip_ws(bytes, j);
    let line = src.line_of_offset(at);
    let in_test = src.in_test(line);
    let mut fields = Vec::new();
    if j < bytes.len() && bytes[j] == b'{' {
        let end = match_delim(bytes, j, b'}', b'{');
        for (fstart, field_text) in split_top_level(full, j + 1, end, b',') {
            if let Some((fname, fty)) = parse_named_field(&field_text) {
                let fline = src.line_of_offset(fstart + leading_ws(&field_text));
                fields.push(FieldInfo {
                    name: fname,
                    ty: fty,
                    line: fline,
                    lock_name: annotation(src, fline, "lock:"),
                    atomic_role: annotation(src, fline, "atomic:"),
                });
            }
        }
    } else if j < bytes.len() && bytes[j] == b'(' {
        let end = match_delim(bytes, j, b')', b'(');
        for (idx, (fstart, field_text)) in split_top_level(full, j + 1, end, b',').into_iter().enumerate() {
            let ty = strip_visibility(field_text.trim()).to_string();
            if ty.is_empty() {
                continue;
            }
            let fline = src.line_of_offset(fstart + leading_ws(&field_text));
            fields.push(FieldInfo {
                name: idx.to_string(),
                ty,
                line: fline,
                // Tuple fields carry the struct-line annotation.
                lock_name: annotation(src, line, "lock:")
                    .or_else(|| annotation(src, fline, "lock:")),
                atomic_role: annotation(src, line, "atomic:")
                    .or_else(|| annotation(src, fline, "atomic:")),
            });
        }
    }
    Some(StructInfo {
        file: file_idx,
        name,
        line,
        in_test,
        fields,
    })
}

fn leading_ws(s: &str) -> usize {
    s.len() - s.trim_start().len()
}

/// Splits `full[start..end]` on `sep` bytes at the top nesting level,
/// returning each piece with its absolute start offset.
fn split_top_level(full: &str, start: usize, end: usize, sep: u8) -> Vec<(usize, String)> {
    let bytes = full.as_bytes();
    let mut out = Vec::new();
    let mut piece_start = start;
    let mut depth = 0isize;
    let mut k = start;
    while k < end.min(bytes.len()) {
        match bytes[k] {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            // Only close an angle bracket we opened (`->` has no `<`).
            b'>' if depth > 0 && k > 0 && bytes[k - 1] != b'-' => depth -= 1,
            b if b == sep && depth <= 0 => {
                out.push((piece_start, full[piece_start..k].to_string()));
                piece_start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    if piece_start < end.min(bytes.len()) {
        out.push((piece_start, full[piece_start..end.min(bytes.len())].to_string()));
    }
    out
}

fn strip_visibility(s: &str) -> &str {
    let t = s.trim();
    if let Some(rest) = t.strip_prefix("pub") {
        let rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('(') {
            if let Some(close) = after.find(')') {
                return after[close + 1..].trim_start();
            }
        }
        return rest;
    }
    t
}

fn parse_named_field(text: &str) -> Option<(String, String)> {
    let t = strip_visibility(text.trim());
    // Skip attribute lines glued onto the field text.
    let t = t
        .lines()
        .filter(|l| !l.trim_start().starts_with("#["))
        .collect::<Vec<_>>()
        .join("\n");
    let t = t.trim();
    let colon = t.find(':')?;
    let name = t[..colon].trim();
    if name.is_empty() || !name.bytes().all(is_ident_byte) {
        return None;
    }
    Some((name.to_string(), t[colon + 1..].trim().to_string()))
}

/// Validates a `// lock: <name>` / `// atomic: <role>` token's charset.
pub fn valid_annotation_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let models = files
            .iter()
            .map(|(p, s)| FileModel {
                path: p.to_string(),
                krate: crate_of(p),
                source: LintSource::parse(s),
            })
            .collect();
        Workspace::build(models, &BTreeMap::new())
    }

    #[test]
    fn struct_fields_and_annotations() {
        let src = "pub struct Inner {\n\
                   // lock: inner.metrics\n\
                   metrics: Mutex<Option<u32>>,\n\
                   pub flight: Mutex<u8>, // lock: inner.flight\n\
                   count: usize,\n\
                   }\n";
        let w = ws(&[("crates/engine/src/x.rs", src)]);
        assert_eq!(w.structs.len(), 1);
        let s = &w.structs[0];
        assert_eq!(s.name, "Inner");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].name, "metrics");
        assert_eq!(s.fields[0].lock_name.as_deref(), Some("inner.metrics"));
        assert_eq!(s.fields[1].lock_name.as_deref(), Some("inner.flight"));
        assert!(s.fields[2].lock_name.is_none());
    }

    #[test]
    fn tuple_struct_fields_inherit_struct_annotation() {
        let src = "// atomic: counter\npub struct Padded(pub AtomicU64);\n";
        let w = ws(&[("crates/engine/src/x.rs", src)]);
        let s = &w.structs[0];
        assert_eq!(s.fields.len(), 1);
        assert_eq!(s.fields[0].name, "0");
        assert!(s.fields[0].ty.contains("AtomicU64"));
        assert_eq!(s.fields[0].atomic_role.as_deref(), Some("counter"));
    }

    #[test]
    fn statics_are_parsed() {
        let src = "// lock: gil\nstatic GIL: ReentrantMutex = ReentrantMutex::new();\n";
        let w = ws(&[("crates/core/src/gil.rs", src)]);
        assert_eq!(w.statics.len(), 1);
        assert_eq!(w.statics[0].name, "GIL");
        assert!(w.statics[0].ty.contains("ReentrantMutex"));
        assert_eq!(w.statics[0].lock_name.as_deref(), Some("gil"));
    }

    #[test]
    fn methods_get_self_type() {
        let src = "struct T;\nimpl T {\n    fn a(&self) { self.b(); }\n    fn b(&self) {}\n}\n\
                   impl fmt::Display for T {\n    fn fmt(&self) {}\n}\n\
                   fn free() {}\n";
        let w = ws(&[("crates/engine/src/x.rs", src)]);
        let names: Vec<_> = w
            .functions
            .iter()
            .map(|f| (f.self_ty.clone(), f.name.clone()))
            .collect();
        assert!(names.contains(&(Some("T".into()), "a".into())));
        assert!(names.contains(&(Some("T".into()), "fmt".into())));
        assert!(names.contains(&(None, "free".into())));
    }

    #[test]
    fn generic_impl_headers_resolve() {
        let src = "impl<T: Send> Queue<T> {\n    fn push_job(&self) {}\n}\n";
        let w = ws(&[("crates/engine/src/x.rs", src)]);
        assert_eq!(w.functions[0].self_ty.as_deref(), Some("Queue"));
    }

    #[test]
    fn crate_visibility_follows_deps() {
        let mut deps = BTreeMap::new();
        deps.insert("engine".to_string(), vec!["sim".to_string()]);
        deps.insert("core".to_string(), vec!["engine".to_string()]);
        deps.insert("sim".to_string(), vec![]);
        let w = Workspace::build(Vec::new(), &deps);
        assert!(w.sees("engine", "sim"));
        assert!(w.sees("core", "sim"), "transitive");
        assert!(!w.sees("engine", "core"), "no back edge");
        assert!(w.sees("", "core"), "tests see everything");
    }

    #[test]
    fn function_bodies_and_nesting() {
        let src = "fn outer() {\n    fn inner() { deep(); }\n    shallow();\n}\n";
        let w = ws(&[("crates/engine/src/x.rs", src)]);
        let outer = w.functions.iter().position(|f| f.name == "outer").unwrap();
        let ranges = w.nested_fn_ranges(outer);
        assert_eq!(ranges.len(), 1);
        let full = w.files[0].source.full_code();
        let deep_at = full.find("deep").unwrap();
        assert_eq!(w.function_at(0, deep_at), Some(w.functions.iter().position(|f| f.name == "inner").unwrap()));
    }
}
