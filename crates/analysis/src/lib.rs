//! In-tree static analysis for the pyGinkgo workspace.
//!
//! The workspace builds offline, so no clippy plugins or external sanitizers
//! are available; this crate implements the repo-specific rules the engine's
//! safety story depends on as a lightweight, dependency-free lint pass:
//!
//! * **`safety`** — every `unsafe` block, function, or impl must be
//!   justified by an adjacent `// SAFETY:` comment (or a `/// # Safety` doc
//!   section on `unsafe fn` declarations). The work-stealing pool's
//!   correctness rests entirely on these arguments; the rule keeps them from
//!   rotting into prose that silently falls out of sync with the code.
//! * **`panic`** — no `.unwrap()` / `.expect(..)` / `panic!` family macros
//!   in the engine's kernel and solver hot paths (`crates/engine/src/matrix`,
//!   `crates/engine/src/solver`, `crates/engine/src/executor`) outside
//!   `#[cfg(test)]`. Fallible paths must propagate the engine's typed
//!   `GkoError` (`crates/engine/src/base/error.rs`); provably infallible
//!   ones carry an explicit, justified escape hatch.
//! * **`instrumentation`** — every `apply` / `apply_advanced` / SpMV entry
//!   point in a matrix format or solver must emit the `LinOpApply*` logging
//!   events (directly via `crate::log::OpTimer`, or by delegating to an
//!   instrumented sibling), so new kernels cannot silently dodge the
//!   observability layer.
//! * **`forbidden-api`** — no `std::process` use and no wall-clock reads
//!   (`Instant::now`, `SystemTime`) outside the logging, metrics, and
//!   benchmark layers. Kernels must charge the *virtual* timeline; a stray
//!   wall-clock read is how nondeterminism sneaks into "reproducible"
//!   results.
//!
//! On top of the per-line rules, a semantic pass builds a [`model`] of the
//! workspace (structs, impls, functions with brace-matched bodies) and a
//! [`callgraph`] with resolved intra-workspace calls, powering three
//! cross-function rules:
//!
//! * **`lock-order`** — every engine/core `Mutex`/`RwLock` carries a
//!   `// lock: <name>` declaration; held-lock sets are propagated along the
//!   call graph and a cycle in the acquisition-order graph (a potential
//!   deadlock) fails the gate with the offending chain. See [`locks`].
//! * **`atomic-ordering`** — every engine/core `Atomic*` carries a
//!   `// atomic: counter|flag|seqlock` role; Relaxed stores that publish
//!   flags and Acquire/Release fences on pure counters are flagged. See
//!   [`atomics`].
//! * **`panic-reach`** — can-panic facts are propagated over the call graph,
//!   so a panic-free-zone function transitively reaching an `unwrap()`
//!   outside the zone is flagged with the full call chain. See [`callgraph`].
//!
//! The escape hatch is uniform across rules: a comment of the form
//! `// lint: allow(<rule>): <justification>` on (or immediately above) the
//! offending line suppresses the diagnostic. The justification is mandatory;
//! an empty one is itself a diagnostic.
//!
//! Lexing is approximate but honest: the [`tokenizer`] masks out comments,
//! string/char literals, and raw strings so the rules only ever match real
//! code, and `#[cfg(test)]` items are tracked by brace matching.

pub mod atomics;
pub mod callgraph;
pub mod locks;
pub mod model;
pub mod tokenizer;

use model::{crate_of, FileModel, Workspace};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use tokenizer::LintSource;

/// Rule identifiers, as used both in diagnostics and in `lint: allow(...)`.
pub const RULE_SAFETY: &str = "safety";
/// Rule id for the no-panicking-shortcuts rule: `.unwrap()` / `.expect(..)`
/// and the `panic!` macro family are banned in engine hot paths outside
/// `#[cfg(test)]`.
pub const RULE_PANIC: &str = "panic";
/// Rule id for the instrumentation-coverage rule: `apply`/SpMV entry points
/// must emit `LinOpApply*` events (directly or by delegation).
pub const RULE_INSTRUMENTATION: &str = "instrumentation";
/// Rule id for the forbidden-API rule: no `std::process`, no wall-clock
/// reads outside the logging/metrics/bench layers.
pub const RULE_FORBIDDEN_API: &str = "forbidden-api";
/// Rule id for the escape-hatch hygiene rule: every `lint: allow(...)`
/// directive must carry a non-empty justification.
pub const RULE_ESCAPE_HATCH: &str = "escape-hatch";
/// Rule id for the lock-order analysis (declarations, acquisition-order
/// cycles, locks held across pool dispatch). See [`locks`].
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Rule id for the atomic role/ordering analysis. See [`atomics`].
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule id for interprocedural panic reachability. See [`callgraph`].
pub const RULE_PANIC_REACH: &str = "panic-reach";

/// One lint finding, addressable as `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Paths (relative, `/`-separated) whose hot paths must stay panic-free.
pub(crate) const PANIC_FREE_DIRS: &[&str] = &[
    "crates/engine/src/matrix/",
    "crates/engine/src/solver/",
    "crates/engine/src/executor/",
    "crates/engine/src/telemetry/",
    "crates/engine/src/trace.rs",
    "crates/engine/src/profile.rs",
];

/// Directories where `apply`/SpMV entry points must be instrumented.
const INSTRUMENTED_DIRS: &[&str] = &[
    "crates/engine/src/matrix/",
    "crates/engine/src/solver/",
    "crates/engine/src/telemetry/",
    "crates/engine/src/trace.rs",
    "crates/engine/src/profile.rs",
];

/// Files/trees allowed to read wall clocks or touch `std::process`: the
/// logging, metrics, and tracing layers (whose whole job is real-time
/// observation), the benchmark harness, and this crate's own gate binary.
const FORBIDDEN_API_EXEMPT: &[&str] = &[
    "crates/engine/src/log.rs",
    "crates/engine/src/metrics.rs",
    "crates/engine/src/trace.rs",
    "crates/bench/",
    "crates/analysis/",
];

/// Entry-point function names rule `instrumentation` inspects.
/// `build_plan` is the SpMV inspector: it must carry its own `OpTimer` so
/// profilers can attribute plan-building cost separately from apply time.
const ENTRY_POINTS: &[&str] = &[
    "apply",
    "apply_advanced",
    "apply_batch",
    "spmv_into",
    "spmv",
    "build_plan",
];

/// Lints one source file. `rel_path` must be workspace-relative with `/`
/// separators (it selects which path-scoped rules apply).
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let parsed = LintSource::parse(src);
    let mut diags = Vec::new();
    check_escape_hatches(rel_path, &parsed, &mut diags);
    check_safety(rel_path, &parsed, &mut diags);
    if PANIC_FREE_DIRS.iter().any(|d| rel_path.starts_with(d)) {
        check_panic(rel_path, &parsed, &mut diags);
    }
    if INSTRUMENTED_DIRS.iter().any(|d| rel_path.starts_with(d))
        && !rel_path.ends_with("/mod.rs")
    {
        check_instrumentation(rel_path, &parsed, &mut diags);
    }
    if !FORBIDDEN_API_EXEMPT.iter().any(|d| rel_path.starts_with(d)) {
        check_forbidden_api(rel_path, &parsed, &mut diags);
    }
    diags.sort_by_key(|d| d.line);
    diags
}

/// True when an `lint: allow(rule)` directive covers `line` (0-based).
fn allowed(parsed: &LintSource, line: usize, rule: &str) -> bool {
    parsed.allow_at(line).iter().any(|a| a.rule == rule)
}

fn push_unless_allowed(
    diags: &mut Vec<Diagnostic>,
    parsed: &LintSource,
    rel_path: &str,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if !allowed(parsed, line, rule) {
        diags.push(Diagnostic {
            path: rel_path.to_owned(),
            line: line + 1,
            rule,
            message,
        });
    }
}

/// Escape hatches themselves must carry a justification.
fn check_escape_hatches(rel_path: &str, parsed: &LintSource, diags: &mut Vec<Diagnostic>) {
    for (line, allow) in parsed.all_allows() {
        if allow.justification.trim().is_empty() {
            diags.push(Diagnostic {
                path: rel_path.to_owned(),
                line: line + 1,
                rule: RULE_ESCAPE_HATCH,
                message: format!(
                    "lint: allow({}) without a justification — write \
                     `// lint: allow({}): <why this is sound>`",
                    allow.rule, allow.rule
                ),
            });
        }
    }
}

/// Rule `safety`: every `unsafe` keyword needs an adjacent SAFETY argument.
fn check_safety(rel_path: &str, parsed: &LintSource, diags: &mut Vec<Diagnostic>) {
    for line in 0..parsed.lines.len() {
        let code = parsed.code(line);
        if !contains_word(code, "unsafe") {
            continue;
        }
        if has_safety_argument(parsed, line) {
            continue;
        }
        push_unless_allowed(
            diags,
            parsed,
            rel_path,
            line,
            RULE_SAFETY,
            "`unsafe` without an immediately preceding `// SAFETY:` comment \
             (or `/// # Safety` doc section)"
                .to_owned(),
        );
    }
}

/// Walks upward from an `unsafe` site looking for its justification.
///
/// Lines that may sit between the comment and the keyword without breaking
/// adjacency: attributes, doc comments (searched for `# Safety`), further
/// comment lines of the same block, and earlier `unsafe impl` lines (one
/// SAFETY comment may cover a `Send`/`Sync` pair).
fn has_safety_argument(parsed: &LintSource, unsafe_line: usize) -> bool {
    // A SAFETY comment on the same line (before the code) also counts.
    if comment_is_safety(parsed, unsafe_line) {
        return true;
    }
    let mut line = unsafe_line;
    while line > 0 {
        line -= 1;
        let code = parsed.code(line).trim();
        let masked = &parsed.lines[line];
        if comment_is_safety(parsed, line) {
            return true;
        }
        if masked.doc && masked.comment.as_deref().is_some_and(|c| c.contains("# Safety")) {
            return true;
        }
        let is_comment_only = code.is_empty() && masked.comment.is_some();
        let is_attribute = code.starts_with("#[") || code.starts_with("#!");
        let is_unsafe_impl = contains_word(code, "unsafe") && contains_word(code, "impl");
        if is_comment_only || is_attribute || is_unsafe_impl {
            continue;
        }
        return false;
    }
    false
}

fn comment_is_safety(parsed: &LintSource, line: usize) -> bool {
    parsed.lines[line]
        .comment
        .as_deref()
        .is_some_and(|c| c.trim_start().starts_with("SAFETY"))
}

/// Rule `panic`: hot paths must not contain panicking shortcuts.
fn check_panic(rel_path: &str, parsed: &LintSource, diags: &mut Vec<Diagnostic>) {
    const PANIC_MACROS: &[&str] = &["panic", "unimplemented", "todo", "unreachable"];
    for line in 0..parsed.lines.len() {
        if parsed.in_test(line) {
            continue;
        }
        let code = parsed.code(line);
        for (pattern, label) in [(".unwrap()", "unwrap()"), (".expect(", "expect(..)")] {
            if code.contains(pattern) {
                push_unless_allowed(
                    diags,
                    parsed,
                    rel_path,
                    line,
                    RULE_PANIC,
                    format!(
                        "`{label}` in an engine hot path — propagate a typed \
                         GkoError, or justify with `// lint: allow(panic): ...`"
                    ),
                );
            }
        }
        for mac in PANIC_MACROS {
            if macro_invoked(code, mac) {
                push_unless_allowed(
                    diags,
                    parsed,
                    rel_path,
                    line,
                    RULE_PANIC,
                    format!(
                        "`{mac}!` in an engine hot path — return a GkoError, \
                         or justify with `// lint: allow(panic): ...`"
                    ),
                );
            }
        }
    }
}

/// Rule `instrumentation`: `apply`/SpMV entry points must emit LinOpApply
/// events (directly or by delegating to an instrumented sibling).
fn check_instrumentation(rel_path: &str, parsed: &LintSource, diags: &mut Vec<Diagnostic>) {
    let functions = parsed.functions();
    // Cross-check against the log layer: `OpTimer` only counts if the file
    // really imports it from `crate::log`.
    let imports_op_timer = (0..parsed.lines.len()).any(|l| {
        let code = parsed.code(l);
        code.contains("use crate::log") && contains_word(code, "OpTimer")
    });
    let instrumented: Vec<&str> = functions
        .iter()
        .filter(|f| imports_op_timer && contains_word(&f.body, "OpTimer"))
        .map(|f| f.name.as_str())
        .collect();
    for f in &functions {
        if f.in_test || !ENTRY_POINTS.contains(&f.name.as_str()) {
            continue;
        }
        let directly = imports_op_timer && contains_word(&f.body, "OpTimer");
        let delegates_sibling = instrumented
            .iter()
            .any(|name| name != &f.name.as_str() && calls(&f.body, name));
        // Delegation to another object's `apply` family: that callee is
        // itself an entry point checked wherever it is defined.
        let delegates_apply = [".apply(", ".apply_advanced(", ".apply_batch(", ".spmv_into("]
            .iter()
            .any(|p| f.body.contains(p));
        if !(directly || delegates_sibling || delegates_apply) {
            push_unless_allowed(
                diags,
                parsed,
                rel_path,
                f.line,
                RULE_INSTRUMENTATION,
                format!(
                    "entry point `{}` emits no LinOpApply events: wrap the \
                     body in `let _timer = OpTimer::new(exec, \"<op>\")` or \
                     delegate to an instrumented kernel",
                    f.name
                ),
            );
        }
    }
}

/// Rule `forbidden-api`: no process control, no wall clocks outside the
/// observation layers.
fn check_forbidden_api(rel_path: &str, parsed: &LintSource, diags: &mut Vec<Diagnostic>) {
    const FORBIDDEN: &[(&str, &str)] = &[
        ("std::process", "process control belongs in bench/analysis binaries"),
        ("Instant::now", "wall-clock read outside log/metrics/bench"),
        ("SystemTime", "wall-clock read outside log/metrics/bench"),
    ];
    for line in 0..parsed.lines.len() {
        if parsed.in_test(line) {
            continue;
        }
        let code = parsed.code(line);
        for (pattern, why) in FORBIDDEN {
            if code.contains(pattern) {
                push_unless_allowed(
                    diags,
                    parsed,
                    rel_path,
                    line,
                    RULE_FORBIDDEN_API,
                    format!(
                        "`{pattern}` — {why}; kernels charge the virtual \
                         timeline instead (or justify with \
                         `// lint: allow(forbidden-api): ...`)"
                    ),
                );
            }
        }
    }
}

/// Whole-word containment (identifier boundaries on both sides).
pub(crate) fn contains_word(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= haystack.len()
            || !haystack[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// True when `body` invokes `name(...)` (possibly as a method call).
fn calls(body: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = body[start..].find(name) {
        let at = start + pos;
        let before_ok = at == 0
            || !body[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let rest = &body[at + name.len()..];
        if before_ok && rest.trim_start().starts_with('(') {
            return true;
        }
        start = at + name.len();
    }
    false
}

/// True when `code` invokes the macro `name!` (not merely mentions the word).
pub(crate) fn macro_invoked(code: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(name) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let rest = &code[at + name.len()..];
        if before_ok && rest.starts_with('!') {
            return true;
        }
        start = at + name.len();
    }
    false
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Directories (workspace-relative) scanned by [`lint_workspace`].
pub const SCAN_ROOTS: &[&str] = &["crates", "examples", "tests"];

/// Runs the semantic (cross-function) rules over already-parsed sources.
fn lint_semantic(models: Vec<FileModel>, deps: &BTreeMap<String, Vec<String>>) -> Vec<Diagnostic> {
    let ws = Workspace::build(models, deps);
    let graph = callgraph::CallGraph::build(&ws);
    let mut diags = Vec::new();
    locks::check_lock_order(&ws, &graph, &mut diags);
    atomics::check_atomic_ordering(&ws, &mut diags);
    callgraph::check_panic_reach(&ws, &graph, &mut diags);
    diags
}

/// Lints a set of in-memory sources: per-file rules plus the semantic
/// cross-function rules, with every crate visible to every other. This is
/// the entry point for self-tests and fixture-tree tests; [`lint_workspace`]
/// is the on-disk equivalent with real crate dependency edges.
pub fn lint_sources(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut models = Vec::with_capacity(files.len());
    for (path, src) in files {
        diags.extend(lint_file(path, src));
        models.push(FileModel {
            path: (*path).to_owned(),
            krate: crate_of(path),
            source: LintSource::parse(src),
        });
    }
    diags.extend(lint_semantic(models, &BTreeMap::new()));
    sort_diagnostics(&mut diags);
    diags
}

/// Deterministic global order: path, then line, then rule, then message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str())
            .cmp(&(b.path.as_str(), b.line, b.rule, b.message.as_str()))
    });
}

/// Parses every workspace crate's `Cargo.toml` into `crate dir -> direct
/// path-dependency dirs`, so call resolution respects the real dependency
/// direction (the facade may call the engine; never the reverse).
fn crate_deps(root: &Path) -> BTreeMap<String, Vec<String>> {
    let crates_dir = root.join("crates");
    let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
    let mut raw: Vec<(String, Vec<String>)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return BTreeMap::new();
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let dir_name = entry.file_name().to_string_lossy().to_string();
        let mut pkg_name = dir_name.clone();
        let mut deps = Vec::new();
        let mut in_deps = false;
        for line in manifest.lines() {
            let t = line.trim();
            if t.starts_with('[') {
                in_deps = t == "[dependencies]";
                continue;
            }
            if !in_deps {
                if let Some(rest) = t.strip_prefix("name") {
                    if let Some(v) = rest.trim_start().strip_prefix('=') {
                        pkg_name = v.trim().trim_matches('"').to_owned();
                    }
                }
            } else if let Some(key) = t.split(['.', '=', ' ']).next() {
                if !key.is_empty() {
                    deps.push(key.to_owned());
                }
            }
        }
        pkg_to_dir.insert(pkg_name, dir_name.clone());
        raw.push((dir_name, deps));
    }
    raw.into_iter()
        .map(|(dir, deps)| {
            let mapped = deps
                .iter()
                .filter_map(|d| pkg_to_dir.get(d).cloned())
                .collect();
            (dir, mapped)
        })
        .collect()
}

/// Lints every `.rs` file under the workspace root's scan directories: the
/// per-file rules fan out across std threads (parse dominates the cost),
/// then the semantic rules run over the combined model. Returns
/// deterministically sorted diagnostics plus the file count, or an I/O
/// error description.
pub fn lint_workspace(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, src));
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(sources.len().max(1));
    // Interleaved assignment; results carry their index so the merge is
    // deterministic regardless of scheduling.
    let mut indexed: Vec<(usize, Vec<Diagnostic>, FileModel)> = std::thread::scope(|scope| {
        let sources = &sources;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for idx in (w..sources.len()).step_by(workers) {
                        let (rel, src) = &sources[idx];
                        let diags = lint_file(rel, src);
                        let model = FileModel {
                            path: rel.clone(),
                            krate: crate_of(rel),
                            source: LintSource::parse(src),
                        };
                        out.push((idx, diags, model));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("lint worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(idx, _, _)| *idx);

    let mut diags = Vec::new();
    let mut models = Vec::with_capacity(sources.len());
    for (_, d, model) in indexed {
        diags.extend(d);
        models.push(model);
    }
    diags.extend(lint_semantic(models, &crate_deps(root)));
    sort_diagnostics(&mut diags);
    Ok((diags, files.len()))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Self-test: prove the gate has teeth
// ---------------------------------------------------------------------------

/// One injected-violation case for the gate's self-test.
pub struct SelfTestCase {
    /// Short case name for the report.
    pub name: &'static str,
    /// Pretend workspace-relative path (selects path-scoped rules).
    pub path: &'static str,
    /// Source snippet to lint.
    pub src: &'static str,
    /// Rule expected to fire; `None` means the snippet must lint clean.
    pub expect: Option<&'static str>,
}

/// Built-in violation snippets: each must trip exactly the rule it targets,
/// and the clean variants must not. [`run_self_test`] executes them.
pub fn self_test_cases() -> Vec<SelfTestCase> {
    vec![
        SelfTestCase {
            name: "unsafe without SAFETY",
            path: "crates/engine/src/base/array.rs",
            src: "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
            expect: Some(RULE_SAFETY),
        },
        SelfTestCase {
            name: "unsafe with SAFETY passes",
            path: "crates/engine/src/base/array.rs",
            src: "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller promises p is valid.\n    unsafe { *p }\n}\n",
            expect: None,
        },
        SelfTestCase {
            name: "unwrap in kernel hot path",
            path: "crates/engine/src/matrix/injected.rs",
            src: "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
            expect: Some(RULE_PANIC),
        },
        SelfTestCase {
            name: "panic! in solver hot path",
            path: "crates/engine/src/solver/injected.rs",
            src: "pub fn f() {\n    panic!(\"boom\");\n}\n",
            expect: Some(RULE_PANIC),
        },
        SelfTestCase {
            name: "unwrap under cfg(test) passes",
            path: "crates/engine/src/matrix/injected.rs",
            src: "#[cfg(test)]\nmod tests {\n    fn f(v: Option<u32>) -> u32 { v.unwrap() }\n}\n",
            expect: None,
        },
        SelfTestCase {
            name: "justified allow passes",
            path: "crates/engine/src/matrix/injected.rs",
            src: "pub fn f(v: &[u32]) -> u32 {\n    // lint: allow(panic): v is non-empty by construction above.\n    *v.last().unwrap()\n}\n",
            expect: None,
        },
        SelfTestCase {
            name: "allow without justification is flagged",
            path: "crates/engine/src/matrix/injected.rs",
            src: "pub fn f(v: &[u32]) -> u32 {\n    // lint: allow(panic):\n    *v.last().unwrap()\n}\n",
            expect: Some(RULE_ESCAPE_HATCH),
        },
        SelfTestCase {
            name: "uninstrumented apply entry point",
            path: "crates/engine/src/matrix/injected.rs",
            src: "impl Foo {\n    pub fn apply(&self, b: &[f64], x: &mut [f64]) {\n        x.copy_from_slice(b);\n    }\n}\n",
            expect: Some(RULE_INSTRUMENTATION),
        },
        SelfTestCase {
            name: "instrumented apply passes",
            path: "crates/engine/src/matrix/injected.rs",
            src: "use crate::log::OpTimer;\nimpl Foo {\n    pub fn apply(&self, b: &[f64], x: &mut [f64]) {\n        let _timer = OpTimer::new(self.executor(), \"foo\");\n        x.copy_from_slice(b);\n    }\n}\n",
            expect: None,
        },
        SelfTestCase {
            name: "uninstrumented build_plan inspector",
            path: "crates/engine/src/matrix/injected.rs",
            src: "pub fn build_plan(rows: usize) -> Vec<usize> {\n    vec![0, rows]\n}\n",
            expect: Some(RULE_INSTRUMENTATION),
        },
        SelfTestCase {
            name: "wall-clock read in a kernel",
            path: "crates/engine/src/matrix/injected.rs",
            src: "pub fn f() -> u64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n",
            expect: Some(RULE_FORBIDDEN_API),
        },
        SelfTestCase {
            name: "wall-clock in bench is exempt",
            path: "crates/bench/src/injected.rs",
            src: "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
            expect: None,
        },
        SelfTestCase {
            name: "pattern inside a string literal passes",
            path: "crates/engine/src/matrix/injected.rs",
            src: "pub fn f() -> &'static str {\n    \"call .unwrap() and panic!\"\n}\n",
            expect: None,
        },
    ]
}

/// One injected-violation case for the semantic rules' self-test: a small
/// multi-file workspace and the rule expected to fire across it.
pub struct SemSelfTestCase {
    /// Short case name for the report.
    pub name: &'static str,
    /// Pretend workspace files (path, source).
    pub files: &'static [(&'static str, &'static str)],
    /// Rule expected to fire; `None` means the fixture must lint clean.
    pub expect: Option<&'static str>,
}

/// Built-in semantic violation fixtures: known-bad/known-good twins for
/// `lock-order`, `atomic-ordering`, and `panic-reach`.
pub fn sem_self_test_cases() -> Vec<SemSelfTestCase> {
    const CYCLE_BAD: &str = "use std::sync::Mutex;\n\
        pub struct S {\n    // lock: selftest.a\n    a: Mutex<u32>,\n    // lock: selftest.b\n    b: Mutex<u32>,\n}\n\
        impl S {\n\
            pub fn ab(&self) {\n        let g = self.a.lock();\n        let h = self.b.lock();\n    }\n\
            pub fn ba(&self) {\n        let g = self.b.lock();\n        let h = self.a.lock();\n    }\n\
        }\n";
    const CYCLE_GOOD: &str = "use std::sync::Mutex;\n\
        pub struct S {\n    // lock: selftest.a\n    a: Mutex<u32>,\n    // lock: selftest.b\n    b: Mutex<u32>,\n}\n\
        impl S {\n\
            pub fn ab(&self) {\n        let g = self.a.lock();\n        let h = self.b.lock();\n    }\n\
            pub fn ab_again(&self) {\n        let g = self.a.lock();\n        let h = self.b.lock();\n    }\n\
        }\n";
    vec![
        SemSelfTestCase {
            name: "lock-order cycle (ab vs ba)",
            files: &[("crates/engine/src/x.rs", CYCLE_BAD)],
            expect: Some(RULE_LOCK_ORDER),
        },
        SemSelfTestCase {
            name: "consistent lock order passes",
            files: &[("crates/engine/src/x.rs", CYCLE_GOOD)],
            expect: None,
        },
        SemSelfTestCase {
            name: "undeclared engine lock",
            files: &[(
                "crates/engine/src/x.rs",
                "use std::sync::Mutex;\npub struct S {\n    a: Mutex<u32>,\n}\n",
            )],
            expect: Some(RULE_LOCK_ORDER),
        },
        SemSelfTestCase {
            name: "lock held across pool dispatch",
            files: &[(
                "crates/engine/src/x.rs",
                "use std::sync::Mutex;\npub struct S {\n    // lock: selftest.pd\n    a: Mutex<u32>,\n}\n\
                 impl S {\n    pub fn bad(&self, exec: &E) {\n        let g = self.a.lock();\n        exec.parallel_chunks(4, |_| {});\n    }\n}\n",
            )],
            expect: Some(RULE_LOCK_ORDER),
        },
        SemSelfTestCase {
            name: "Relaxed store publishing a flag",
            files: &[(
                "crates/engine/src/x.rs",
                "use std::sync::atomic::{AtomicBool, Ordering};\npub struct S {\n    // atomic: flag\n    armed: AtomicBool,\n}\n\
                 impl S {\n    pub fn arm(&self) { self.armed.store(true, Ordering::Relaxed); }\n}\n",
            )],
            expect: Some(RULE_ATOMIC_ORDERING),
        },
        SemSelfTestCase {
            name: "Release store on a flag passes",
            files: &[(
                "crates/engine/src/x.rs",
                "use std::sync::atomic::{AtomicBool, Ordering};\npub struct S {\n    // atomic: flag\n    armed: AtomicBool,\n}\n\
                 impl S {\n    pub fn arm(&self) { self.armed.store(true, Ordering::Release); }\n}\n",
            )],
            expect: None,
        },
        SemSelfTestCase {
            name: "SeqCst fence on a pure counter",
            files: &[(
                "crates/engine/src/x.rs",
                "use std::sync::atomic::{AtomicU64, Ordering};\npub struct S {\n    // atomic: counter\n    hits: AtomicU64,\n}\n\
                 impl S {\n    pub fn hit(&self) { self.hits.fetch_add(1, Ordering::SeqCst); }\n}\n",
            )],
            expect: Some(RULE_ATOMIC_ORDERING),
        },
        SemSelfTestCase {
            name: "unclassified engine atomic",
            files: &[(
                "crates/engine/src/x.rs",
                "use std::sync::atomic::AtomicUsize;\npub struct S {\n    n: AtomicUsize,\n}\n",
            )],
            expect: Some(RULE_ATOMIC_ORDERING),
        },
        SemSelfTestCase {
            name: "panic-reach across a module boundary",
            files: &[
                (
                    "crates/engine/src/solver/injected.rs",
                    "pub fn iterate() { helper(); }\n",
                ),
                (
                    "crates/engine/src/base/injected.rs",
                    "pub fn helper() { deeper(); }\nfn deeper() { None::<u32>.unwrap(); }\n",
                ),
            ],
            expect: Some(RULE_PANIC_REACH),
        },
        SemSelfTestCase {
            name: "justified panic site stops panic-reach",
            files: &[
                (
                    "crates/engine/src/solver/injected.rs",
                    "pub fn iterate() { helper(); }\n",
                ),
                (
                    "crates/engine/src/base/injected.rs",
                    "pub fn helper() {\n    // lint: allow(panic): value is Some by construction here.\n    Some(1u32).unwrap();\n}\n",
                ),
            ],
            expect: None,
        },
    ]
}

/// Runs the embedded self-test. Returns a per-case report; `Err` lists the
/// cases where the gate failed to behave (missing or spurious diagnostics).
pub fn run_self_test() -> Result<Vec<String>, Vec<String>> {
    let mut report = Vec::new();
    let mut failures = Vec::new();
    for case in sem_self_test_cases() {
        let diags = lint_sources(case.files);
        match case.expect {
            Some(rule) => {
                if diags.iter().any(|d| d.rule == rule) {
                    report.push(format!("self-test: {} -> fires [{rule}]", case.name));
                } else {
                    failures.push(format!(
                        "self-test: {} expected [{rule}] but got {:?}",
                        case.name, diags
                    ));
                }
            }
            None => {
                if diags.is_empty() {
                    report.push(format!("self-test: {} -> clean", case.name));
                } else {
                    failures.push(format!(
                        "self-test: {} expected clean but got {:?}",
                        case.name, diags
                    ));
                }
            }
        }
    }
    for case in self_test_cases() {
        let diags = lint_file(case.path, case.src);
        match case.expect {
            Some(rule) => {
                if diags.iter().any(|d| d.rule == rule) {
                    report.push(format!("self-test: {} -> fires [{rule}]", case.name));
                } else {
                    failures.push(format!(
                        "self-test: {} expected [{rule}] but got {:?}",
                        case.name, diags
                    ));
                }
            }
            None => {
                if diags.is_empty() {
                    report.push(format!("self-test: {} -> clean", case.name));
                } else {
                    failures.push(format!(
                        "self-test: {} expected clean but got {:?}",
                        case.name, diags
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_is_green() {
        let report = run_self_test().expect("gate self-test");
        assert!(report.len() >= 10);
    }

    #[test]
    fn safety_accepts_multi_line_comment_blocks() {
        let src = "pub fn f(p: *const u8) -> u8 {\n\
                   // SAFETY: this spans\n\
                   // two comment lines.\n\
                   unsafe { *p }\n}\n";
        assert!(lint_file("crates/engine/src/base/x.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_covers_send_sync_pair() {
        let src = "// SAFETY: lanes are disjoint.\n\
                   unsafe impl Send for T {}\n\
                   unsafe impl Sync for T {}\n";
        assert!(lint_file("crates/engine/src/base/x.rs", src).is_empty());
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn() {
        let src = "impl T {\n\
                   /// Reads a piece.\n\
                   ///\n\
                   /// # Safety\n\
                   ///\n\
                   /// `i` must be in bounds.\n\
                   #[allow(clippy::mut_from_ref)]\n\
                   unsafe fn piece(&self, i: usize) -> *mut u8 { self.0.add(i) }\n\
                   }\n";
        assert!(lint_file("crates/engine/src/base/x.rs", src).is_empty());
    }

    #[test]
    fn safety_rule_fires_with_unrelated_comment() {
        let src = "pub fn f(p: *const u8) -> u8 {\n\
                   // fast path\n\
                   let x = 1;\n\
                   unsafe { *p }\n}\n";
        let diags = lint_file("crates/engine/src/base/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_SAFETY);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn panic_rule_is_path_scoped() {
        let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        assert!(lint_file("crates/core/src/solver.rs", src).is_empty());
        assert_eq!(lint_file("crates/engine/src/executor/x.rs", src).len(), 1);
    }

    #[test]
    fn expect_err_is_not_expect() {
        let src = "pub fn f(v: Result<u32, u32>) -> u32 { v.expect_err(\"nope\") }\n";
        // expect_err never panics on the Err path being present; the rule
        // targets `.expect(` exactly.
        assert!(lint_file("crates/engine/src/matrix/x.rs", src)
            .iter()
            .all(|d| d.rule != RULE_PANIC || !d.message.contains("expect(..)")));
    }

    #[test]
    fn delegating_apply_is_accepted() {
        let src = "use crate::log::OpTimer;\n\
                   impl T {\n\
                   pub fn apply(&self, b: &[f64], x: &mut [f64]) { self.spmv_into(b, x) }\n\
                   fn spmv_into(&self, b: &[f64], x: &mut [f64]) {\n\
                   let _t = OpTimer::new(self.exec(), \"t\");\n\
                   }\n}\n";
        assert!(lint_file("crates/engine/src/matrix/x.rs", src).is_empty());
    }

    #[test]
    fn cross_object_delegation_is_accepted() {
        let src = "impl T {\n\
                   pub fn apply(&self, b: &[f64], x: &mut [f64]) { self.inner.apply(b, x) }\n\
                   }\n";
        assert!(lint_file("crates/engine/src/matrix/x.rs", src).is_empty());
    }

    #[test]
    fn uninstrumented_apply_batch_is_flagged() {
        let src = "impl T {\n\
                   pub fn apply_batch(&self, b: &B, x: &mut B) { self.kernel(b, x) }\n\
                   fn kernel(&self, b: &B, x: &mut B) {}\n\
                   }\n";
        let diags = lint_file("crates/engine/src/matrix/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_INSTRUMENTATION);
        assert!(diags[0].message.contains("apply_batch"));
    }

    #[test]
    fn delegation_to_apply_batch_is_accepted() {
        // A solver's apply_batch delegating to the operator's apply_batch is
        // instrumented wherever that callee is defined.
        let src = "impl T {\n\
                   pub fn apply_batch(&self, b: &B, x: &mut B) { self.op.apply_batch(b, x) }\n\
                   }\n";
        assert!(lint_file("crates/engine/src/solver/x.rs", src).is_empty());
    }

    #[test]
    fn trailing_allow_on_same_line_works() {
        let src = "pub fn f(v: &[u32]) -> u32 {\n\
                   *v.last().unwrap() // lint: allow(panic): non-empty by construction.\n\
                   }\n";
        assert!(lint_file("crates/engine/src/matrix/x.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_render_file_line() {
        let d = Diagnostic {
            path: "crates/engine/src/matrix/x.rs".into(),
            line: 7,
            rule: RULE_PANIC,
            message: "boom".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/engine/src/matrix/x.rs:7: [panic] boom"
        );
    }
}
