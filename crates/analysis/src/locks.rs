//! Lock declarations, held-set propagation, and the `lock-order` rule.
//!
//! Every `Mutex`/`RwLock`/`ReentrantMutex` field or static in `crates/engine`
//! and `crates/core` must carry a `// lock: <name>` annotation; the analysis
//! then attributes each `.lock()` / `.read()` / `.write()` acquisition site
//! to a named lock, computes how long the guard is held (let-bound guards
//! live to the end of the enclosing block or an explicit `drop(guard)`;
//! temporaries to the end of the statement), propagates held-lock sets
//! through the call graph, and builds the lock-*acquisition-order* graph. A
//! cycle in that graph is a potential deadlock and fails the gate with the
//! offending acquisition chain; a lock held across a pool-dispatch boundary
//! (`parallel_chunks` / `parallel_partials`) is flagged separately, since a
//! worker blocking on a lock held by the submitting thread stalls the whole
//! pool.
//!
//! Approximations (all deliberate, all under- rather than over-claiming):
//! unattributable receivers (locals, call results) are skipped; guards bound
//! in `if`/`while`/`match` heads are considered held only through the first
//! block; closures passed into the pool are opaque. `ReentrantMutex` locks
//! are exempt from the self-cycle check (recursion is their purpose); a
//! plain `Mutex` re-acquired downstream is a self-deadlock and is flagged.
//! An edge can be blessed with `// lint: allow(lock-order): ...` at its
//! acquisition site.

use crate::callgraph::CallGraph;
use crate::model::{valid_annotation_name, FnId, Workspace};
use crate::{Diagnostic, RULE_LOCK_ORDER};
use std::collections::{BTreeMap, BTreeSet};

/// Which lock type a declaration uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LockFlavor {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
    /// The in-tree `ReentrantMutex` (same-thread re-acquisition is legal).
    Reentrant,
}

/// A declared (annotated) lock.
#[derive(Debug)]
pub struct LockDecl {
    /// The `// lock: <name>` name.
    pub name: String,
    /// Declaring struct, or `None` for a static.
    pub struct_name: Option<String>,
    /// Field / static identifier.
    pub field: String,
    /// Declaring file index.
    pub file: usize,
    /// 0-based declaration line.
    pub line: usize,
    /// Lock type.
    pub flavor: LockFlavor,
}

/// Index into the declared-locks table.
pub type LockId = usize;

fn lock_flavor(ty: &str) -> Option<LockFlavor> {
    // A borrowed lock (`&'a Mutex<T>` in a guard struct) is a reference to
    // a lock declared elsewhere, not a lock slot of its own.
    if ty.trim_start().starts_with('&') {
        return None;
    }
    if crate::contains_word(ty, "ReentrantMutex") {
        Some(LockFlavor::Reentrant)
    } else if crate::contains_word(ty, "Mutex") {
        Some(LockFlavor::Mutex)
    } else if crate::contains_word(ty, "RwLock") {
        Some(LockFlavor::RwLock)
    } else {
        None
    }
}

/// Crates whose locks and atomics must be declared.
fn must_declare(path: &str) -> bool {
    (path.starts_with("crates/engine/") || path.starts_with("crates/core/"))
        && !path.contains("/tests/")
        && !path.contains("/benches/")
}

/// Collects declared locks and emits declaration diagnostics (undeclared
/// engine/core locks, malformed names, duplicate names).
pub fn collect_locks(ws: &Workspace, diags: &mut Vec<Diagnostic>) -> Vec<LockDecl> {
    let mut decls: Vec<LockDecl> = Vec::new();
    let mut push_decl = |file: usize,
                         line: usize,
                         struct_name: Option<&str>,
                         field: &str,
                         ty: &str,
                         lock_name: &Option<String>,
                         in_test: bool,
                         diags: &mut Vec<Diagnostic>| {
        let Some(flavor) = lock_flavor(ty) else {
            if lock_name.is_some() && !in_test {
                diags.push(Diagnostic {
                    path: ws.files[file].path.clone(),
                    line: line + 1,
                    rule: RULE_LOCK_ORDER,
                    message: format!(
                        "`// lock:` annotation on `{field}`, whose type `{ty}` \
                         is not a Mutex/RwLock/ReentrantMutex"
                    ),
                });
            }
            return;
        };
        if in_test {
            return;
        }
        let path = &ws.files[file].path;
        match lock_name {
            Some(name) if valid_annotation_name(name) => decls.push(LockDecl {
                name: name.clone(),
                struct_name: struct_name.map(str::to_owned),
                field: field.to_owned(),
                file,
                line,
                flavor,
            }),
            Some(name) => diags.push(Diagnostic {
                path: path.clone(),
                line: line + 1,
                rule: RULE_LOCK_ORDER,
                message: format!(
                    "malformed lock name `{name}` — use `// lock: <name>` with \
                     `[A-Za-z0-9_.-]+`"
                ),
            }),
            None if must_declare(path) => {
                let src = &ws.files[file].source;
                if !src.allow_at(line).iter().any(|a| a.rule == RULE_LOCK_ORDER) {
                    diags.push(Diagnostic {
                        path: path.clone(),
                        line: line + 1,
                        rule: RULE_LOCK_ORDER,
                        message: format!(
                            "undeclared lock `{field}` — every engine/core \
                             Mutex/RwLock must carry a `// lock: <name>` \
                             annotation so the lock-order analysis can track it"
                        ),
                    });
                }
            }
            None => {}
        }
    };
    for s in &ws.structs {
        for field in &s.fields {
            push_decl(
                s.file,
                field.line,
                Some(&s.name),
                &field.name,
                &field.ty,
                &field.lock_name,
                s.in_test || ws.files[s.file].source.in_test(field.line),
                diags,
            );
        }
    }
    for st in &ws.statics {
        push_decl(
            st.file, st.line, None, &st.name, &st.ty, &st.lock_name, st.in_test, diags,
        );
    }
    // Duplicate names would merge unrelated locks into one graph node.
    let mut by_name: BTreeMap<&str, Vec<&LockDecl>> = BTreeMap::new();
    for d in &decls {
        by_name.entry(d.name.as_str()).or_default().push(d);
    }
    for (name, ds) in by_name {
        if ds.len() > 1 {
            let d = ds[1];
            diags.push(Diagnostic {
                path: ws.files[d.file].path.clone(),
                line: d.line + 1,
                rule: RULE_LOCK_ORDER,
                message: format!(
                    "duplicate lock name `{name}` (first declared at {}:{}) — \
                     lock names must be unique workspace-wide",
                    ws.files[ds[0].file].path,
                    ds[0].line + 1
                ),
            });
        }
    }
    decls
}

// ---------------------------------------------------------------------------
// Receivers and acquisition sites
// ---------------------------------------------------------------------------

/// One parsed postfix segment of a receiver chain.
pub struct ReceiverSegment {
    /// Segment identifier (`self`, a field name, or `0`/`1` tuple indices).
    pub name: String,
    /// True when the segment carried a call suffix (`helper()`).
    pub is_call: bool,
}

/// Public alias used by the atomics analysis.
pub fn receiver_segments(full: &str, dot: usize) -> Option<Vec<ReceiverSegment>> {
    parse_receiver(full, dot)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn match_backward(bytes: &[u8], close: usize, open_b: u8, close_b: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = close + 1;
    while k > 0 {
        k -= 1;
        if bytes[k] == close_b {
            depth += 1;
        } else if bytes[k] == open_b {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Parses the receiver chain ending at the `.` at `dot` (leftmost segment
/// first). Returns `None` for shapes the analysis cannot attribute.
fn parse_receiver(full: &str, dot: usize) -> Option<Vec<ReceiverSegment>> {
    let bytes = full.as_bytes();
    let mut segs: Vec<ReceiverSegment> = Vec::new();
    let mut k = dot; // position just past the current segment
    loop {
        while k > 0 && (bytes[k - 1] as char).is_whitespace() {
            k -= 1;
        }
        if k == 0 {
            break;
        }
        let mut is_call = false;
        // Trailing index / call suffixes.
        loop {
            match bytes[k - 1] {
                b']' => k = match_backward(bytes, k - 1, b'[', b']')?,
                b')' => {
                    k = match_backward(bytes, k - 1, b'(', b')')?;
                    is_call = true;
                }
                _ => break,
            }
            if k == 0 {
                return None;
            }
        }
        let end = k;
        while k > 0 && is_ident_byte(bytes[k - 1]) {
            k -= 1;
        }
        if k == end {
            return None; // parenthesized expression or literal receiver
        }
        segs.push(ReceiverSegment {
            name: full[k..end].to_string(),
            is_call,
        });
        while k > 0 && (bytes[k - 1] as char).is_whitespace() {
            k -= 1;
        }
        if k >= 1 && bytes[k - 1] == b'.' {
            k -= 1;
            continue;
        }
        if k >= 2 && bytes[k - 1] == b':' && bytes[k - 2] == b':' {
            k -= 2;
            continue;
        }
        break;
    }
    segs.reverse();
    if segs.is_empty() {
        None
    } else {
        Some(segs)
    }
}

/// Attributes a receiver chain to a declared lock.
fn attribute(
    decls: &[LockDecl],
    caller: &crate::model::Function,
    segs: &[ReceiverSegment],
) -> Option<LockId> {
    let last = segs.last()?;
    if last.is_call {
        return None; // method-result receivers are handled via the call graph
    }
    if segs.len() == 1 {
        // Bare identifier: a static lock, or an unattributable local.
        let name = &segs[0].name;
        let hits: Vec<LockId> = decls
            .iter()
            .enumerate()
            .filter(|(_, d)| d.struct_name.is_none() && &d.field == name)
            .map(|(i, _)| i)
            .collect();
        return if hits.len() == 1 { Some(hits[0]) } else { None };
    }
    // Dotted chain (possibly through `.0` tuple hops): attribute by the last
    // field segment's name, narrowing by enclosing impl type, then file.
    let fname = &last.name;
    let field_hits: Vec<LockId> = decls
        .iter()
        .enumerate()
        .filter(|(_, d)| d.struct_name.is_some() && &d.field == fname)
        .map(|(i, _)| i)
        .collect();
    match field_hits.len() {
        0 => None,
        1 => Some(field_hits[0]),
        _ => {
            if let Some(self_ty) = &caller.self_ty {
                let by_ty: Vec<LockId> = field_hits
                    .iter()
                    .filter(|i| decls[**i].struct_name.as_deref() == Some(self_ty))
                    .copied()
                    .collect();
                if by_ty.len() == 1 {
                    return Some(by_ty[0]);
                }
            }
            let by_file: Vec<LockId> = field_hits
                .iter()
                .filter(|i| decls[**i].file == caller.file)
                .copied()
                .collect();
            if by_file.len() == 1 {
                Some(by_file[0])
            } else {
                None
            }
        }
    }
}

/// One attributed lock acquisition with its hold region.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Which declared lock.
    pub lock: LockId,
    /// Byte offset of the acquisition (the receiver's trailing `.`).
    pub offset: usize,
    /// 0-based line.
    pub line: usize,
    /// Byte offset where the guard is provably dropped.
    pub hold_end: usize,
}

const ACQ_METHODS: &[(&str, bool)] = &[(".lock(", false), (".read(", true), (".write(", true)];

/// Extracts attributed acquisitions from one function body.
fn acquisitions_in(
    ws: &Workspace,
    decls: &[LockDecl],
    id: FnId,
    graph: &CallGraph,
    guard_locks: &[BTreeSet<LockId>],
) -> Vec<Acquisition> {
    let f = &ws.functions[id];
    let src = &ws.files[f.file].source;
    let full = src.full_code();
    let skip = ws.nested_fn_ranges(id);
    let in_skip = |o: usize| skip.iter().any(|(s, e)| *s <= o && o < *e);
    let mut out = Vec::new();
    for (pat, needs_rwlock) in ACQ_METHODS {
        let mut i = f.body_start;
        while let Some(pos) = full[i..f.body_end].find(pat) {
            let dot = i + pos;
            i = dot + pat.len();
            if in_skip(dot) || src.in_test(src.line_of_offset(dot)) {
                continue;
            }
            let Some(segs) = parse_receiver(full, dot) else {
                continue;
            };
            let Some(lock) = attribute(decls, f, &segs) else {
                continue;
            };
            // `.read()`/`.write()` count only on RwLocks; `.lock()` only on
            // mutexes (a `.read()` on an io stream must not become a lock).
            let is_rw = decls[lock].flavor == LockFlavor::RwLock;
            if is_rw != *needs_rwlock {
                continue;
            }
            out.push(Acquisition {
                lock,
                offset: dot,
                line: src.line_of_offset(dot),
                hold_end: hold_region_end(full, f.body_start, f.body_end, dot),
            });
        }
    }
    // Calls to guard-returning helpers acquire the helper's locks here.
    for c in &graph.calls[id] {
        if in_skip(c.offset) || src.in_test(src.line_of_offset(c.offset)) {
            continue;
        }
        let mut locks: BTreeSet<LockId> = BTreeSet::new();
        for t in &c.targets {
            if is_guard_fn(ws, *t) {
                locks.extend(guard_locks[*t].iter().copied());
            }
        }
        for lock in locks {
            out.push(Acquisition {
                lock,
                offset: c.offset,
                line: src.line_of_offset(c.offset),
                hold_end: hold_region_end(full, f.body_start, f.body_end, c.offset),
            });
        }
    }
    out.sort_by_key(|a| a.offset);
    out
}

/// True when a function returns a lock guard (its acquisitions belong to the
/// caller's scope, not its own).
pub fn is_guard_fn(ws: &Workspace, id: FnId) -> bool {
    let sig = &ws.functions[id].signature;
    sig.find("->").is_some_and(|p| sig[p..].contains("Guard"))
}

/// Computes where the guard acquired at `site` is dropped.
fn hold_region_end(full: &str, body_start: usize, body_end: usize, site: usize) -> usize {
    let bytes = full.as_bytes();
    // Statement start: nearest `;`, `{` or `}` walking left.
    let mut s = site;
    while s > body_start {
        match bytes[s - 1] {
            b';' | b'{' | b'}' => break,
            _ => s -= 1,
        }
    }
    let head = full[s..site].trim_start();
    let binding = head.strip_prefix("let ").and_then(|rest| {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let end = rest
            .find(|c: char| !is_ident_byte(c as u8))
            .unwrap_or(rest.len());
        let ident = &rest[..end];
        let after = rest[end..].trim_start();
        if !ident.is_empty()
            && ident != "_"
            && (after.starts_with('=') || after.starts_with(':'))
        {
            Some(ident.to_string())
        } else {
            None
        }
    });
    if let Some(ident) = binding {
        // Held to the end of the enclosing block, or an explicit drop.
        let mut depth = 0isize;
        let mut k = site;
        let mut end = body_end;
        while k < body_end {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    if depth == 0 {
                        end = k;
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(rel) = find_drop_of(&full[site..end], &ident) {
            return site + rel;
        }
        return end;
    }
    // Temporary: held to the end of the statement — the next `;` at this
    // nesting level, or (for `if let`/`while let`/`match` heads) the close
    // of the first block the construct opens.
    let head_is_block_expr = ["if", "while", "match", "for"]
        .iter()
        .any(|kw| head == *kw || head.starts_with(&format!("{kw} ")) || head.starts_with(&format!("{kw}(")));
    let mut depth = 0isize;
    let mut entered_block = false;
    let mut k = site;
    while k < body_end {
        match bytes[k] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' => {
                depth += 1;
                entered_block = true;
            }
            b'}' => {
                depth -= 1;
                if depth <= 0 && head_is_block_expr && entered_block {
                    return k;
                }
                if depth < 0 {
                    return k;
                }
            }
            b';' if depth <= 0 => return k,
            _ => {}
        }
        k += 1;
    }
    body_end
}

fn find_drop_of(text: &str, ident: &str) -> Option<usize> {
    let mut i = 0;
    while let Some(pos) = text[i..].find("drop(") {
        let at = i + pos;
        i = at + 5;
        let before_ok = at == 0 || !is_ident_byte(text.as_bytes()[at - 1]);
        let inner = text[at + 5..].trim_start();
        if before_ok && inner.starts_with(ident) {
            let after = &inner[ident.len()..];
            if after.trim_start().starts_with(')') {
                return Some(at);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Order graph and the rule
// ---------------------------------------------------------------------------

/// A lock-order edge `from -> to` with the acquisition that witnessed it.
#[derive(Debug)]
pub struct OrderEdge {
    /// Held lock.
    pub from: LockId,
    /// Lock acquired while `from` is held.
    pub to: LockId,
    /// Witness file index.
    pub file: usize,
    /// Witness 0-based line (the inner acquisition or the crossing call).
    pub line: usize,
    /// Human-readable witness.
    pub witness: String,
}

/// Functions that hand work to the pool: holding a lock across these blocks
/// every worker that needs it.
const POOL_BOUNDARIES: &[&str] = &["parallel_chunks", "parallel_partials"];

/// Runs the full lock-order analysis, appending diagnostics.
pub fn check_lock_order(ws: &Workspace, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let decls = collect_locks(ws, diags);
    let n = ws.functions.len();

    // Locks a guard-returning helper hands to its caller (direct only).
    let empty_guards: Vec<BTreeSet<LockId>> = vec![BTreeSet::new(); n];
    let guard_locks: Vec<BTreeSet<LockId>> = (0..n)
        .map(|id| {
            if is_guard_fn(ws, id) {
                acquisitions_in(ws, &decls, id, graph, &empty_guards)
                    .iter()
                    .map(|a| a.lock)
                    .collect()
            } else {
                BTreeSet::new()
            }
        })
        .collect();

    let acqs: Vec<Vec<Acquisition>> = (0..n)
        .map(|id| {
            if ws.functions[id].in_test {
                Vec::new()
            } else {
                acquisitions_in(ws, &decls, id, graph, &guard_locks)
            }
        })
        .collect();

    // acq_star: every lock a call into `f` may end up acquiring.
    let mut star: Vec<BTreeSet<LockId>> = acqs
        .iter()
        .map(|v| v.iter().map(|a| a.lock).collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut add: BTreeSet<LockId> = BTreeSet::new();
            for c in &graph.calls[id] {
                for t in &c.targets {
                    add.extend(star[*t].iter().copied());
                }
            }
            for l in add {
                if star[id].insert(l) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut edges: BTreeMap<(LockId, LockId), OrderEdge> = BTreeMap::new();
    let mut add_edge = |from: LockId, to: LockId, file: usize, line: usize, witness: String| {
        if from == to && decls[from].flavor == LockFlavor::Reentrant {
            return; // recursion is the reentrant lock's contract
        }
        let src = &ws.files[file].source;
        if src.allow_at(line).iter().any(|a| a.rule == RULE_LOCK_ORDER) {
            return;
        }
        edges.entry((from, to)).or_insert(OrderEdge {
            from,
            to,
            file,
            line,
            witness,
        });
    };

    for (id, f) in ws.functions.iter().enumerate() {
        if f.in_test || is_guard_fn(ws, id) {
            continue;
        }
        let src = &ws.files[f.file].source;
        // Nested direct acquisitions.
        for a in &acqs[id] {
            for b in &acqs[id] {
                if a.offset < b.offset && b.offset < a.hold_end {
                    add_edge(
                        a.lock,
                        b.lock,
                        f.file,
                        b.line,
                        format!(
                            "{} acquires `{}` at {}:{} while holding `{}` (taken at line {})",
                            f.label(),
                            decls[b.lock].name,
                            ws.files[f.file].path,
                            b.line + 1,
                            decls[a.lock].name,
                            a.line + 1
                        ),
                    );
                }
            }
        }
        // Calls made while holding a lock: edge to everything the callee may
        // acquire, and the pool-dispatch boundary check.
        for c in &graph.calls[id] {
            let call_line = src.line_of_offset(c.offset);
            for a in &acqs[id] {
                if !(a.offset < c.offset && c.offset < a.hold_end) {
                    continue;
                }
                // Guard-helper calls already became acquisitions above; the
                // edge from `a` to them is the nested-direct case.
                let targets: Vec<FnId> = c
                    .targets
                    .iter()
                    .filter(|t| !is_guard_fn(ws, **t))
                    .copied()
                    .collect();
                for t in &targets {
                    for m in &star[*t] {
                        add_edge(
                            a.lock,
                            *m,
                            f.file,
                            call_line,
                            format!(
                                "{} holds `{}` while calling {} at {}:{}, which \
                                 may acquire `{}`",
                                f.label(),
                                decls[a.lock].name,
                                ws.functions[*t].label(),
                                ws.files[f.file].path,
                                call_line + 1,
                                decls[*m].name
                            ),
                        );
                    }
                }
                if POOL_BOUNDARIES.contains(&c.name.as_str())
                    && !src
                        .allow_at(call_line)
                        .iter()
                        .any(|al| al.rule == RULE_LOCK_ORDER)
                {
                    diags.push(Diagnostic {
                        path: ws.files[f.file].path.clone(),
                        line: call_line + 1,
                        rule: RULE_LOCK_ORDER,
                        message: format!(
                            "{} holds `{}` (taken at line {}) across the pool \
                             dispatch boundary `{}` — a worker blocking on it \
                             would stall the pool; drop the guard first",
                            f.label(),
                            decls[a.lock].name,
                            a.line + 1,
                            c.name
                        ),
                    });
                }
            }
        }
    }

    report_cycles(ws, &decls, &edges, diags);
}

/// Finds strongly connected components of the order graph and reports each
/// cyclic one once, with the acquisition chain.
fn report_cycles(
    ws: &Workspace,
    decls: &[LockDecl],
    edges: &BTreeMap<(LockId, LockId), OrderEdge>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut adj: BTreeMap<LockId, Vec<LockId>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(*from).or_default().push(*to);
    }
    // Self-loops are immediate deadlocks.
    let mut in_reported_scc: BTreeSet<LockId> = BTreeSet::new();
    for ((from, to), e) in edges {
        if from == to {
            diags.push(Diagnostic {
                path: ws.files[e.file].path.clone(),
                line: e.line + 1,
                rule: RULE_LOCK_ORDER,
                message: format!(
                    "self-deadlock: `{}` is re-acquired while already held — {}",
                    decls[*from].name, e.witness
                ),
            });
            in_reported_scc.insert(*from);
        }
    }
    // Multi-lock cycles: find one concrete cycle per SCC via DFS.
    let nodes: Vec<LockId> = adj.keys().copied().collect();
    let mut reported: BTreeSet<BTreeSet<LockId>> = BTreeSet::new();
    for &start in &nodes {
        if in_reported_scc.contains(&start) {
            continue;
        }
        if let Some(cycle) = find_cycle_from(start, &adj) {
            let key: BTreeSet<LockId> = cycle.iter().copied().collect();
            if !reported.insert(key) {
                continue;
            }
            let names: Vec<&str> = cycle
                .iter()
                .chain(cycle.first())
                .map(|l| decls[*l].name.as_str())
                .collect();
            let mut witnesses = Vec::new();
            for w in cycle.windows(2) {
                if let Some(e) = edges.get(&(w[0], w[1])) {
                    witnesses.push(format!(
                        "{} ({}:{})",
                        e.witness,
                        ws.files[e.file].path,
                        e.line + 1
                    ));
                }
            }
            if let (Some(&last), Some(&first)) = (cycle.last(), cycle.first()) {
                if let Some(e) = edges.get(&(last, first)) {
                    witnesses.push(format!(
                        "{} ({}:{})",
                        e.witness,
                        ws.files[e.file].path,
                        e.line + 1
                    ));
                }
            }
            let anchor = edges.get(&(cycle[0], cycle[1 % cycle.len()]));
            let (path, line) = anchor
                .map(|e| (ws.files[e.file].path.clone(), e.line + 1))
                .unwrap_or_else(|| ("<workspace>".to_owned(), 0));
            diags.push(Diagnostic {
                path,
                line,
                rule: RULE_LOCK_ORDER,
                message: format!(
                    "lock-order cycle (potential deadlock): {} — acquisition \
                     chain: {}",
                    names.join(" -> "),
                    witnesses.join("; ")
                ),
            });
        }
    }
}

/// DFS for a cycle reachable from (and returning to) `start`.
fn find_cycle_from(start: LockId, adj: &BTreeMap<LockId, Vec<LockId>>) -> Option<Vec<LockId>> {
    let mut path = vec![start];
    let mut on_path: BTreeSet<LockId> = [start].into();
    let mut visited: BTreeSet<LockId> = BTreeSet::new();
    fn dfs(
        node: LockId,
        start: LockId,
        adj: &BTreeMap<LockId, Vec<LockId>>,
        path: &mut Vec<LockId>,
        on_path: &mut BTreeSet<LockId>,
        visited: &mut BTreeSet<LockId>,
    ) -> bool {
        for next in adj.get(&node).into_iter().flatten() {
            if *next == start && path.len() > 1 {
                return true;
            }
            if on_path.contains(next) || visited.contains(next) || *next == start {
                continue;
            }
            path.push(*next);
            on_path.insert(*next);
            if dfs(*next, start, adj, path, on_path, visited) {
                return true;
            }
            on_path.remove(next);
            visited.insert(*next);
            path.pop();
        }
        false
    }
    if dfs(start, start, adj, &mut path, &mut on_path, &mut visited) {
        Some(path)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{crate_of, FileModel};
    use crate::tokenizer::LintSource;
    use std::collections::BTreeMap;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models = files
            .iter()
            .map(|(p, s)| FileModel {
                path: p.to_string(),
                krate: crate_of(p),
                source: LintSource::parse(s),
            })
            .collect();
        let ws = Workspace::build(models, &BTreeMap::new());
        let graph = CallGraph::build(&ws);
        let mut diags = Vec::new();
        check_lock_order(&ws, &graph, &mut diags);
        diags
    }

    const AB_CYCLE: &str = "use std::sync::Mutex;\n\
        pub struct S {\n\
            // lock: s.a\n\
            a: Mutex<u32>,\n\
            // lock: s.b\n\
            b: Mutex<u32>,\n\
        }\n\
        impl S {\n\
            pub fn ab(&self) {\n\
                let g = self.a.lock();\n\
                let h = self.b.lock();\n\
            }\n\
            pub fn ba(&self) {\n\
                let g = self.b.lock();\n\
                let h = self.a.lock();\n\
            }\n\
        }\n";

    #[test]
    fn ab_ba_cycle_is_flagged_with_chain() {
        let diags = run(&[("crates/engine/src/x.rs", AB_CYCLE)]);
        let cycle: Vec<_> = diags
            .iter()
            .filter(|d| d.message.contains("lock-order cycle"))
            .collect();
        assert_eq!(cycle.len(), 1, "{diags:?}");
        assert!(cycle[0].message.contains("s.a"));
        assert!(cycle[0].message.contains("s.b"));
        assert!(cycle[0].message.contains("acquisition chain"), "{}", cycle[0].message);
        assert!(cycle[0].message.contains(":"), "witness has file:line");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = AB_CYCLE.replace(
            "let g = self.b.lock();\nlet h = self.a.lock();",
            "let g = self.a.lock();\nlet h = self.b.lock();",
        );
        assert!(!src.contains("let g = self.b.lock()"), "replace must apply");
        let diags = run(&[("crates/engine/src/x.rs", &src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn drop_releases_before_second_acquisition() {
        let src = "use std::sync::Mutex;\n\
            pub struct S {\n\
                // lock: s.a\n\
                a: Mutex<u32>,\n\
                // lock: s.b\n\
                b: Mutex<u32>,\n\
            }\n\
            impl S {\n\
                pub fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                pub fn ba(&self) {\n\
                    let g = self.b.lock();\n\
                    drop(g);\n\
                    let h = self.a.lock();\n\
                }\n\
            }\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn undeclared_engine_lock_is_flagged() {
        let src = "use std::sync::Mutex;\npub struct S {\n    a: Mutex<u32>,\n}\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("undeclared lock `a`"));
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn undeclared_lock_outside_engine_core_is_fine() {
        let src = "use std::sync::Mutex;\npub struct S {\n    a: Mutex<u32>,\n}\n";
        assert!(run(&[("crates/bench/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn cross_function_cycle_through_calls() {
        let src = "use std::sync::Mutex;\n\
            pub struct S {\n\
                // lock: cf.a\n\
                a: Mutex<u32>,\n\
                // lock: cf.b\n\
                b: Mutex<u32>,\n\
            }\n\
            impl S {\n\
                pub fn outer_ab(&self) {\n\
                    let g = self.a.lock();\n\
                    self.take_b();\n\
                }\n\
                fn take_b(&self) { let h = self.b.lock(); }\n\
                pub fn outer_ba(&self) {\n\
                    let g = self.b.lock();\n\
                    self.take_a();\n\
                }\n\
                fn take_a(&self) { let h = self.a.lock(); }\n\
            }\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert!(
            diags.iter().any(|d| d.message.contains("lock-order cycle")),
            "{diags:?}"
        );
    }

    #[test]
    fn guard_helper_attributes_to_caller() {
        let src = "use std::sync::{Mutex, MutexGuard};\n\
            pub struct S {\n\
                // lock: gh.a\n\
                a: Mutex<u32>,\n\
                // lock: gh.b\n\
                b: Mutex<u32>,\n\
            }\n\
            impl S {\n\
                fn a_guard(&self) -> MutexGuard<'_, u32> { self.a.lock().unwrap() }\n\
                pub fn ab(&self) {\n\
                    let g = self.a_guard();\n\
                    let h = self.b.lock();\n\
                }\n\
                pub fn ba(&self) {\n\
                    let g = self.b.lock();\n\
                    let h = self.a_guard();\n\
                }\n\
            }\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert!(
            diags.iter().any(|d| d.message.contains("lock-order cycle")),
            "{diags:?}"
        );
    }

    #[test]
    fn reentrant_self_reacquisition_is_exempt() {
        let src = "pub struct R {\n\
                // lock: r.inner\n\
                inner: ReentrantMutex,\n\
            }\n\
            impl R {\n\
                pub fn outer(&self) {\n\
                    let g = self.inner.lock();\n\
                    self.also_locks();\n\
                }\n\
                pub fn also_locks(&self) { let g = self.inner.lock(); }\n\
            }\n";
        let diags = run(&[("crates/core/src/x.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn plain_mutex_self_reacquisition_is_flagged() {
        let src = "use std::sync::Mutex;\n\
            pub struct R {\n\
                // lock: sd.inner\n\
                inner: Mutex<u32>,\n\
            }\n\
            impl R {\n\
                pub fn outer(&self) {\n\
                    let g = self.inner.lock();\n\
                    self.also_locks();\n\
                }\n\
                pub fn also_locks(&self) { let g = self.inner.lock(); }\n\
            }\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert!(
            diags.iter().any(|d| d.message.contains("self-deadlock")),
            "{diags:?}"
        );
    }

    #[test]
    fn lock_held_across_pool_dispatch_is_flagged() {
        let src = "use std::sync::Mutex;\n\
            pub struct S {\n\
                // lock: pd.a\n\
                a: Mutex<u32>,\n\
            }\n\
            impl S {\n\
                pub fn bad(&self, exec: &E) {\n\
                    let g = self.a.lock();\n\
                    exec.parallel_chunks(4, |_| {});\n\
                }\n\
            }\n";
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("pool dispatch boundary")),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_blesses_an_edge() {
        let src = AB_CYCLE.replace(
            "let h = self.a.lock();",
            "// lint: allow(lock-order): shutdown path, pool already drained.\n                let h = self.a.lock();",
        );
        let diags = run(&[("crates/engine/src/x.rs", &src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn multiline_receiver_chain_attributes() {
        let src = "use std::sync::RwLock;\n\
            pub struct M {\n\
                // lock: m.kernels\n\
                kernels: RwLock<u32>,\n\
            }\n\
            impl M {\n\
                pub fn get(&self) -> u32 {\n\
                    *self.kernels\n\
                        .read()\n\
                        .unwrap()\n\
                }\n\
            }\n";
        // No diagnostics expected; the point is that attribution does not
        // misfire (an unattributed `.read()` would be silently skipped, so
        // assert via the declaration side staying clean).
        let diags = run(&[("crates/engine/src/x.rs", src)]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
