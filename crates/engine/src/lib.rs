//! `gko` — a from-scratch Rust reimplementation of the architecture of the
//! [Ginkgo](https://ginkgo-project.github.io) sparse linear algebra engine,
//! built as the computational substrate for the pyGinkgo reproduction.
//!
//! The crate mirrors Ginkgo's layering (paper §3.2, §4):
//!
//! * **Executors** ([`executor`]) decide where data lives and where kernels
//!   run. `Reference`, `Omp`, `Cuda`, and `Hip` executors are provided; the
//!   device executors are deterministic performance-model simulations (see
//!   `pygko-sim`) that execute real numerics.
//! * **The [`LinOp`](linop::LinOp) abstraction** (paper §4.2) unifies
//!   matrices, solvers, and preconditioners behind one `apply` interface,
//!   enabling composable solver pipelines.
//! * **Matrix formats** ([`matrix`]): `Dense`, `Csr` (with classical and
//!   load-balanced SpMV strategies), `Coo`, `Ell`, and `Sellp`.
//! * **Solvers** ([`solver`]): CG, CGS, BiCGStab, GMRES (Givens rotations,
//!   per-iteration residual updates — the exact algorithmic choices §6.2.1
//!   contrasts with CuPy), Richardson/IR, triangular solves, and a dense LU
//!   direct solver.
//! * **Preconditioners** ([`preconditioner`]): scalar and block Jacobi, ILU,
//!   and IC, backed by the [`factorization`] module's ILU(0)/IC(0).
//! * **Stopping criteria** ([`stop`]), **loggers** ([`log`]), and the
//!   always-on **metrics registry** ([`metrics`]: latency histograms,
//!   Prometheus/Chrome-trace exporters).
//! * **The live telemetry plane** ([`telemetry`]): a std-only HTTP scrape
//!   endpoint (`/metrics`, `/healthz`, `/runs`), per-lane pool utilization
//!   series, and an anomaly-detecting flight recorder.
//! * **The runtime sanitizer** ([`sanitize`]): chunk-overlap detection for
//!   the worker pool, structural `validate()` for every matrix format, and
//!   a seeded schedule-perturbation stress harness.
//! * **Causal span tracing** ([`trace`]): per-solve trace trees from the
//!   solve root down to individual pool-lane chunks, tail-sampled into a
//!   bounded store and served by the telemetry plane (`/traces`).
//! * **Continuous profiling** ([`profile`]): always-on flame aggregation
//!   over the span stream — windowed [`FlameNode`](profile) trees keyed by
//!   span path with wall/virtual self-time, per-lane attribution, and
//!   p50/p99 per path, served as JSON or folded stacks (`/profile`) and
//!   diffed against named baselines (`/profile/diff`).
//! * **The config solver** ([`config`], paper §5): a generic entry point that
//!   builds arbitrary solver/preconditioner pipelines from a JSON-style
//!   configuration tree, with a from-scratch JSON parser/serializer.

#![warn(missing_docs)]

pub mod base;
pub mod config;
pub mod executor;
pub mod factorization;
pub mod linop;
pub mod log;
pub mod matrix;
pub mod metrics;
pub mod preconditioner;
pub mod profile;
pub mod sanitize;
pub mod solver;
pub mod stop;
pub mod telemetry;
pub mod trace;

pub use base::array::Array;
pub use base::dim::Dim2;
pub use base::error::{GkoError, Result};
pub use base::types::{Index, Value};
pub use executor::pool::{LaneStats, PoolStats};
pub use executor::Executor;
pub use linop::LinOp;
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use profile::{
    DiffRow, FlameStat, ProfileConfig, ProfileDiff, ProfileSnapshot, ProfileStore,
};
pub use sanitize::{ClaimLog, ClaimViolation, Sanitizer, SanitizerReport};
pub use telemetry::{
    Anomaly, DetectorConfig, FlightRecorder, FlightReport, TelemetryServer,
};
pub use trace::{
    SpanContext, SpanId, SpanKind, SpanRecord, TraceConfig, TraceId, TraceReport, Tracer,
};
