//! Jacobi (diagonal and block-diagonal) preconditioner.

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::Executor;
use crate::factorization::lu::DenseLu;
use crate::linop::{check_apply_dims, LinOp};
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;

/// Jacobi preconditioner: `M = diag-blocks(A)`, applied as `z = M^{-1} r`.
///
/// With `block_size == 1` this is the scalar Jacobi of Listing 2; larger
/// blocks invert dense diagonal blocks (Ginkgo's block-Jacobi).
pub struct Jacobi<V> {
    exec: Executor,
    size: Dim2,
    block_size: usize,
    /// Scalar fast path: inverted diagonal.
    inv_diag: Option<Vec<V>>,
    /// Block path: one LU per diagonal block (last may be smaller).
    blocks: Option<Vec<DenseLu>>,
}

impl<V: Value> Jacobi<V> {
    /// Scalar Jacobi (`block_size = 1`).
    pub fn new<I: Index>(matrix: &Csr<V, I>) -> Result<Self> {
        Jacobi::with_block_size(matrix, 1)
    }

    /// Block Jacobi with the given block size.
    pub fn with_block_size<I: Index>(matrix: &Csr<V, I>, block_size: usize) -> Result<Self> {
        if !matrix.size().is_square() {
            return Err(GkoError::BadInput("jacobi needs a square matrix".into()));
        }
        if block_size == 0 {
            return Err(GkoError::BadInput("block size must be positive".into()));
        }
        let n = matrix.size().rows;
        let exec = matrix.executor().clone();
        if block_size == 1 {
            let diag = matrix.extract_diagonal();
            let mut inv = Vec::with_capacity(n);
            for (i, d) in diag.into_iter().enumerate() {
                if d == V::zero() {
                    return Err(GkoError::Singular { at: i });
                }
                inv.push(V::one() / d);
            }
            exec.launch(&[ChunkWork::new((n * V::BYTES) as f64 * 2.0, 0.0, n as f64)]);
            return Ok(Jacobi {
                exec,
                size: matrix.size(),
                block_size,
                inv_diag: Some(inv),
                blocks: None,
            });
        }

        // Extract and factorize each diagonal block.
        let dense = matrix.to_dense();
        let mut blocks = Vec::new();
        let mut start = 0usize;
        while start < n {
            let bs = block_size.min(n - start);
            let mut block = vec![0.0f64; bs * bs];
            for i in 0..bs {
                for j in 0..bs {
                    block[i * bs + j] = dense.at(start + i, start + j).to_f64();
                }
            }
            blocks.push(DenseLu::factor(bs, &block).map_err(|e| match e {
                GkoError::Singular { at } => GkoError::Singular { at: start + at },
                other => other,
            })?);
            start += bs;
        }
        exec.launch(&[ChunkWork::new(
            (n * block_size * V::BYTES) as f64,
            0.0,
            (n * block_size * block_size) as f64,
        )]);
        Ok(Jacobi {
            exec,
            size: matrix.size(),
            block_size,
            inv_diag: None,
            blocks: Some(blocks),
        })
    }

    /// Configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

impl<V: Value> LinOp<V> for Jacobi<V> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        &self.exec
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        let n = self.size.rows;
        let k = b.size().cols;
        let bv = b.as_slice();
        let xs = x.as_mut_slice();
        if let Some(inv) = &self.inv_diag {
            for i in 0..n {
                for c in 0..k {
                    xs[i * k + c] = inv[i] * bv[i * k + c];
                }
            }
            self.exec.launch(&[ChunkWork::new(
                (n * k * V::BYTES * 3) as f64,
                0.0,
                (n * k) as f64,
            )]);
            return Ok(());
        }
        // lint: allow(panic): construction guarantees exactly one of
        // `inv_diag` / `blocks` is set, and the `inv_diag` arm returned.
        let blocks = self.blocks.as_ref().expect("either scalar or block");
        let mut start = 0usize;
        for lu in blocks {
            let bs = lu.n();
            for c in 0..k {
                let rhs: Vec<f64> = (0..bs).map(|i| bv[(start + i) * k + c].to_f64()).collect();
                let sol = lu.solve(&rhs)?;
                for i in 0..bs {
                    xs[(start + i) * k + c] = V::from_f64(sol[i]);
                }
            }
            start += bs;
        }
        self.exec.launch(&[ChunkWork::new(
            (n * self.block_size * k * V::BYTES) as f64,
            0.0,
            (2 * n * self.block_size * k) as f64,
        )]);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "preconditioner::Jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(exec: &Executor) -> Csr<f64, i32> {
        Csr::from_triplets(
            exec,
            Dim2::square(4),
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 4.0),
                (2, 2, 5.0),
                (3, 3, 8.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn scalar_jacobi_inverts_diagonal() {
        let exec = Executor::reference();
        let m = Jacobi::new(&sample(&exec)).unwrap();
        let b = Dense::from_rows(&exec, &[[2.0f64], [4.0], [10.0], [16.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(4, 1));
        m.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn block_jacobi_inverts_blocks_exactly() {
        let exec = Executor::reference();
        let a = sample(&exec);
        let m = Jacobi::with_block_size(&a, 2).unwrap();
        assert_eq!(m.block_size(), 2);
        // First 2x2 block is [2 1; 1 4]; apply to its own column sums.
        let b = Dense::from_rows(&exec, &[[3.0f64], [5.0], [5.0], [8.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(4, 1));
        m.apply(&b, &mut x).unwrap();
        assert!((x.at(0, 0) - 1.0).abs() < 1e-12);
        assert!((x.at(1, 0) - 1.0).abs() < 1e-12);
        assert!((x.at(2, 0) - 1.0).abs() < 1e-12);
        assert!((x.at(3, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uneven_final_block_is_supported() {
        let exec = Executor::reference();
        let a = sample(&exec); // n = 4
        let m = Jacobi::with_block_size(&a, 3).unwrap(); // blocks of 3 and 1
        let b = Dense::<f64>::vector(&exec, 4, 8.0);
        let mut x = Dense::zeros(&exec, Dim2::new(4, 1));
        m.apply(&b, &mut x).unwrap();
        assert!((x.at(3, 0) - 1.0).abs() < 1e-12); // 8 / 8
    }

    #[test]
    fn zero_diagonal_is_rejected() {
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(2), &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            Jacobi::new(&a),
            Err(GkoError::Singular { at: 1 })
        ));
    }

    #[test]
    fn zero_block_size_is_rejected() {
        let exec = Executor::reference();
        let a = sample(&exec);
        assert!(Jacobi::with_block_size(&a, 0).is_err());
    }
}
