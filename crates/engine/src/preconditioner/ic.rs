//! IC(0) preconditioner for symmetric positive definite systems.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::{Index, Value};
use crate::executor::Executor;
use crate::factorization::ic0::ic0;
use crate::linop::{check_apply_dims, LinOp};
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use crate::solver::triangular::{LowerTrs, UpperTrs};
use std::sync::Arc;

/// IC(0) preconditioner: `z = L^{-T} L^{-1} r` with the incomplete Cholesky
/// factor of `A`.
pub struct Ic<V: Value, I: Index = i32> {
    exec: Executor,
    size: Dim2,
    lower: LowerTrs<V, I>,
    upper: UpperTrs<V, I>,
}

impl<V: Value, I: Index> Ic<V, I> {
    /// Factorizes `A` with IC(0).
    pub fn new(matrix: &Csr<V, I>) -> Result<Self> {
        let l = ic0(matrix)?;
        let lt = l.transpose();
        Ok(Ic {
            exec: matrix.executor().clone(),
            size: matrix.size(),
            lower: LowerTrs::new(Arc::new(l))?,
            upper: UpperTrs::new(Arc::new(lt))?,
        })
    }
}

impl<V: Value, I: Index> LinOp<V> for Ic<V, I> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        &self.exec
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        let mut y = Dense::zeros(&self.exec, b.size());
        self.lower.apply(b, &mut y)?;
        self.upper.apply(&y, x)
    }

    fn op_name(&self) -> &'static str {
        "preconditioner::Ic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(exec: &Executor, n: usize) -> Csr<f64, i32> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
    }

    #[test]
    fn exact_inverse_on_tridiagonal_spd() {
        let exec = Executor::reference();
        let n = 12;
        let a = spd(&exec, n);
        let x_true = Dense::<f64>::vector(&exec, n, 2.0);
        let mut b = Dense::zeros(&exec, Dim2::new(n, 1));
        a.apply(&x_true, &mut b).unwrap();

        let m = Ic::new(&a).unwrap();
        let mut z = Dense::zeros(&exec, Dim2::new(n, 1));
        m.apply(&b, &mut z).unwrap();
        for (got, want) in z.to_host_vec().iter().zip(x_true.to_host_vec()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn reduces_cg_iterations() {
        use crate::solver::cg::Cg;
        use crate::stop::Criteria;
        let exec = Executor::reference();
        let n = 100;
        let a = Arc::new(spd(&exec, n));
        let b = Dense::<f64>::vector(&exec, n, 1.0);

        let plain = Cg::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let mut x1 = Dense::<f64>::vector(&exec, n, 0.0);
        plain.apply(&b, &mut x1).unwrap();

        let pre = Cg::new(a.clone())
            .unwrap()
            .with_preconditioner(Arc::new(Ic::new(&*a).unwrap()))
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let mut x2 = Dense::<f64>::vector(&exec, n, 0.0);
        pre.apply(&b, &mut x2).unwrap();

        let (i_plain, i_pre) = (
            plain.logger().snapshot().iterations,
            pre.logger().snapshot().iterations,
        );
        assert!(i_pre < i_plain, "IC {i_pre} should beat plain {i_plain}");
        // IC(0) is exact on tridiagonal: one or two iterations.
        assert!(i_pre <= 2, "IC on tridiagonal is exact, took {i_pre}");
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(2),
            &[(0, 0, 1.0), (0, 1, 9.0), (1, 0, 9.0), (1, 1, 1.0)],
        )
        .unwrap();
        assert!(Ic::new(&a).is_err());
    }
}
