//! ILU(0) preconditioner (Listing 1's choice).

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::{Index, Value};
use crate::executor::Executor;
use crate::factorization::ilu0::ilu0;
use crate::linop::{check_apply_dims, LinOp};
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use crate::solver::triangular::{LowerTrs, UpperTrs};
use std::sync::Arc;

/// ILU(0) preconditioner: `z = U^{-1} L^{-1} r` with the incomplete factors
/// of `A`.
pub struct Ilu<V: Value, I: Index = i32> {
    exec: Executor,
    size: Dim2,
    lower: LowerTrs<V, I>,
    upper: UpperTrs<V, I>,
}

impl<V: Value, I: Index> Ilu<V, I> {
    /// Factorizes `A` with ILU(0) and prepares the triangular sweeps.
    pub fn new(matrix: &Csr<V, I>) -> Result<Self> {
        let (l, u) = ilu0(matrix)?;
        Ok(Ilu {
            exec: matrix.executor().clone(),
            size: matrix.size(),
            lower: LowerTrs::new(Arc::new(l))?.with_unit_diagonal(),
            upper: UpperTrs::new(Arc::new(u))?,
        })
    }
}

impl<V: Value, I: Index> LinOp<V> for Ilu<V, I> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        &self.exec
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        let mut y = Dense::zeros(&self.exec, b.size());
        self.lower.apply(b, &mut y)?;
        self.upper.apply(&y, x)
    }

    fn op_name(&self) -> &'static str {
        "preconditioner::Ilu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilu_is_exact_inverse_on_tridiagonal() {
        // No fill-in is dropped on a tridiagonal matrix, so applying the
        // preconditioner solves the system exactly.
        let exec = Executor::reference();
        let n = 16;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let x_true = Dense::<f64>::vector(&exec, n, 1.0);
        let mut b = Dense::zeros(&exec, Dim2::new(n, 1));
        a.apply(&x_true, &mut b).unwrap();

        let m = Ilu::new(&a).unwrap();
        let mut z = Dense::zeros(&exec, Dim2::new(n, 1));
        m.apply(&b, &mut z).unwrap();
        for (got, want) in z.to_host_vec().iter().zip(x_true.to_host_vec()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn accelerates_gmres_on_harder_system() {
        use crate::solver::gmres::Gmres;
        use crate::stop::Criteria;
        let exec = Executor::reference();
        let n = 100;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0 + (i % 3) as f64));
            if i > 0 {
                t.push((i, i - 1, -1.9));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.9));
            }
            if i + 10 < n {
                t.push((i, i + 10, 0.4));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let b = Dense::<f64>::vector(&exec, n, 1.0);

        let plain = Gmres::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(300, 1e-10));
        let mut x1 = Dense::<f64>::vector(&exec, n, 0.0);
        plain.apply(&b, &mut x1).unwrap();

        let pre = Gmres::new(a.clone())
            .unwrap()
            .with_preconditioner(Arc::new(Ilu::new(&*a).unwrap()))
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(300, 1e-10));
        let mut x2 = Dense::<f64>::vector(&exec, n, 0.0);
        pre.apply(&b, &mut x2).unwrap();

        let (i_plain, i_pre) = (
            plain.logger().snapshot().iterations,
            pre.logger().snapshot().iterations,
        );
        assert!(
            i_pre < i_plain,
            "ILU {i_pre} iterations should beat plain {i_plain}"
        );
    }

    #[test]
    fn structurally_singular_matrix_fails() {
        let exec = Executor::reference();
        let a =
            Csr::<f64, i32>::from_triplets(&exec, Dim2::square(2), &[(0, 1, 1.0), (1, 0, 1.0)])
                .unwrap();
        assert!(Ilu::new(&a).is_err());
    }
}
