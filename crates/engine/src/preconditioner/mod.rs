//! Preconditioners (all of them `LinOp`s applying `z = M^{-1} r`).
//!
//! The paper's Listing 1 uses ILU with GMRES; Listing 2 configures scalar
//! Jacobi through the config solver. Available:
//!
//! * [`Jacobi`](jacobi::Jacobi) — scalar (block size 1) and block Jacobi;
//! * [`Ilu`](ilu::Ilu) — ILU(0) forward/backward triangular sweeps;
//! * [`Ic`](ic::Ic) — IC(0) Cholesky sweeps for SPD systems.

pub mod ic;
pub mod ilu;
pub mod jacobi;

pub use ic::Ic;
pub use ilu::Ilu;
pub use jacobi::Jacobi;
