//! Row-major dense matrices and vectors.
//!
//! `Dense` plays two roles, exactly as in Ginkgo: it is the vector type all
//! `LinOp::apply` calls operate on (an `n x k` block of `k` vectors), and it
//! is itself a `LinOp` whose apply is a GEMV. Reductions (dot products,
//! norms) accumulate in `f64` per chunk and combine partials in chunk order,
//! so results are deterministic under any thread schedule.

use crate::base::array::Array;
use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::Value;
use crate::executor::pool::{parallel_chunks, parallel_partials, tree_reduce, uniform_bounds};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use pygko_sim::ChunkWork;

/// A dense row-major matrix (or block of column vectors) on an executor.
#[derive(Debug, Clone)]
pub struct Dense<V: Value> {
    size: Dim2,
    values: Array<V>,
}

impl<V: Value> Dense<V> {
    /// Allocates a zero-initialized dense matrix.
    pub fn zeros(exec: &Executor, size: Dim2) -> Self {
        Dense {
            size,
            values: Array::new(exec, size.count()),
        }
    }

    /// Allocates and fills with a constant.
    pub fn filled(exec: &Executor, size: Dim2, value: V) -> Self {
        let mut m = Dense::zeros(exec, size);
        m.fill(value);
        m
    }

    /// Wraps a row-major value vector.
    ///
    /// Returns an error if the length does not match `size`.
    pub fn from_vec(exec: &Executor, size: Dim2, values: Vec<V>) -> Result<Self> {
        if values.len() != size.count() {
            return Err(GkoError::BadInput(format!(
                "dense values length {} does not match size {size}",
                values.len()
            )));
        }
        Ok(Dense {
            size,
            values: Array::from_vec(exec, values),
        })
    }

    /// Builds from an array of rows (test/demo convenience).
    pub fn from_rows<const K: usize>(exec: &Executor, rows: &[[V; K]]) -> Self {
        let mut values = Vec::with_capacity(rows.len() * K);
        for row in rows {
            values.extend_from_slice(row);
        }
        Dense {
            size: Dim2::new(rows.len(), K),
            values: Array::from_vec(exec, values),
        }
    }

    /// A fresh column vector (n x 1) filled with `value`.
    pub fn vector(exec: &Executor, n: usize, value: V) -> Self {
        Dense::filled(exec, Dim2::new(n, 1), value)
    }

    /// Matrix size.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Executor the values live on.
    pub fn executor(&self) -> &Executor {
        self.values.executor()
    }

    /// Checks the storage length against the declared shape, and rejects
    /// NaN/Inf entries (the dense format's only corruptible invariants).
    pub fn validate(&self) -> Result<()> {
        let expect = self.size.rows * self.size.cols;
        if self.values.len() != expect {
            return Err(GkoError::BadInput(format!(
                "dense storage holds {} values but the shape {} needs {expect}",
                self.values.len(),
                self.size
            )));
        }
        crate::sanitize::check_finite("dense", self.values.as_slice())
    }

    /// Element access (host-side, for tests and small algorithms).
    pub fn at(&self, row: usize, col: usize) -> V {
        self.values.as_slice()[row * self.size.cols + col]
    }

    /// Element mutation (host-side).
    pub fn set(&mut self, row: usize, col: usize, value: V) {
        self.values.as_mut_slice()[row * self.size.cols + col] = value;
    }

    /// Read access to the raw row-major values.
    pub fn as_slice(&self) -> &[V] {
        self.values.as_slice()
    }

    /// Write access to the raw row-major values.
    pub fn as_mut_slice(&mut self) -> &mut [V] {
        self.values.as_mut_slice()
    }

    /// Copies the values into a host `Vec`.
    pub fn to_host_vec(&self) -> Vec<V> {
        self.values.as_slice().to_vec()
    }

    /// Clones onto another executor, charging transfers if crossing memory
    /// spaces.
    pub fn clone_to(&self, exec: &Executor) -> Self {
        Dense {
            size: self.size,
            values: self.values.copy_to(exec),
        }
    }

    fn stream_kernel(&self, arrays: usize, flops_per_item: f64) -> Vec<ChunkWork> {
        let n = self.size.count();
        let spec = self.executor().spec();
        let bounds = uniform_bounds(n, spec.workers * 2);
        bounds
            .windows(2)
            .map(|w| {
                let items = (w[1] - w[0]) as f64;
                ChunkWork::new(
                    items * (arrays * V::BYTES) as f64,
                    0.0,
                    items * flops_per_item,
                )
            })
            .collect()
    }

    fn check_same_shape(&self, other: &Dense<V>, op: &'static str) -> Result<()> {
        if self.size != other.size {
            return Err(GkoError::DimensionMismatch {
                op,
                expected: self.size,
                actual: other.size,
            });
        }
        self.values.check_same_executor(&other.values)
    }

    /// Sets every entry to `value`.
    pub fn fill(&mut self, value: V) {
        let _timer = OpTimer::new(self.executor(), "dense::fill");
        let work = self.stream_kernel(1, 0.0);
        self.values.fill(value);
        self.executor().launch(&work);
    }

    /// Copies values from a same-shaped matrix.
    pub fn copy_from(&mut self, other: &Dense<V>) -> Result<()> {
        self.check_same_shape(other, "copy")?;
        let _timer = OpTimer::new(self.executor(), "dense::copy");
        let work = self.stream_kernel(2, 0.0);
        self.values
            .as_mut_slice()
            .copy_from_slice(other.values.as_slice());
        self.executor().launch(&work);
        Ok(())
    }

    /// Scales all entries: `self *= alpha`.
    pub fn scale(&mut self, alpha: V) {
        if alpha == V::one() {
            return;
        }
        let _timer = OpTimer::new(self.executor(), "dense::scale");
        let work = self.stream_kernel(2, 1.0);
        let exec = self.executor().clone();
        let bounds = uniform_bounds(self.size.count(), work.len());
        if alpha == V::zero() {
            self.values.fill(V::zero());
        } else {
            parallel_chunks(&exec, self.values.as_mut_slice(), &bounds, |_, s| {
                for v in s {
                    *v *= alpha;
                }
            });
        }
        self.executor().launch(&work);
    }

    /// AXPY: `self += alpha * other`.
    pub fn add_scaled(&mut self, alpha: V, other: &Dense<V>) -> Result<()> {
        self.check_same_shape(other, "add_scaled")?;
        let _timer = OpTimer::new(self.executor(), "dense::axpy");
        let work = self.stream_kernel(3, 2.0);
        let exec = self.executor().clone();
        let bounds = uniform_bounds(self.size.count(), work.len());
        let src = other.values.as_slice();
        parallel_chunks(&exec, self.values.as_mut_slice(), &bounds, |i, s| {
            let off = bounds_offset(&bounds, i);
            let len = s.len();
            for (d, &x) in s.iter_mut().zip(&src[off..off + len]) {
                *d += alpha * x;
            }
        });
        self.executor().launch(&work);
        Ok(())
    }

    /// Scaled assignment: `self = alpha * other + beta * self`.
    pub fn scale_add(&mut self, alpha: V, other: &Dense<V>, beta: V) -> Result<()> {
        self.check_same_shape(other, "scale_add")?;
        let _timer = OpTimer::new(self.executor(), "dense::scale_add");
        let work = self.stream_kernel(3, 3.0);
        let exec = self.executor().clone();
        let bounds = uniform_bounds(self.size.count(), work.len());
        let src = other.values.as_slice();
        parallel_chunks(&exec, self.values.as_mut_slice(), &bounds, |i, s| {
            let off = bounds_offset(&bounds, i);
            let len = s.len();
            for (d, &x) in s.iter_mut().zip(&src[off..off + len]) {
                *d = alpha * x + beta * *d;
            }
        });
        self.executor().launch(&work);
        Ok(())
    }

    /// Dot product over all entries, accumulated in `f64`.
    pub fn compute_dot(&self, other: &Dense<V>) -> Result<f64> {
        self.check_same_shape(other, "dot")?;
        let _timer = OpTimer::new(self.executor(), "dense::dot");
        let work = self.stream_kernel(2, 2.0);
        let exec = self.executor().clone();
        let n = self.size.count();
        let bounds = uniform_bounds(n, work.len());
        let a = self.values.as_slice();
        let b = other.values.as_slice();
        let partials = parallel_partials(&exec, bounds.len() - 1, |i| {
            let (lo, hi) = (bounds[i], bounds[i + 1]);
            a[lo..hi]
                .iter()
                .zip(&b[lo..hi])
                .map(|(&x, &y)| x.to_f64() * y.to_f64())
                .sum()
        });
        self.executor().launch(&work);
        Ok(tree_reduce(&partials))
    }

    /// Euclidean norm over all entries.
    pub fn compute_norm2(&self) -> f64 {
        // lint: allow(panic): dot of a vector with itself cannot have a
        // dimension mismatch.
        self.compute_dot(self).expect("dot with self").sqrt()
    }

    /// Copy converted to another value type (Ginkgo's
    /// `convert_to<Dense<V2>>`, the building block of mixed precision).
    pub fn cast<V2: Value>(&self) -> Dense<V2> {
        let values: Vec<V2> = self
            .values
            .as_slice()
            .iter()
            .map(|v| V2::from_f64(v.to_f64()))
            .collect();
        let out = Dense {
            size: self.size,
            values: Array::from_vec(self.executor(), values),
        };
        let work = self.stream_kernel(2, 1.0);
        self.executor().launch(&work);
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Dense<V> {
        let mut out = Dense::zeros(self.executor(), self.size.transposed());
        for i in 0..self.size.rows {
            for j in 0..self.size.cols {
                out.set(j, i, self.at(i, j));
            }
        }
        let work = self.stream_kernel(2, 0.0);
        self.executor().launch(&work);
        out
    }
}

#[inline]
fn bounds_offset(bounds: &[usize], chunk: usize) -> usize {
    bounds[chunk]
}

impl<V: Value> LinOp<V> for Dense<V> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        self.values.executor()
    }

    /// GEMV: `x = self * b`, row-parallel.
    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.apply_advanced(V::one(), b, V::zero(), x)
    }

    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        self.values.check_same_executor(&b.values)?;
        let _timer = OpTimer::new(self.executor(), "dense::gemv");
        let (m, n) = (self.size.rows, self.size.cols);
        let k = b.size().cols;
        let spec = self.executor().spec();
        let row_bounds = uniform_bounds(m, spec.workers * 2);
        let work: Vec<ChunkWork> = row_bounds
            .windows(2)
            .map(|w| {
                let rows = (w[1] - w[0]) as f64;
                ChunkWork::new(
                    rows * (n + k) as f64 * V::BYTES as f64 + rows * n as f64 * V::BYTES as f64,
                    0.0,
                    rows * n as f64 * k as f64 * 2.0,
                )
            })
            .collect();

        let exec = self.executor().clone();
        let a = self.values.as_slice();
        let bv = b.values.as_slice();
        // x chunked by rows: each row owns k contiguous outputs.
        let elem_bounds: Vec<usize> = row_bounds.iter().map(|&r| r * k).collect();
        parallel_chunks(&exec, x.values.as_mut_slice(), &elem_bounds, |ci, xs| {
            let row0 = row_bounds[ci];
            for (local, xrow) in xs.chunks_mut(k).enumerate() {
                let i = row0 + local;
                let arow = &a[i * n..(i + 1) * n];
                for (c, out) in xrow.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for (j, &aij) in arow.iter().enumerate() {
                        acc += aij.to_f64() * bv[j * k + c].to_f64();
                    }
                    let prod = V::from_f64(acc);
                    *out = alpha * prod + beta * *out;
                }
            }
        });
        self.executor().launch(&work);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygko_half::Half;

    fn exec() -> Executor {
        Executor::reference()
    }

    #[test]
    fn construction_and_access() {
        let e = exec();
        let mut m = Dense::<f64>::zeros(&e, Dim2::new(2, 3));
        assert_eq!(m.size(), Dim2::new(2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.at(1, 2), 5.0);
        assert_eq!(m.at(0, 0), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        let e = exec();
        assert!(Dense::<f64>::from_vec(&e, Dim2::new(2, 2), vec![1.0; 3]).is_err());
        let m = Dense::<f64>::from_vec(&e, Dim2::new(2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.at(1, 0), 3.0);
    }

    #[test]
    fn fill_and_scale() {
        let e = exec();
        let mut v = Dense::<f32>::vector(&e, 4, 2.0);
        v.scale(3.0);
        assert_eq!(v.to_host_vec(), vec![6.0; 4]);
        v.scale(0.0);
        assert_eq!(v.to_host_vec(), vec![0.0; 4]);
    }

    #[test]
    fn axpy_and_scale_add() {
        let e = exec();
        let mut y = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let x = Dense::from_rows(&e, &[[10.0f64], [20.0], [30.0]]);
        y.add_scaled(2.0, &x).unwrap();
        assert_eq!(y.to_host_vec(), vec![21.0, 42.0, 63.0]);
        y.scale_add(1.0, &x, -1.0).unwrap();
        assert_eq!(y.to_host_vec(), vec![-11.0, -22.0, -33.0]);
    }

    #[test]
    fn dot_and_norm() {
        let e = exec();
        let a = Dense::from_rows(&e, &[[3.0f64], [4.0]]);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0]]);
        assert_eq!(a.compute_dot(&b).unwrap(), 11.0);
        assert_eq!(a.compute_norm2(), 5.0);
    }

    #[test]
    fn dot_rejects_shape_mismatch() {
        let e = exec();
        let a = Dense::<f64>::vector(&e, 3, 1.0);
        let b = Dense::<f64>::vector(&e, 4, 1.0);
        assert!(a.compute_dot(&b).is_err());
    }

    #[test]
    fn gemv_matches_hand_computation() {
        let e = exec();
        let a = Dense::from_rows(&e, &[[1.0f64, 2.0], [3.0, 4.0], [5.0, 6.0]]);
        let b = Dense::from_rows(&e, &[[1.0f64], [10.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(3, 1));
        a.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![21.0, 43.0, 65.0]);
    }

    #[test]
    fn gemv_advanced_fuses_alpha_beta() {
        let e = exec();
        let a = Dense::from_rows(&e, &[[1.0f64, 0.0], [0.0, 1.0]]);
        let b = Dense::from_rows(&e, &[[2.0f64], [3.0]]);
        let mut x = Dense::from_rows(&e, &[[100.0f64], [200.0]]);
        a.apply_advanced(2.0, &b, 0.5, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![54.0, 106.0]);
    }

    #[test]
    fn gemv_multiple_rhs() {
        let e = exec();
        let a = Dense::from_rows(&e, &[[1.0f64, 1.0], [1.0, -1.0]]);
        let b = Dense::from_rows(&e, &[[1.0f64, 2.0], [3.0, 4.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(2, 2));
        a.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![4.0, 6.0, -2.0, -2.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let e = exec();
        let a = Dense::from_rows(&e, &[[1.0f64, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.size(), Dim2::new(3, 2));
        assert_eq!(t.at(2, 1), 6.0);
        let tt = t.transpose();
        assert_eq!(tt.to_host_vec(), a.to_host_vec());
    }

    #[test]
    fn works_in_half_precision() {
        let e = exec();
        let a = Dense::from_rows(&e, &[[Half::from_f32(2.0)], [Half::from_f32(4.0)]]);
        assert_eq!(a.compute_norm2(), (20.0f64).sqrt());
        let mut b = a.clone();
        b.scale(Half::from_f32(0.5));
        assert_eq!(b.at(0, 0).to_f32(), 1.0);
    }

    #[test]
    fn kernels_charge_the_timeline() {
        let e = Executor::cuda(0);
        let mut v = Dense::<f64>::vector(&e, 1000, 1.0);
        let before = e.timeline().snapshot();
        v.scale(2.0);
        let d = e.timeline().snapshot().since(&before);
        assert_eq!(d.kernels, 1);
        assert!(d.ns as f64 >= e.spec().kernel_launch_ns);
    }

    #[test]
    fn omp_parallel_matches_reference() {
        let r = Executor::reference();
        let o = Executor::omp(4);
        let a_r = Dense::from_rows(&r, &[[1.0f64, 2.0], [3.0, 4.0]]);
        let a_o = a_r.clone_to(&o);
        let b_r = Dense::from_rows(&r, &[[5.0f64], [7.0]]);
        let b_o = b_r.clone_to(&o);
        let mut x_r = Dense::zeros(&r, Dim2::new(2, 1));
        let mut x_o = Dense::zeros(&o, Dim2::new(2, 1));
        a_r.apply(&b_r, &mut x_r).unwrap();
        a_o.apply(&b_o, &mut x_o).unwrap();
        assert_eq!(x_r.to_host_vec(), x_o.to_host_vec());
    }
}
