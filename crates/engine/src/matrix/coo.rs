//! Coordinate format.
//!
//! COO stores explicit (row, col, value) triplets sorted by row then column.
//! Its SpMV partitions *nonzeros* (not rows), so it is inherently
//! load-balanced, at the price of streaming an extra row-index array and of
//! synchronizing output updates at chunk boundaries (Ginkgo's GPU kernel
//! uses atomics there; the cost model charges the boundary rows as random
//! accesses).

use crate::base::array::Array;
use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::pool::{parallel_chunks, uniform_bounds};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;

/// Sparse matrix in coordinate format.
#[derive(Debug, Clone)]
pub struct Coo<V: Value, I: Index = i32> {
    size: Dim2,
    row_idxs: Array<I>,
    col_idxs: Array<I>,
    values: Array<V>,
}

impl<V: Value, I: Index> Coo<V, I> {
    /// Matrix size.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Builds from raw arrays, validating sortedness and ranges.
    pub fn from_raw(
        exec: &Executor,
        size: Dim2,
        row_idxs: Vec<I>,
        col_idxs: Vec<I>,
        values: Vec<V>,
    ) -> Result<Self> {
        if row_idxs.len() != values.len() || col_idxs.len() != values.len() {
            return Err(GkoError::BadInput(format!(
                "coo array lengths differ: rows {}, cols {}, values {}",
                row_idxs.len(),
                col_idxs.len(),
                values.len()
            )));
        }
        let mut prev: Option<(I, I)> = None;
        for k in 0..values.len() {
            let (r, c) = (row_idxs[k], col_idxs[k]);
            if r.to_usize() >= size.rows || c.to_usize() >= size.cols {
                return Err(GkoError::BadInput(format!(
                    "entry ({r}, {c}) outside matrix {size}"
                )));
            }
            if let Some((pr, pc)) = prev {
                if (r, c) <= (pr, pc) {
                    return Err(GkoError::BadInput(
                        "coo entries must be strictly sorted by (row, col)".into(),
                    ));
                }
            }
            prev = Some((r, c));
        }
        Ok(Coo {
            size,
            row_idxs: Array::from_vec(exec, row_idxs),
            col_idxs: Array::from_vec(exec, col_idxs),
            values: Array::from_vec(exec, values),
        })
    }

    /// Builds from unsorted triplets, summing duplicates.
    pub fn from_triplets(
        exec: &Executor,
        size: Dim2,
        triplets: &[(usize, usize, V)],
    ) -> Result<Self> {
        let csr = Csr::<V, I>::from_triplets(exec, size, triplets)?;
        Ok(Coo::from_csr(&csr))
    }

    /// Builds a COO matrix from raw index/value arrays **without** checking
    /// the sorted-and-in-bounds invariant. For trusted converters and for
    /// sanitizer tests constructing deliberately corrupted matrices; pass
    /// the result through [`Coo::validate`] before applying it.
    pub fn from_raw_unchecked(
        exec: &Executor,
        size: Dim2,
        row_idxs: Vec<I>,
        col_idxs: Vec<I>,
        values: Vec<V>,
    ) -> Self {
        Coo {
            size,
            row_idxs: Array::from_vec(exec, row_idxs),
            col_idxs: Array::from_vec(exec, col_idxs),
            values: Array::from_vec(exec, values),
        }
    }

    /// Re-derives the COO structural invariants: equal array lengths,
    /// in-bounds indices, and strictly increasing `(row, col)` order (the
    /// property the segment-merge SpMV and the CSR converter rely on).
    pub fn validate(&self) -> Result<()> {
        let (rows, cols) = (self.size.rows, self.size.cols);
        let (ri, ci, vals) = (
            self.row_idxs.as_slice(),
            self.col_idxs.as_slice(),
            self.values.as_slice(),
        );
        if ri.len() != ci.len() || ci.len() != vals.len() {
            return Err(GkoError::BadInput(format!(
                "COO array lengths disagree: {} rows, {} cols, {} values",
                ri.len(),
                ci.len(),
                vals.len()
            )));
        }
        let mut prev: Option<(usize, usize)> = None;
        for k in 0..ri.len() {
            let (r, c) = (ri[k].to_usize(), ci[k].to_usize());
            if r >= rows || c >= cols {
                return Err(GkoError::BadInput(format!(
                    "COO entry {k} at ({r}, {c}) outside matrix {}",
                    self.size
                )));
            }
            if let Some(p) = prev {
                if (r, c) <= p {
                    return Err(GkoError::BadInput(format!(
                        "COO entries must be strictly increasing in (row, col) \
                         order; entry {k} at ({r}, {c}) violates it"
                    )));
                }
            }
            prev = Some((r, c));
        }
        Ok(())
    }

    /// Converts from CSR.
    pub fn from_csr(csr: &Csr<V, I>) -> Self {
        let rp = csr.row_ptrs();
        let mut row_idxs = Vec::with_capacity(csr.nnz());
        for r in 0..csr.size().rows {
            for _ in rp[r].to_usize()..rp[r + 1].to_usize() {
                row_idxs.push(I::from_usize(r));
            }
        }
        Coo {
            size: csr.size(),
            row_idxs: Array::from_vec(csr.executor(), row_idxs),
            col_idxs: Array::from_vec(csr.executor(), csr.col_idxs().to_vec()),
            values: Array::from_vec(csr.executor(), csr.values().to_vec()),
        }
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> Csr<V, I> {
        let ri = self.row_idxs.as_slice();
        let mut row_ptrs = vec![I::zero(); self.size.rows + 1];
        let mut counts = vec![0usize; self.size.rows];
        for &r in ri {
            counts[r.to_usize()] += 1;
        }
        let mut acc = 0usize;
        for (r, &c) in counts.iter().enumerate() {
            acc += c;
            row_ptrs[r + 1] = I::from_usize(acc);
        }
        Csr::from_raw(
            self.executor(),
            self.size,
            row_ptrs,
            self.col_idxs.as_slice().to_vec(),
            self.values.as_slice().to_vec(),
        )
        // lint: allow(panic): the COO invariant (sorted, in-bounds,
        // deduplicated triplets) is exactly the CSR precondition.
        .expect("sorted COO produces valid CSR")
    }

    /// Densifies.
    pub fn to_dense(&self) -> Dense<V> {
        let mut out = Dense::zeros(self.executor(), self.size);
        for k in 0..self.nnz() {
            out.set(
                self.row_idxs.as_slice()[k].to_usize(),
                self.col_idxs.as_slice()[k].to_usize(),
                self.values.as_slice()[k],
            );
        }
        out
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row index array.
    pub fn row_idxs(&self) -> &[I] {
        self.row_idxs.as_slice()
    }

    /// Column index array.
    pub fn col_idxs(&self) -> &[I] {
        self.col_idxs.as_slice()
    }

    /// Value array.
    pub fn values(&self) -> &[V] {
        self.values.as_slice()
    }

    /// Executor the matrix lives on.
    pub fn executor(&self) -> &Executor {
        self.values.executor()
    }

    /// Clones onto another executor.
    pub fn clone_to(&self, exec: &Executor) -> Self {
        Coo {
            size: self.size,
            row_idxs: self.row_idxs.copy_to(exec),
            col_idxs: self.col_idxs.copy_to(exec),
            values: self.values.copy_to(exec),
        }
    }

    /// Work description of a COO SpMV over an nnz partition.
    pub fn spmv_work(&self, chunks: usize) -> Vec<ChunkWork> {
        let bounds = uniform_bounds(self.nnz(), chunks);
        bounds
            .windows(2)
            .map(|w| {
                let nnz = (w[1] - w[0]) as f64;
                ChunkWork::new(
                    nnz * (2 * I::BYTES + V::BYTES) as f64,
                    // x gathers plus output updates (atomic-style at
                    // boundaries; modeled as one random word per nnz since
                    // rows repeat irregularly).
                    nnz * (V::BYTES * 2) as f64,
                    2.0 * nnz,
                )
            })
            .collect()
    }
}

/// Raw output pointer shared across segment lanes for interior-row writes.
struct SharedOut<V>(*mut V);

// SAFETY: lanes only dereference offsets of rows *interior* to their own
// segment, which are disjoint between segments (entries are sorted by row).
unsafe impl<V: Send> Send for SharedOut<V> {}
unsafe impl<V: Send> Sync for SharedOut<V> {}

impl<V> SharedOut<V> {
    /// # Safety
    ///
    /// The caller's lane must own `offset` exclusively for the duration of
    /// the job.
    unsafe fn slot(&self, offset: usize) -> *mut V {
        self.0.add(offset)
    }
}

impl<V: Value, I: Index> LinOp<V> for Coo<V, I> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        self.values.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        x.fill(V::zero());
        self.apply_advanced(V::one(), b, V::one(), x)
    }

    /// `x = alpha * A b + beta * x`, accumulating per row in `f64`.
    ///
    /// The sorted triplets are cut into nnz-balanced *segments* (the same
    /// partition the cost model charges). Each segment owns every row that
    /// lies strictly inside it — those outputs are written directly — while
    /// its first and last rows, which a segment boundary may split, go into
    /// a per-segment scratch block that a serial second pass merges in
    /// segment order. No atomics, and the segment count derives from the
    /// device spec, so results are reproducible on any host.
    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        if !self.executor().same_memory_space(b.executor()) {
            return Err(GkoError::ExecutorMismatch {
                left: self.executor().name().to_owned(),
                right: b.executor().name().to_owned(),
            });
        }
        let _timer = OpTimer::new(self.executor(), "coo");
        let k = b.size().cols;
        let spec = self.executor().spec();
        let work = self.spmv_work(spec.workers * 4);
        let bounds = uniform_bounds(self.nnz(), spec.workers * 4);
        let segments = bounds.len() - 1;

        if beta != V::one() {
            x.scale(beta);
        }
        let ri = self.row_idxs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        let bv = b.as_slice();
        let exec = self.executor().clone();

        // Scratch layout: per segment, k slots for its first row followed by
        // k slots for its last row (unused when the segment has one row).
        let mut scratch = vec![0.0f64; segments * 2 * k];
        let scratch_bounds: Vec<usize> = (0..=segments).map(|s| s * 2 * k).collect();
        let xs_out = SharedOut(x.as_mut_slice().as_mut_ptr());
        parallel_chunks(&exec, scratch.as_mut_slice(), &scratch_bounds, |s, sc| {
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            if lo == hi {
                return;
            }
            let r_first = ri[lo].to_usize();
            let r_last = ri[hi - 1].to_usize();
            let mut idx = lo;
            while idx < hi {
                let r = ri[idx].to_usize();
                let mut acc = vec![0.0f64; k];
                while idx < hi && ri[idx].to_usize() == r {
                    let col = ci[idx].to_usize();
                    let v = vals[idx].to_f64();
                    for (c, a) in acc.iter_mut().enumerate() {
                        *a += v * bv[col * k + c].to_f64();
                    }
                    idx += 1;
                }
                if r == r_first {
                    sc[..k].copy_from_slice(&acc);
                } else if r == r_last {
                    sc[k..].copy_from_slice(&acc);
                } else {
                    // Interior row: sortedness puts every entry of `r` in
                    // this segment, so this lane owns outputs r*k..(r+1)*k
                    // exclusively.
                    for (c, a) in acc.into_iter().enumerate() {
                        // SAFETY: disjoint ownership argued above.
                        unsafe {
                            let slot = xs_out.slot(r * k + c);
                            *slot += alpha * V::from_f64(a);
                        }
                    }
                }
            }
        });
        // Merge boundary rows serially in segment order: split rows receive
        // their pieces in a fixed sequence, keeping the result deterministic.
        let xs = x.as_mut_slice();
        for s in 0..segments {
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            if lo == hi {
                continue;
            }
            let r_first = ri[lo].to_usize();
            let r_last = ri[hi - 1].to_usize();
            let sc = &scratch[s * 2 * k..(s + 1) * 2 * k];
            for c in 0..k {
                xs[r_first * k + c] += alpha * V::from_f64(sc[c]);
            }
            if r_last != r_first {
                for c in 0..k {
                    xs[r_last * k + c] += alpha * V::from_f64(sc[k + c]);
                }
            }
        }
        self.executor().launch(&work);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "coo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::reference()
    }

    fn sample(e: &Executor) -> Coo<f64, i32> {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 4 5 6 ]
        Coo::from_raw(
            e,
            Dim2::square(3),
            vec![0, 0, 1, 2, 2, 2],
            vec![0, 2, 1, 0, 1, 2],
            vec![2.0, 1.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_unsorted_and_out_of_range() {
        let e = exec();
        assert!(Coo::<f64, i32>::from_raw(
            &e,
            Dim2::square(2),
            vec![1, 0],
            vec![0, 0],
            vec![1.0, 2.0]
        )
        .is_err());
        assert!(Coo::<f64, i32>::from_raw(&e, Dim2::square(2), vec![0], vec![3], vec![1.0])
            .is_err());
        assert!(Coo::<f64, i32>::from_raw(&e, Dim2::square(2), vec![0], vec![], vec![1.0])
            .is_err());
        // duplicate entry
        assert!(Coo::<f64, i32>::from_raw(
            &e,
            Dim2::square(2),
            vec![0, 0],
            vec![1, 1],
            vec![1.0, 2.0]
        )
        .is_err());
    }

    #[test]
    fn spmv_matches_csr() {
        let e = exec();
        let coo = sample(&e);
        let csr = coo.to_csr();
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x1 = Dense::zeros(&e, Dim2::new(3, 1));
        let mut x2 = Dense::zeros(&e, Dim2::new(3, 1));
        coo.apply(&b, &mut x1).unwrap();
        csr.apply(&b, &mut x2).unwrap();
        assert_eq!(x1.to_host_vec(), x2.to_host_vec());
        assert_eq!(x1.to_host_vec(), vec![5.0, 6.0, 32.0]);
    }

    #[test]
    fn advanced_apply_scales() {
        let e = exec();
        let coo = sample(&e);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::from_rows(&e, &[[1.0f64], [1.0], [1.0]]);
        coo.apply_advanced(2.0, &b, -1.0, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![9.0, 11.0, 63.0]);
    }

    #[test]
    fn csr_coo_roundtrip() {
        let e = exec();
        let coo = sample(&e);
        let back = Coo::from_csr(&coo.to_csr());
        assert_eq!(back.row_idxs(), coo.row_idxs());
        assert_eq!(back.col_idxs(), coo.col_idxs());
        assert_eq!(back.values(), coo.values());
    }

    #[test]
    fn to_dense_matches() {
        let e = exec();
        let d = sample(&e).to_dense();
        assert_eq!(d.at(2, 1), 5.0);
        assert_eq!(d.at(1, 0), 0.0);
    }

    #[test]
    fn coo_spmv_work_streams_more_than_csr() {
        // The explicit row array only dominates once nnz >> rows; use a
        // matrix with 10 nnz per row.
        let e = exec();
        let n = 100;
        let mut t = vec![];
        for i in 0..n {
            for j in 0..10 {
                t.push((i, (i + j * 7) % n, 1.0f64));
            }
        }
        let coo = Coo::<f64, i32>::from_triplets(&e, Dim2::square(n), &t).unwrap();
        let csr = coo.to_csr();
        let coo_bytes: f64 = coo.spmv_work(2).iter().map(|w| w.streamed_bytes).sum();
        let csr_bytes: f64 = csr
            .spmv_work(&csr.chunk_bounds(2))
            .iter()
            .map(|w| w.streamed_bytes)
            .sum();
        assert!(coo_bytes > csr_bytes, "COO streams the explicit row array");
    }

    #[test]
    fn empty_matrix_applies_cleanly() {
        let e = exec();
        let coo = Coo::<f64, i32>::from_raw(&e, Dim2::square(2), vec![], vec![], vec![]).unwrap();
        let b = Dense::from_rows(&e, &[[1.0f64], [1.0]]);
        let mut x = Dense::from_rows(&e, &[[9.0f64], [9.0]]);
        coo.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![0.0, 0.0]);
    }
}
