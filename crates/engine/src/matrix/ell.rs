//! ELLPACK format.
//!
//! ELL pads every row to the maximum row length and stores values/columns in
//! column-major order, which gives GPUs perfectly coalesced accesses — at
//! the price of wasted storage and wasted lanes when row lengths are skewed.
//! The cost model charges the *padded* element count, which is exactly why
//! ELL loses to CSR on irregular matrices.

use crate::base::array::Array;
use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::pool::{parallel_chunks, uniform_bounds};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;

/// Sentinel-free ELL storage: `stored_per_row` slots per row; unused slots
/// hold value zero and repeat the row's last valid column (a standard trick
/// that keeps gathers in range).
#[derive(Debug, Clone)]
pub struct Ell<V: Value, I: Index = i32> {
    size: Dim2,
    stored_per_row: usize,
    /// Column-major: slot-major layout `cols[slot * rows + row]`.
    col_idxs: Array<I>,
    values: Array<V>,
}

impl<V: Value, I: Index> Ell<V, I> {
    /// Matrix size.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Converts from CSR.
    pub fn from_csr(csr: &Csr<V, I>) -> Self {
        let size = csr.size();
        let rp = csr.row_ptrs();
        let stored = (0..size.rows)
            .map(|r| rp[r + 1].to_usize() - rp[r].to_usize())
            .max()
            .unwrap_or(0);
        let rows = size.rows;
        let mut col_idxs = vec![I::zero(); stored * rows];
        let mut values = vec![V::zero(); stored * rows];
        for r in 0..rows {
            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
            let mut last_col = I::zero();
            for slot in 0..stored {
                let idx = slot * rows + r;
                if lo + slot < hi {
                    last_col = csr.col_idxs()[lo + slot];
                    col_idxs[idx] = last_col;
                    values[idx] = csr.values()[lo + slot];
                } else {
                    col_idxs[idx] = last_col;
                    values[idx] = V::zero();
                }
            }
        }
        Ell {
            size,
            stored_per_row: stored,
            col_idxs: Array::from_vec(csr.executor(), col_idxs),
            values: Array::from_vec(csr.executor(), values),
        }
    }

    /// Converts back to CSR, dropping padding.
    pub fn to_csr(&self) -> Csr<V, I> {
        let rows = self.size.rows;
        let mut triplets = Vec::new();
        for r in 0..rows {
            for slot in 0..self.stored_per_row {
                let idx = slot * rows + r;
                let v = self.values.as_slice()[idx];
                if v != V::zero() {
                    triplets.push((r, self.col_idxs.as_slice()[idx].to_usize(), v));
                }
            }
        }
        Csr::from_triplets(self.executor(), self.size, &triplets)
            // lint: allow(panic): a well-formed ELL only stores in-bounds
            // columns, so the derived triplets satisfy the CSR contract.
            .expect("ELL-derived triplets are valid")
    }

    /// Number of stored slots (including padding).
    pub fn stored_elements(&self) -> usize {
        self.values.len()
    }

    /// Padded row width.
    pub fn stored_per_row(&self) -> usize {
        self.stored_per_row
    }

    /// Executor the matrix lives on.
    pub fn executor(&self) -> &Executor {
        self.values.executor()
    }

    /// Re-derives the ELL structural invariants: slot-major storage of
    /// exactly `stored_per_row * rows` elements with every column index
    /// (including padding slots) in range.
    pub fn validate(&self) -> Result<()> {
        let expect = self.stored_per_row * self.size.rows;
        if self.col_idxs.len() != expect || self.values.len() != expect {
            return Err(GkoError::BadInput(format!(
                "ELL storage sizes ({} cols, {} values) do not match \
                 stored_per_row * rows = {expect}",
                self.col_idxs.len(),
                self.values.len()
            )));
        }
        for (slot, &c) in self.col_idxs.as_slice().iter().enumerate() {
            if c.to_usize() >= self.size.cols {
                return Err(GkoError::BadInput(format!(
                    "ELL column index {c} at slot {slot} out of range for {}",
                    self.size
                )));
            }
        }
        Ok(())
    }

    /// Work description: the padded element count is streamed.
    pub fn spmv_work(&self, chunks: usize) -> Vec<ChunkWork> {
        let bounds = uniform_bounds(self.size.rows, chunks);
        bounds
            .windows(2)
            .map(|w| {
                let rows = (w[1] - w[0]) as f64;
                let stored = rows * self.stored_per_row as f64;
                ChunkWork::new(
                    stored * (V::BYTES + I::BYTES) as f64 + rows * V::BYTES as f64,
                    stored * V::BYTES as f64,
                    2.0 * stored,
                )
            })
            .collect()
    }
}

impl<V: Value, I: Index> LinOp<V> for Ell<V, I> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        self.values.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.apply_advanced(V::one(), b, V::zero(), x)
    }

    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        if !self.executor().same_memory_space(b.executor()) {
            return Err(GkoError::ExecutorMismatch {
                left: self.executor().name().to_owned(),
                right: b.executor().name().to_owned(),
            });
        }
        let _timer = OpTimer::new(self.executor(), "ell");
        let k = b.size().cols;
        let rows = self.size.rows;
        let spec = self.executor().spec();
        let work = self.spmv_work(spec.workers * 4);
        let bounds = uniform_bounds(rows, work.len());

        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        let bv = b.as_slice();
        let stored = self.stored_per_row;
        let exec = self.executor().clone();
        let elem_bounds: Vec<usize> = bounds.iter().map(|&r| r * k).collect();
        parallel_chunks(&exec, x.as_mut_slice(), &elem_bounds, |chunk, xs| {
            let row0 = bounds[chunk];
            if k == 1 {
                // Unrolled slot walk: four independent accumulators hide the
                // gather latency chain; the scalar tail covers stored % 4.
                for (local, out) in xs.iter_mut().enumerate() {
                    let r = row0 + local;
                    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                    let mut slot = 0usize;
                    while slot + 4 <= stored {
                        let (i0, i1) = (slot * rows + r, (slot + 1) * rows + r);
                        let (i2, i3) = ((slot + 2) * rows + r, (slot + 3) * rows + r);
                        a0 += vals[i0].to_f64() * bv[ci[i0].to_usize()].to_f64();
                        a1 += vals[i1].to_f64() * bv[ci[i1].to_usize()].to_f64();
                        a2 += vals[i2].to_f64() * bv[ci[i2].to_usize()].to_f64();
                        a3 += vals[i3].to_f64() * bv[ci[i3].to_usize()].to_f64();
                        slot += 4;
                    }
                    let mut tail = 0.0f64;
                    while slot < stored {
                        let idx = slot * rows + r;
                        tail += vals[idx].to_f64() * bv[ci[idx].to_usize()].to_f64();
                        slot += 1;
                    }
                    let prod = V::from_f64(((a0 + a1) + (a2 + a3)) + tail);
                    *out = if beta == V::zero() {
                        alpha * prod
                    } else {
                        alpha * prod + beta * *out
                    };
                }
            } else {
                for (local, xrow) in xs.chunks_mut(k).enumerate() {
                    let r = row0 + local;
                    for (c, out) in xrow.iter_mut().enumerate() {
                        let mut acc = 0.0f64;
                        for slot in 0..stored {
                            let idx = slot * rows + r;
                            acc += vals[idx].to_f64() * bv[ci[idx].to_usize() * k + c].to_f64();
                        }
                        let prod = V::from_f64(acc);
                        *out = if beta == V::zero() {
                            alpha * prod
                        } else {
                            alpha * prod + beta * *out
                        };
                    }
                }
            }
        });
        self.executor().launch(&work);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "ell"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::reference()
    }

    fn sample_csr(e: &Executor) -> Csr<f64, i32> {
        Csr::from_triplets(
            e,
            Dim2::square(3),
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (2, 2, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn padding_follows_longest_row() {
        let e = exec();
        let ell = Ell::from_csr(&sample_csr(&e));
        assert_eq!(ell.stored_per_row(), 3);
        assert_eq!(ell.stored_elements(), 9);
    }

    #[test]
    fn spmv_matches_csr() {
        let e = exec();
        let csr = sample_csr(&e);
        let ell = Ell::from_csr(&csr);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x1 = Dense::zeros(&e, Dim2::new(3, 1));
        let mut x2 = Dense::zeros(&e, Dim2::new(3, 1));
        csr.apply(&b, &mut x1).unwrap();
        ell.apply(&b, &mut x2).unwrap();
        assert_eq!(x1.to_host_vec(), x2.to_host_vec());
    }

    #[test]
    fn csr_roundtrip_drops_padding() {
        let e = exec();
        let csr = sample_csr(&e);
        let back = Ell::from_csr(&csr).to_csr();
        assert_eq!(back.nnz(), csr.nnz());
        assert_eq!(back.to_dense().to_host_vec(), csr.to_dense().to_host_vec());
    }

    #[test]
    fn skewed_rows_inflate_stored_elements() {
        let e = exec();
        // 1 row with 10 nnz, 9 rows with 1 nnz: ELL stores 10*10 slots.
        let mut t = vec![];
        for j in 0..10 {
            t.push((0usize, j, 1.0f64));
        }
        for i in 1..10 {
            t.push((i, 0, 1.0));
        }
        let csr = Csr::<f64, i32>::from_triplets(&e, Dim2::square(10), &t).unwrap();
        let ell = Ell::from_csr(&csr);
        assert_eq!(ell.stored_elements(), 100);
        assert_eq!(csr.nnz(), 19);
        let ell_flops: f64 = ell.spmv_work(4).iter().map(|w| w.flops).sum();
        let csr_flops: f64 = csr
            .spmv_work(&csr.chunk_bounds(4))
            .iter()
            .map(|w| w.flops)
            .sum();
        assert!(ell_flops > 4.0 * csr_flops, "padding is charged");
    }

    #[test]
    fn empty_matrix_works() {
        let e = exec();
        let csr = Csr::<f64, i32>::from_triplets(&e, Dim2::square(2), &[]).unwrap();
        let ell = Ell::from_csr(&csr);
        assert_eq!(ell.stored_per_row(), 0);
        let b = Dense::from_rows(&e, &[[1.0f64], [1.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(2, 1));
        ell.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![0.0, 0.0]);
    }
}
