//! 2-D convolution operator (the paper's "Outlook" feature).
//!
//! The paper's conclusion names "the integration of a convolution kernel,
//! which would allow Ginkgo and pyGinkgo to support key operations required
//! in image processing and convolutional neural networks" as future work on
//! the Ginkgo side. This module implements it: [`Conv2d`] is a [`LinOp`]
//! performing same-size zero-padded 2-D cross-correlation of a `kh x kw`
//! filter over an `h x w` image stored row-major in a column vector — so it
//! composes with every solver and preconditioner like any other operator
//! (a convolution *is* a highly structured sparse matrix).

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::Value;
use crate::executor::pool::{parallel_chunks, uniform_bounds};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;

/// Same-size zero-padded 2-D cross-correlation as a linear operator on
/// flattened `h x w` images.
#[derive(Debug, Clone)]
pub struct Conv2d<V: Value> {
    exec: Executor,
    height: usize,
    width: usize,
    kh: usize,
    kw: usize,
    /// Row-major `kh x kw` filter taps.
    kernel: Vec<V>,
}

impl<V: Value> Conv2d<V> {
    /// Creates the operator for an `height x width` image and a row-major
    /// `kh x kw` filter. Kernel dimensions must be odd (centered filter).
    pub fn new(
        exec: &Executor,
        (height, width): (usize, usize),
        (kh, kw): (usize, usize),
        kernel: Vec<V>,
    ) -> Result<Self> {
        if height == 0 || width == 0 {
            return Err(GkoError::BadInput("image must be non-empty".into()));
        }
        if kh.is_multiple_of(2) || kw.is_multiple_of(2) {
            return Err(GkoError::BadInput(format!(
                "kernel dimensions must be odd, got {kh} x {kw}"
            )));
        }
        if kernel.len() != kh * kw {
            return Err(GkoError::BadInput(format!(
                "kernel buffer has {} taps, expected {}",
                kernel.len(),
                kh * kw
            )));
        }
        Ok(Conv2d {
            exec: exec.clone(),
            height,
            width,
            kh,
            kw,
            kernel,
        })
    }

    /// Image dimensions.
    pub fn image_size(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    /// Filter dimensions.
    pub fn kernel_size(&self) -> (usize, usize) {
        (self.kh, self.kw)
    }

    /// Materializes the equivalent sparse matrix (for testing and for
    /// feeding convolutions into solver pipelines that need explicit CSR).
    pub fn to_csr(&self) -> Csr<V, i32> {
        let (h, w) = (self.height, self.width);
        let (rh, rw) = (self.kh / 2, self.kw / 2);
        let mut triplets = Vec::with_capacity(h * w * self.kh * self.kw);
        for oy in 0..h {
            for ox in 0..w {
                let row = oy * w + ox;
                for ky in 0..self.kh {
                    for kx in 0..self.kw {
                        let iy = oy as isize + ky as isize - rh as isize;
                        let ix = ox as isize + kx as isize - rw as isize;
                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                            continue;
                        }
                        let v = self.kernel[ky * self.kw + kx];
                        if v != V::zero() {
                            triplets.push((row, iy as usize * w + ix as usize, v));
                        }
                    }
                }
            }
        }
        Csr::from_triplets(&self.exec, Dim2::square(h * w), &triplets)
            // lint: allow(panic): triplets are built from in-range stencil
            // offsets, so the CSR constructor cannot reject them.
            .expect("stencil triplets are valid")
    }

    fn work(&self) -> Vec<ChunkWork> {
        let n = self.height * self.width;
        let taps = (self.kh * self.kw) as f64;
        let spec = self.exec.spec();
        let bounds = uniform_bounds(n, spec.workers * 2);
        bounds
            .windows(2)
            .map(|win| {
                let rows = (win[1] - win[0]) as f64;
                // Stencils stream the input with high locality: the taps
                // re-read cached neighbours, so charge one streamed read per
                // output plus a per-tap cache-resident cost.
                ChunkWork::new(
                    rows * (2.0 * V::BYTES as f64) + rows * taps * 0.5,
                    0.0,
                    rows * 2.0 * taps,
                )
            })
            .collect()
    }
}

impl<V: Value> LinOp<V> for Conv2d<V> {
    fn size(&self) -> Dim2 {
        Dim2::square(self.height * self.width)
    }

    fn executor(&self) -> &Executor {
        &self.exec
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size(), b, x)?;
        let _timer = OpTimer::new(&self.exec, "conv2d");
        let (h, w) = (self.height, self.width);
        let k = b.size().cols;
        let (rh, rw) = (self.kh / 2, self.kw / 2);
        let bv = b.as_slice();
        let kernel: Vec<f64> = self.kernel.iter().map(|v| v.to_f64()).collect();
        let (kh, kw) = (self.kh, self.kw);

        let work = self.work();
        let bounds = uniform_bounds(h * w, work.len());
        let elem_bounds: Vec<usize> = bounds.iter().map(|&r| r * k).collect();
        parallel_chunks(&self.exec, x.as_mut_slice(), &elem_bounds, |chunk, xs| {
            let out0 = bounds[chunk];
            for (local, xrow) in xs.chunks_mut(k).enumerate() {
                let out = out0 + local;
                let (oy, ox) = (out / w, out % w);
                for (c, slot) in xrow.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for ky in 0..kh {
                        let iy = oy as isize + ky as isize - rh as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = ox as isize + kx as isize - rw as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let pix = iy as usize * w + ix as usize;
                            acc += kernel[ky * kw + kx] * bv[pix * k + c].to_f64();
                        }
                    }
                    *slot = V::from_f64(acc);
                }
            }
        });
        self.exec.launch(&work);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(exec: &Executor, h: usize, w: usize) -> Dense<f64> {
        let data: Vec<f64> = (0..h * w).map(|i| (i % 7) as f64 - 3.0).collect();
        Dense::from_vec(exec, Dim2::new(h * w, 1), data).unwrap()
    }

    #[test]
    fn identity_kernel_is_identity() {
        let exec = Executor::reference();
        let conv = Conv2d::new(&exec, (5, 6), (3, 3), {
            let mut k = vec![0.0; 9];
            k[4] = 1.0;
            k
        })
        .unwrap();
        let img = image(&exec, 5, 6);
        let mut out = Dense::zeros(&exec, Dim2::new(30, 1));
        conv.apply(&img, &mut out).unwrap();
        assert_eq!(out.to_host_vec(), img.to_host_vec());
    }

    #[test]
    fn shift_kernel_translates_with_zero_padding() {
        let exec = Executor::reference();
        // Tap at (0, 1) of a 3x3 kernel: output(y, x) = input(y-1, x).
        let mut k = vec![0.0; 9];
        k[1] = 1.0;
        let conv = Conv2d::new(&exec, (3, 3), (3, 3), k).unwrap();
        let data: Vec<f64> = (1..=9).map(|v| v as f64).collect();
        let img = Dense::from_vec(&exec, Dim2::new(9, 1), data).unwrap();
        let mut out = Dense::zeros(&exec, Dim2::new(9, 1));
        conv.apply(&img, &mut out).unwrap();
        assert_eq!(
            out.to_host_vec(),
            vec![0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
    }

    #[test]
    fn matches_explicit_sparse_matrix() {
        let exec = Executor::reference();
        // Laplacian stencil.
        let k = vec![0.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 0.0];
        let conv = Conv2d::new(&exec, (8, 7), (3, 3), k).unwrap();
        let csr = conv.to_csr();
        let img = image(&exec, 8, 7);
        let mut direct = Dense::zeros(&exec, Dim2::new(56, 1));
        let mut via_csr = Dense::zeros(&exec, Dim2::new(56, 1));
        conv.apply(&img, &mut direct).unwrap();
        csr.apply(&img, &mut via_csr).unwrap();
        for (a, b) in direct.to_host_vec().iter().zip(via_csr.to_host_vec()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn box_blur_preserves_constant_interior() {
        let exec = Executor::reference();
        let k = vec![1.0 / 9.0; 9];
        let conv = Conv2d::new(&exec, (6, 6), (3, 3), k).unwrap();
        let img = Dense::<f64>::vector(&exec, 36, 9.0);
        let mut out = Dense::zeros(&exec, Dim2::new(36, 1));
        conv.apply(&img, &mut out).unwrap();
        // Interior pixels average nine 9s; border pixels lose padding mass.
        assert!((out.at(7, 0) - 9.0).abs() < 1e-12);
        assert!(out.at(0, 0) < 9.0);
    }

    #[test]
    fn composes_with_solvers_as_a_linop() {
        // Solve (conv) x = b for the (diagonally dominant) blur operator —
        // deconvolution via BiCGStab, entirely through the LinOp interface.
        use crate::solver::BiCgStab;
        use crate::stop::Criteria;
        use std::sync::Arc;
        let exec = Executor::reference();
        let k = vec![0.0, 0.05, 0.0, 0.05, 0.8, 0.05, 0.0, 0.05, 0.0];
        let conv = Arc::new(Conv2d::new(&exec, (10, 10), (3, 3), k).unwrap());
        let x_true = image(&exec, 10, 10);
        let mut b = Dense::zeros(&exec, Dim2::new(100, 1));
        conv.apply(&x_true, &mut b).unwrap();
        let solver = BiCgStab::new(conv.clone() as Arc<dyn LinOp<f64>>)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-12));
        let mut x = Dense::zeros(&exec, Dim2::new(100, 1));
        solver.apply(&b, &mut x).unwrap();
        for (got, want) in x.to_host_vec().iter().zip(x_true.to_host_vec()) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn invalid_kernels_are_rejected() {
        let exec = Executor::reference();
        assert!(Conv2d::<f64>::new(&exec, (4, 4), (2, 3), vec![0.0; 6]).is_err());
        assert!(Conv2d::<f64>::new(&exec, (4, 4), (3, 3), vec![0.0; 8]).is_err());
        assert!(Conv2d::<f64>::new(&exec, (0, 4), (3, 3), vec![0.0; 9]).is_err());
    }

    #[test]
    fn parallel_omp_matches_reference() {
        let exec_r = Executor::reference();
        let exec_o = Executor::omp(4);
        let k = vec![1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0];
        let conv_r = Conv2d::new(&exec_r, (9, 11), (3, 3), k.clone()).unwrap();
        let conv_o = Conv2d::new(&exec_o, (9, 11), (3, 3), k).unwrap();
        let img_r = image(&exec_r, 9, 11);
        let img_o = image(&exec_o, 9, 11);
        let mut out_r = Dense::zeros(&exec_r, Dim2::new(99, 1));
        let mut out_o = Dense::zeros(&exec_o, Dim2::new(99, 1));
        conv_r.apply(&img_r, &mut out_r).unwrap();
        conv_o.apply(&img_o, &mut out_o).unwrap();
        assert_eq!(out_r.to_host_vec(), out_o.to_host_vec());
    }
}
