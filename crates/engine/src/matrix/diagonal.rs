//! Diagonal matrices (Ginkgo's `matrix::Diagonal`) — used for row/column
//! scaling and as the cheapest preconditioner building block.

use crate::base::array::Array;
use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::pool::{parallel_chunks, uniform_bounds};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;

/// A diagonal matrix stored as its diagonal values.
#[derive(Debug, Clone)]
pub struct Diagonal<V: Value> {
    values: Array<V>,
}

impl<V: Value> Diagonal<V> {
    /// Creates a diagonal matrix from its entries.
    pub fn new(exec: &Executor, values: Vec<V>) -> Self {
        Diagonal {
            values: Array::from_vec(exec, values),
        }
    }

    /// The diagonal of an existing matrix.
    pub fn from_matrix<I: Index>(matrix: &Csr<V, I>) -> Self {
        Diagonal::new(matrix.executor(), matrix.extract_diagonal())
    }

    /// Inverted copy; fails on zero entries.
    pub fn inverse(&self) -> Result<Diagonal<V>> {
        let mut inv = Vec::with_capacity(self.values.len());
        for (i, &v) in self.values.as_slice().iter().enumerate() {
            if v == V::zero() {
                return Err(GkoError::Singular { at: i });
            }
            inv.push(V::one() / v);
        }
        Ok(Diagonal::new(self.values.executor(), inv))
    }

    /// The diagonal entries.
    pub fn values(&self) -> &[V] {
        self.values.as_slice()
    }

    /// Scales the rows of a CSR matrix in place: `A <- D A`.
    pub fn scale_rows<I: Index>(&self, matrix: &mut Csr<V, I>) -> Result<()> {
        if matrix.size().rows != self.values.len() {
            return Err(GkoError::DimensionMismatch {
                op: "scale_rows",
                expected: Dim2::square(self.values.len()),
                actual: matrix.size(),
            });
        }
        let rp: Vec<usize> = matrix.row_ptrs().iter().map(|p| p.to_usize()).collect();
        let d = self.values.as_slice().to_vec();
        let vals = matrix.values_mut();
        for r in 0..rp.len() - 1 {
            for v in vals[rp[r]..rp[r + 1]].iter_mut() {
                *v *= d[r];
            }
        }
        Ok(())
    }

    /// Scales the columns of a CSR matrix in place: `A <- A D`.
    pub fn scale_cols<I: Index>(&self, matrix: &mut Csr<V, I>) -> Result<()> {
        if matrix.size().cols != self.values.len() {
            return Err(GkoError::DimensionMismatch {
                op: "scale_cols",
                expected: Dim2::square(self.values.len()),
                actual: matrix.size(),
            });
        }
        let cols: Vec<usize> = matrix.col_idxs().iter().map(|c| c.to_usize()).collect();
        let d = self.values.as_slice().to_vec();
        for (v, &c) in matrix.values_mut().iter_mut().zip(&cols) {
            *v *= d[c];
        }
        Ok(())
    }
}

impl<V: Value> LinOp<V> for Diagonal<V> {
    fn size(&self) -> Dim2 {
        Dim2::square(self.values.len())
    }

    fn executor(&self) -> &Executor {
        self.values.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size(), b, x)?;
        let _timer = OpTimer::new(self.executor(), "diagonal");
        let k = b.size().cols;
        let d = self.values.as_slice();
        let bv = b.as_slice();
        let exec = self.executor().clone();
        let spec = exec.spec();
        // Row-chunked elementwise scaling on the executor's pool.
        let row_bounds = uniform_bounds(d.len(), spec.workers * 2);
        let elem_bounds: Vec<usize> = row_bounds.iter().map(|&r| r * k).collect();
        let work: Vec<ChunkWork> = row_bounds
            .windows(2)
            .map(|w| {
                let n = ((w[1] - w[0]) * k) as f64;
                ChunkWork::new(n * 3.0 * V::BYTES as f64, 0.0, n)
            })
            .collect();
        parallel_chunks(&exec, x.as_mut_slice(), &elem_bounds, |chunk, xs| {
            let row0 = row_bounds[chunk];
            for (local, out) in xs.iter_mut().enumerate() {
                let elem = row0 * k + local;
                *out = d[elem / k] * bv[elem];
            }
        });
        self.executor().launch(&work);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "diagonal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_scales_entries() {
        let exec = Executor::reference();
        let d = Diagonal::new(&exec, vec![2.0f64, 3.0, -1.0]);
        let b = Dense::from_rows(&exec, &[[1.0f64], [1.0], [4.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(3, 1));
        d.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![2.0, 3.0, -4.0]);
    }

    #[test]
    fn inverse_round_trips_and_detects_zero() {
        let exec = Executor::reference();
        let d = Diagonal::new(&exec, vec![2.0f64, 4.0]);
        let inv = d.inverse().unwrap();
        assert_eq!(inv.values(), &[0.5, 0.25]);
        let zero = Diagonal::new(&exec, vec![1.0f64, 0.0]);
        assert_eq!(zero.inverse().unwrap_err(), GkoError::Singular { at: 1 });
    }

    #[test]
    fn row_and_column_scaling() {
        let exec = Executor::reference();
        let mut a = Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(2),
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)],
        )
        .unwrap();
        let d = Diagonal::new(&exec, vec![2.0f64, 10.0]);
        d.scale_rows(&mut a).unwrap();
        assert_eq!(a.to_dense().to_host_vec(), vec![2.0, 4.0, 0.0, 30.0]);
        d.scale_cols(&mut a).unwrap();
        assert_eq!(a.to_dense().to_host_vec(), vec![4.0, 40.0, 0.0, 300.0]);
    }

    #[test]
    fn equilibration_improves_conditioning() {
        // D^{-1} A with D = diag(A) has unit diagonal — the classic Jacobi
        // equilibration, composed from Diagonal pieces.
        let exec = Executor::reference();
        let mut a = Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(3),
            &[(0, 0, 100.0), (0, 1, 1.0), (1, 1, 0.01), (2, 2, 5.0)],
        )
        .unwrap();
        let dinv = Diagonal::from_matrix(&a).inverse().unwrap();
        dinv.scale_rows(&mut a).unwrap();
        assert_eq!(a.extract_diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let exec = Executor::reference();
        let d = Diagonal::new(&exec, vec![1.0f64; 3]);
        let mut a =
            Csr::<f64, i32>::from_triplets(&exec, Dim2::square(2), &[(0, 0, 1.0)]).unwrap();
        assert!(d.scale_rows(&mut a).is_err());
        assert!(d.scale_cols(&mut a).is_err());
        let b = Dense::<f64>::vector(&exec, 2, 1.0);
        let mut x = Dense::zeros(&exec, Dim2::new(3, 1));
        assert!(d.apply(&b, &mut x).is_err());
    }
}
