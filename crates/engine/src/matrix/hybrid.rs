//! Hybrid (ELL + COO) format — Ginkgo's `Hyb`.
//!
//! Rows up to a chosen width go into a regular ELL part (coalesced, no
//! per-row indices); the overflow of longer rows goes into a COO part. The
//! split width is chosen from the row-length distribution (Ginkgo uses a
//! percentile heuristic), so skewed matrices keep ELL's regularity without
//! ELL's padding blow-up.
//!
//! The apply delegates to the two parts, so Hybrid inherits the ELL
//! kernel's unrolled four-accumulator inner loop (see
//! [`Ell`](crate::matrix::ell::Ell)) on the regular part for free.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::{Index, Value};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::coo::Coo;
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use crate::matrix::ell::Ell;
use pygko_sim::ChunkWork;

/// Row-length percentile used to pick the ELL width (Ginkgo's default
/// strategy keeps ~80% of rows fully inside the ELL part).
pub const DEFAULT_PERCENTILE: f64 = 0.8;

/// Sparse matrix split into an ELL part plus a COO overflow.
#[derive(Debug, Clone)]
pub struct Hybrid<V: Value, I: Index = i32> {
    size: Dim2,
    ell: Ell<V, I>,
    coo: Coo<V, I>,
}

impl<V: Value, I: Index> Hybrid<V, I> {
    /// Converts from CSR using the default percentile split.
    pub fn from_csr(csr: &Csr<V, I>) -> Self {
        Hybrid::from_csr_with_percentile(csr, DEFAULT_PERCENTILE)
    }

    /// Converts from CSR, placing the `percentile`-quantile row length into
    /// the ELL part and the overflow into COO.
    pub fn from_csr_with_percentile(csr: &Csr<V, I>, percentile: f64) -> Self {
        assert!((0.0..=1.0).contains(&percentile), "percentile in [0, 1]");
        let size = csr.size();
        let rp = csr.row_ptrs();
        let rows = size.rows;
        let mut lengths: Vec<usize> = (0..rows)
            .map(|r| rp[r + 1].to_usize() - rp[r].to_usize())
            .collect();
        let width = if lengths.is_empty() {
            0
        } else {
            lengths.sort_unstable();
            lengths[((rows - 1) as f64 * percentile) as usize]
        };

        // Split triplets.
        let mut ell_triplets = Vec::new();
        let mut coo_triplets = Vec::new();
        for r in 0..rows {
            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
            for (slot, idx) in (lo..hi).enumerate() {
                let entry = (r, csr.col_idxs()[idx].to_usize(), csr.values()[idx]);
                if slot < width {
                    ell_triplets.push(entry);
                } else {
                    coo_triplets.push(entry);
                }
            }
        }
        let exec = csr.executor();
        let ell_csr = Csr::<V, I>::from_triplets(exec, size, &ell_triplets)
            // lint: allow(panic): both halves of the split inherit the
            // source CSR's in-bounds indices.
            .expect("split triplets are valid");
        let coo = Coo::<V, I>::from_triplets(exec, size, &coo_triplets)
            // lint: allow(panic): same split — indices stay in bounds.
            .expect("split triplets are valid");
        Hybrid {
            size,
            ell: Ell::from_csr(&ell_csr),
            coo,
        }
    }

    /// Converts back to CSR (merging the two parts).
    pub fn to_csr(&self) -> Csr<V, I> {
        let ell_csr = self.ell.to_csr();
        let mut triplets: Vec<(usize, usize, V)> = Vec::new();
        let rp = ell_csr.row_ptrs();
        for r in 0..self.size.rows {
            for idx in rp[r].to_usize()..rp[r + 1].to_usize() {
                triplets.push((r, ell_csr.col_idxs()[idx].to_usize(), ell_csr.values()[idx]));
            }
        }
        for k in 0..self.coo.nnz() {
            triplets.push((
                self.coo.row_idxs()[k].to_usize(),
                self.coo.col_idxs()[k].to_usize(),
                self.coo.values()[k],
            ));
        }
        Csr::from_triplets(self.executor(), self.size, &triplets)
            // lint: allow(panic): merging the ELL and COO halves of a
            // well-formed Hybrid keeps every index in bounds.
            .expect("merged triplets are valid")
    }

    /// Stored nonzeros in the ELL part (including padding).
    pub fn ell_stored(&self) -> usize {
        self.ell.stored_elements()
    }

    /// Nonzeros in the COO overflow part.
    pub fn coo_nnz(&self) -> usize {
        self.coo.nnz()
    }

    /// Executor the matrix lives on.
    pub fn executor(&self) -> &Executor {
        self.coo.executor()
    }

    /// Matrix size.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Validates both halves and their agreement with the declared size.
    pub fn validate(&self) -> Result<()> {
        if self.ell.size() != self.size || self.coo.size() != self.size {
            return Err(crate::base::error::GkoError::BadInput(format!(
                "Hybrid parts disagree with declared size {}: ELL is {}, COO is {}",
                self.size,
                self.ell.size(),
                self.coo.size()
            )));
        }
        self.ell.validate()?;
        self.coo.validate()
    }

    /// Combined work description (the two sub-kernels).
    pub fn spmv_work(&self, chunks: usize) -> Vec<ChunkWork> {
        let mut work = self.ell.spmv_work(chunks);
        work.extend(self.coo.spmv_work(chunks));
        work
    }
}

impl<V: Value, I: Index> LinOp<V> for Hybrid<V, I> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        self.coo.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.apply_advanced(V::one(), b, V::zero(), x)
    }

    /// Composes the two parallel sub-kernels: the ELL part applies the full
    /// `alpha`/`beta` update, then the COO overflow accumulates on top.
    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        // The sub-kernels emit their own "ell"/"coo" events, which a
        // profiler attributes as children nested under this frame.
        let _timer = OpTimer::new(self.executor(), "hybrid");
        self.ell.apply_advanced(alpha, b, beta, x)?;
        self.coo.apply_advanced(alpha, b, V::one(), x)
    }

    fn op_name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(exec: &Executor, n: usize) -> Csr<f64, i32> {
        let mut t = vec![];
        for j in 0..n {
            t.push((0usize, j, 1.0 + j as f64)); // one dense row
        }
        for i in 1..n {
            t.push((i, i, 2.0));
            if i > 1 {
                t.push((i, i - 1, -0.5));
            }
        }
        Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
    }

    #[test]
    fn spmv_matches_csr() {
        let exec = Executor::reference();
        let csr = skewed(&exec, 60);
        let hyb = Hybrid::from_csr(&csr);
        let b = Dense::<f64>::vector(&exec, 60, 1.5);
        let mut x1 = Dense::zeros(&exec, Dim2::new(60, 1));
        let mut x2 = Dense::zeros(&exec, Dim2::new(60, 1));
        csr.apply(&b, &mut x1).unwrap();
        hyb.apply(&b, &mut x2).unwrap();
        for (a, b) in x1.to_host_vec().iter().zip(x2.to_host_vec()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn long_rows_overflow_to_coo() {
        let exec = Executor::reference();
        let csr = skewed(&exec, 100);
        let hyb = Hybrid::from_csr(&csr);
        assert!(hyb.coo_nnz() > 0, "the dense row must overflow");
        // Padding is far below plain ELL's rows * max_len.
        let ell_full = Ell::from_csr(&csr);
        assert!(
            hyb.ell_stored() < ell_full.stored_elements() / 10,
            "hybrid {} vs full ELL {}",
            hyb.ell_stored(),
            ell_full.stored_elements()
        );
    }

    #[test]
    fn percentile_extremes() {
        let exec = Executor::reference();
        let csr = skewed(&exec, 30);
        // percentile 1.0: everything in ELL, COO empty.
        let hyb = Hybrid::from_csr_with_percentile(&csr, 1.0);
        assert_eq!(hyb.coo_nnz(), 0);
        // percentile 0.0: width = shortest row; most entries in COO.
        let hyb = Hybrid::from_csr_with_percentile(&csr, 0.0);
        assert!(hyb.coo_nnz() > csr.nnz() / 3);
        // Both still multiply correctly.
        let b = Dense::<f64>::vector(&exec, 30, 1.0);
        let mut want = Dense::zeros(&exec, Dim2::new(30, 1));
        csr.apply(&b, &mut want).unwrap();
        let mut got = Dense::zeros(&exec, Dim2::new(30, 1));
        hyb.apply(&b, &mut got).unwrap();
        assert_eq!(got.to_host_vec(), want.to_host_vec());
    }

    #[test]
    fn csr_roundtrip() {
        let exec = Executor::reference();
        let csr = skewed(&exec, 40);
        let back = Hybrid::from_csr(&csr).to_csr();
        assert_eq!(back.nnz(), csr.nnz());
        assert_eq!(back.to_dense().to_host_vec(), csr.to_dense().to_host_vec());
    }

    #[test]
    fn empty_matrix_works() {
        let exec = Executor::reference();
        let csr = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(3), &[]).unwrap();
        let hyb = Hybrid::from_csr(&csr);
        let b = Dense::<f64>::vector(&exec, 3, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 3, 5.0);
        hyb.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![0.0; 3]);
    }
}
