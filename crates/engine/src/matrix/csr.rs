//! Compressed Sparse Row format.
//!
//! CSR is Ginkgo's workhorse format and the primary format of the paper's
//! benchmarks. Two SpMV strategies are provided, mirroring Ginkgo's
//! automatic strategy selection (and feeding the strategy ablation bench):
//!
//! * [`SpmvStrategy::Classical`] — contiguous row blocks of equal *row*
//!   count. Simple, but skewed row lengths produce load imbalance.
//! * [`SpmvStrategy::LoadBalance`] — row blocks balanced by *nonzero* count
//!   (row-granularity approximation of Ginkgo's merge-based kernel), which
//!   is what gives Ginkgo its near-linear NNZ scaling on irregular matrices.

use crate::base::array::Array;
use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::pool::{parallel_chunks, uniform_bounds};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;

/// SpMV parallelization strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpmvStrategy {
    /// Equal-row-count chunks (classical row-parallel kernel).
    Classical,
    /// Equal-nonzero-count chunks (load-balanced kernel).
    #[default]
    LoadBalance,
}

/// Sparse matrix in CSR format with value type `V` and index type `I`.
#[derive(Debug, Clone)]
pub struct Csr<V: Value, I: Index = i32> {
    size: Dim2,
    row_ptrs: Array<I>,
    col_idxs: Array<I>,
    values: Array<V>,
    strategy: SpmvStrategy,
}

/// The CSR structural invariants, checked from scratch. Shared between
/// construction-time validation ([`Csr::from_raw`]) and the runtime
/// sanitizer ([`Csr::validate`]).
fn check_csr_structure<I: Index>(
    size: Dim2,
    row_ptrs: &[I],
    col_idxs: &[I],
    n_values: usize,
) -> Result<()> {
    if row_ptrs.len() != size.rows + 1 {
        return Err(GkoError::BadInput(format!(
            "row_ptrs length {} does not match rows+1 = {}",
            row_ptrs.len(),
            size.rows + 1
        )));
    }
    if col_idxs.len() != n_values {
        return Err(GkoError::BadInput(format!(
            "col_idxs length {} != values length {}",
            col_idxs.len(),
            n_values
        )));
    }
    if row_ptrs[0] != I::zero() {
        return Err(GkoError::BadInput("row_ptrs[0] must be 0".into()));
    }
    if row_ptrs[size.rows].to_usize() != n_values {
        return Err(GkoError::BadInput(format!(
            "row_ptrs[rows] = {} does not match nnz = {}",
            row_ptrs[size.rows],
            n_values
        )));
    }
    for r in 0..size.rows {
        let (lo, hi) = (row_ptrs[r].to_usize(), row_ptrs[r + 1].to_usize());
        if lo > hi {
            return Err(GkoError::BadInput(format!(
                "row_ptrs must be non-decreasing (row {r})"
            )));
        }
        if hi > n_values {
            return Err(GkoError::BadInput(format!(
                "row_ptrs[{}] = {hi} exceeds nnz = {n_values}",
                r + 1
            )));
        }
        let mut prev: Option<I> = None;
        for &c in &col_idxs[lo..hi] {
            if c.to_usize() >= size.cols {
                return Err(GkoError::BadInput(format!(
                    "column index {c} out of range in row {r}"
                )));
            }
            if let Some(p) = prev {
                if c <= p {
                    return Err(GkoError::BadInput(format!(
                        "column indices must be strictly increasing within row {r}"
                    )));
                }
            }
            prev = Some(c);
        }
    }
    Ok(())
}

impl<V: Value, I: Index> Csr<V, I> {
    /// Matrix size.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Builds a CSR matrix from raw arrays, validating the structure
    /// (monotone row pointers, in-range and per-row sorted, unique columns).
    pub fn from_raw(
        exec: &Executor,
        size: Dim2,
        row_ptrs: Vec<I>,
        col_idxs: Vec<I>,
        values: Vec<V>,
    ) -> Result<Self> {
        check_csr_structure(size, &row_ptrs, &col_idxs, values.len())?;
        Ok(Csr {
            size,
            row_ptrs: Array::from_vec(exec, row_ptrs),
            col_idxs: Array::from_vec(exec, col_idxs),
            values: Array::from_vec(exec, values),
            strategy: SpmvStrategy::default(),
        })
    }

    /// Builds a CSR matrix from raw arrays **without** validating the
    /// structure. Intended for trusted converters and for sanitizer tests
    /// that need to construct deliberately corrupted matrices; anything
    /// built this way should be passed through [`Csr::validate`] before a
    /// kernel touches it.
    pub fn from_raw_unchecked(
        exec: &Executor,
        size: Dim2,
        row_ptrs: Vec<I>,
        col_idxs: Vec<I>,
        values: Vec<V>,
    ) -> Self {
        Csr {
            size,
            row_ptrs: Array::from_vec(exec, row_ptrs),
            col_idxs: Array::from_vec(exec, col_idxs),
            values: Array::from_vec(exec, values),
            strategy: SpmvStrategy::default(),
        }
    }

    /// Re-derives the CSR structural invariants from scratch: `row_ptrs`
    /// length, monotonicity and endpoints, and in-range, per-row strictly
    /// increasing column indices. The runtime sanitizer's entry point for
    /// data that bypassed [`Csr::from_raw`]'s construction-time checks.
    pub fn validate(&self) -> Result<()> {
        check_csr_structure(
            self.size,
            self.row_ptrs.as_slice(),
            self.col_idxs.as_slice(),
            self.values.len(),
        )
    }

    /// Builds from unsorted (row, col, value) triplets; duplicates are
    /// summed (Matrix Market semantics for symmetric expansions).
    pub fn from_triplets(
        exec: &Executor,
        size: Dim2,
        triplets: &[(usize, usize, V)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= size.rows || c >= size.cols {
                return Err(GkoError::BadInput(format!(
                    "entry ({r}, {c}) outside matrix {size}"
                )));
            }
        }
        let mut sorted: Vec<(usize, usize, V)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptrs = vec![I::zero(); size.rows + 1];
        let mut col_idxs: Vec<I> = Vec::with_capacity(sorted.len());
        let mut values: Vec<V> = Vec::with_capacity(sorted.len());
        let mut counts = vec![0usize; size.rows];
        let mut it = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = it.next() {
            while let Some(&(r2, c2, v2)) = it.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    it.next();
                } else {
                    break;
                }
            }
            counts[r] += 1;
            col_idxs.push(I::from_usize(c));
            values.push(v);
        }
        let mut acc = 0usize;
        for (r, &cnt) in counts.iter().enumerate() {
            acc += cnt;
            row_ptrs[r + 1] = I::from_usize(acc);
        }
        Csr::from_raw(exec, size, row_ptrs, col_idxs, values)
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Dense<V>) -> Self {
        let size = dense.size();
        let mut triplets = Vec::new();
        for i in 0..size.rows {
            for j in 0..size.cols {
                let v = dense.at(i, j);
                if v != V::zero() {
                    triplets.push((i, j, v));
                }
            }
        }
        Csr::from_triplets(dense.executor(), size, &triplets)
            // lint: allow(panic): indices come from iterating `size`, so
            // they are in bounds by construction.
            .expect("dense-derived triplets are always valid")
    }

    /// Chooses the SpMV strategy (builder style).
    pub fn with_strategy(mut self, strategy: SpmvStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Current SpMV strategy.
    pub fn strategy(&self) -> SpmvStrategy {
        self.strategy
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `rows + 1`).
    pub fn row_ptrs(&self) -> &[I] {
        self.row_ptrs.as_slice()
    }

    /// Column index array (length `nnz`).
    pub fn col_idxs(&self) -> &[I] {
        self.col_idxs.as_slice()
    }

    /// Value array (length `nnz`).
    pub fn values(&self) -> &[V] {
        self.values.as_slice()
    }

    /// Mutable value access (structure stays fixed) — used by factorizations.
    pub fn values_mut(&mut self) -> &mut [V] {
        self.values.as_mut_slice()
    }

    /// Executor the matrix lives on.
    pub fn executor(&self) -> &Executor {
        self.values.executor()
    }

    /// Clones onto another executor.
    pub fn clone_to(&self, exec: &Executor) -> Self {
        Csr {
            size: self.size,
            row_ptrs: self.row_ptrs.copy_to(exec),
            col_idxs: self.col_idxs.copy_to(exec),
            values: self.values.copy_to(exec),
            strategy: self.strategy,
        }
    }

    /// Densifies (for tests and the dense direct solver).
    pub fn to_dense(&self) -> Dense<V> {
        let mut out = Dense::zeros(self.executor(), self.size);
        let rp = self.row_ptrs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        for r in 0..self.size.rows {
            for k in rp[r].to_usize()..rp[r + 1].to_usize() {
                out.set(r, ci[k].to_usize(), vals[k]);
            }
        }
        out
    }

    /// Extracts the diagonal (missing diagonal entries read as zero).
    pub fn extract_diagonal(&self) -> Vec<V> {
        let rp = self.row_ptrs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        (0..self.size.rows.min(self.size.cols))
            .map(|r| {
                let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
                match ci[lo..hi].binary_search(&I::from_usize(r)) {
                    Ok(pos) => vals[lo + pos],
                    Err(_) => V::zero(),
                }
            })
            .collect()
    }

    /// Transposed copy (explicit CSC-to-CSR conversion).
    pub fn transpose(&self) -> Csr<V, I> {
        let (m, n) = (self.size.rows, self.size.cols);
        let rp = self.row_ptrs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        let nnz = self.nnz();
        let mut counts = vec![0usize; n + 1];
        for &c in ci {
            counts[c.to_usize() + 1] += 1;
        }
        for j in 0..n {
            counts[j + 1] += counts[j];
        }
        let mut t_rows = vec![I::zero(); n + 1];
        for (j, &c) in counts.iter().enumerate() {
            t_rows[j] = I::from_usize(c);
        }
        let mut t_cols = vec![I::zero(); nnz];
        let mut t_vals = vec![V::zero(); nnz];
        let mut cursor = counts;
        for r in 0..m {
            for k in rp[r].to_usize()..rp[r + 1].to_usize() {
                let c = ci[k].to_usize();
                let dst = cursor[c];
                cursor[c] += 1;
                t_cols[dst] = I::from_usize(r);
                t_vals[dst] = vals[k];
            }
        }
        Csr::from_raw(self.executor(), self.size.transposed(), t_rows, t_cols, t_vals)
            // lint: allow(panic): counting sort of a valid CSR yields
            // monotone row pointers and in-bounds, sorted columns.
            .expect("transpose of valid CSR is valid")
    }

    /// Row chunk boundaries according to the active strategy.
    ///
    /// Exposed so the cost model, the facade, and the ablation benches can
    /// inspect the partition a kernel will use.
    pub fn chunk_bounds(&self, max_chunks: usize) -> Vec<usize> {
        let m = self.size.rows;
        match self.strategy {
            SpmvStrategy::Classical => uniform_bounds(m, max_chunks),
            SpmvStrategy::LoadBalance => {
                let nnz = self.nnz();
                if nnz == 0 || m == 0 {
                    return uniform_bounds(m, max_chunks);
                }
                let chunks = max_chunks.max(1).min(m);
                let rp = self.row_ptrs.as_slice();
                let mut bounds = Vec::with_capacity(chunks + 1);
                bounds.push(0usize);
                for c in 1..chunks {
                    let target = c * nnz / chunks;
                    // First row whose end passes the target.
                    let row = rp.partition_point(|&p| p.to_usize() < target);
                    // lint: allow(panic): `bounds` starts with a pushed 0.
                    let row = row.clamp(*bounds.last().unwrap(), m);
                    // Skewed nnz distributions (e.g. one dense row holding
                    // most of the matrix) make several targets resolve to
                    // the same row. Keeping those duplicates would emit
                    // empty chunks that inflate the modeled per-chunk
                    // overhead and the pool's dispatch bookkeeping, so
                    // boundaries are deduplicated as they are produced.
                    // lint: allow(panic): `bounds` is never emptied.
                    if row < m && row != *bounds.last().unwrap() {
                        bounds.push(row);
                    }
                }
                bounds.push(m);
                bounds
            }
        }
    }

    /// Work description of an SpMV under the given row partition.
    pub fn spmv_work(&self, bounds: &[usize]) -> Vec<ChunkWork> {
        let rp = self.row_ptrs.as_slice();
        bounds
            .windows(2)
            .map(|w| {
                let rows = (w[1] - w[0]) as f64;
                let nnz = (rp[w[1]].to_usize() - rp[w[0]].to_usize()) as f64;
                ChunkWork::new(
                    nnz * (V::BYTES + I::BYTES) as f64 + rows * (I::BYTES + V::BYTES) as f64,
                    nnz * V::BYTES as f64, // x gathers
                    2.0 * nnz,
                )
            })
            .collect()
    }

    fn spmv_into(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        if !self.executor().same_memory_space(b.executor()) {
            return Err(GkoError::ExecutorMismatch {
                left: self.executor().name().to_owned(),
                right: b.executor().name().to_owned(),
            });
        }
        let _timer = OpTimer::new(self.executor(), "csr");
        let k = b.size().cols;
        let spec = self.executor().spec();
        let bounds = self.chunk_bounds(spec.workers * 4);
        let work = self.spmv_work(&bounds);

        let rp = self.row_ptrs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        let bv = b.as_slice();
        let exec = self.executor().clone();
        let elem_bounds: Vec<usize> = bounds.iter().map(|&r| r * k).collect();
        parallel_chunks(&exec, x.as_mut_slice(), &elem_bounds, |chunk, xs| {
            let row0 = bounds[chunk];
            for (local, xrow) in xs.chunks_mut(k).enumerate() {
                let r = row0 + local;
                let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
                for (c, out) in xrow.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for idx in lo..hi {
                        acc += vals[idx].to_f64() * bv[ci[idx].to_usize() * k + c].to_f64();
                    }
                    let prod = V::from_f64(acc);
                    *out = if beta == V::zero() {
                        alpha * prod
                    } else {
                        alpha * prod + beta * *out
                    };
                }
            }
        });
        self.executor().launch(&work);
        Ok(())
    }
}

impl<V: Value, I: Index> LinOp<V> for Csr<V, I> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        self.values.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.spmv_into(V::one(), b, V::zero(), x)
    }

    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        self.spmv_into(alpha, b, beta, x)
    }

    fn op_name(&self) -> &'static str {
        "csr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::reference()
    }

    /// 3x3 test matrix:
    /// [ 2 0 1 ]
    /// [ 0 3 0 ]
    /// [ 4 5 6 ]
    fn sample(e: &Executor) -> Csr<f64, i32> {
        Csr::from_raw(
            e,
            Dim2::square(3),
            vec![0, 2, 3, 6],
            vec![0, 2, 1, 0, 1, 2],
            vec![2.0, 1.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_malformed_input() {
        let e = exec();
        // wrong row_ptrs length
        assert!(Csr::<f64, i32>::from_raw(&e, Dim2::square(2), vec![0, 1], vec![0], vec![1.0])
            .is_err());
        // col out of range
        assert!(Csr::<f64, i32>::from_raw(
            &e,
            Dim2::square(2),
            vec![0, 1, 1],
            vec![5],
            vec![1.0]
        )
        .is_err());
        // unsorted columns in a row
        assert!(Csr::<f64, i32>::from_raw(
            &e,
            Dim2::square(2),
            vec![0, 2, 2],
            vec![1, 0],
            vec![1.0, 2.0]
        )
        .is_err());
        // nnz mismatch
        assert!(Csr::<f64, i32>::from_raw(
            &e,
            Dim2::square(2),
            vec![0, 1, 3],
            vec![0, 1],
            vec![1.0, 2.0]
        )
        .is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let e = exec();
        let a = sample(&e);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(3, 1));
        a.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![5.0, 6.0, 32.0]);

        let mut xd = Dense::zeros(&e, Dim2::new(3, 1));
        a.to_dense().apply(&b, &mut xd).unwrap();
        assert_eq!(xd.to_host_vec(), x.to_host_vec());
    }

    #[test]
    fn advanced_spmv_applies_alpha_beta() {
        let e = exec();
        let a = sample(&e);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::from_rows(&e, &[[1.0f64], [1.0], [1.0]]);
        a.apply_advanced(2.0, &b, -1.0, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![9.0, 11.0, 63.0]);
    }

    #[test]
    fn strategies_agree_numerically() {
        let e = exec();
        let a = sample(&e).with_strategy(SpmvStrategy::Classical);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x1 = Dense::zeros(&e, Dim2::new(3, 1));
        a.apply(&b, &mut x1).unwrap();
        let a2 = sample(&e).with_strategy(SpmvStrategy::LoadBalance);
        let mut x2 = Dense::zeros(&e, Dim2::new(3, 1));
        a2.apply(&b, &mut x2).unwrap();
        assert_eq!(x1.to_host_vec(), x2.to_host_vec());
    }

    #[test]
    fn load_balance_bounds_balance_nnz() {
        let e = exec();
        // One heavy row (8 nnz) and 8 light rows (1 nnz each).
        let mut triplets = vec![];
        for j in 0..8 {
            triplets.push((0usize, j, 1.0f64));
        }
        for i in 1..9 {
            triplets.push((i, 0, 1.0));
        }
        let a = Csr::<f64, i32>::from_triplets(&e, Dim2::new(9, 9), &triplets).unwrap();
        let bounds = a.chunk_bounds(4);
        let rp = a.row_ptrs();
        let nnz_per_chunk: Vec<usize> = bounds
            .windows(2)
            .map(|w| rp[w[1]].to_usize() - rp[w[0]].to_usize())
            .collect();
        // The heavy row is alone in its chunk (8 nnz), the rest spread out.
        assert_eq!(nnz_per_chunk.iter().sum::<usize>(), 16);
        assert!(nnz_per_chunk[0] >= 8, "heavy row isolated: {nnz_per_chunk:?}");

        let classical = a.with_strategy(SpmvStrategy::Classical).chunk_bounds(4);
        assert_ne!(bounds, classical);
    }

    #[test]
    fn triplets_sum_duplicates() {
        let e = exec();
        let a = Csr::<f64, i32>::from_triplets(
            &e,
            Dim2::square(2),
            &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)],
        )
        .unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_dense().at(0, 0), 3.0);
    }

    #[test]
    fn triplets_out_of_range_rejected() {
        let e = exec();
        assert!(
            Csr::<f64, i32>::from_triplets(&e, Dim2::square(2), &[(2, 0, 1.0)]).is_err()
        );
    }

    #[test]
    fn diagonal_extraction() {
        let e = exec();
        let a = sample(&e);
        assert_eq!(a.extract_diagonal(), vec![2.0, 3.0, 6.0]);
        // missing diagonal reads as zero
        let b = Csr::<f64, i32>::from_triplets(&e, Dim2::square(2), &[(0, 1, 7.0)]).unwrap();
        assert_eq!(b.extract_diagonal(), vec![0.0, 0.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let e = exec();
        let a = sample(&e);
        let t = a.transpose();
        assert_eq!(t.to_dense().at(0, 2), 4.0);
        assert_eq!(t.to_dense().at(2, 0), 1.0);
        let tt = t.transpose();
        assert_eq!(tt.to_dense().to_host_vec(), a.to_dense().to_host_vec());
    }

    #[test]
    fn from_dense_roundtrip() {
        let e = exec();
        let d = Dense::from_rows(&e, &[[0.0f64, 1.5], [2.5, 0.0]]);
        let a = Csr::<f64, i32>::from_dense(&d);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_dense().to_host_vec(), d.to_host_vec());
    }

    #[test]
    fn int64_indices_work() {
        let e = exec();
        let a = Csr::<f32, i64>::from_triplets(
            &e,
            Dim2::square(2),
            &[(0, 0, 2.0), (1, 1, 3.0)],
        )
        .unwrap();
        let b = Dense::from_rows(&e, &[[1.0f32], [1.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(2, 1));
        a.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![2.0, 3.0]);
    }

    #[test]
    fn load_balance_bounds_have_no_duplicates_on_arrow_head() {
        let e = exec();
        // Arrow-head: full last row + full last column + diagonal. Most nnz
        // sit in the final row, so many balance targets resolve to the same
        // boundary row; these used to be emitted as duplicate bounds
        // (= empty chunks inflating modeled chunk overhead).
        let n = 64;
        let mut triplets = vec![];
        for i in 0..n - 1 {
            triplets.push((i, i, 2.0f64));
            triplets.push((i, n - 1, 1.0));
            triplets.push((n - 1, i, 1.0));
        }
        triplets.push((n - 1, n - 1, 2.0));
        let a = Csr::<f64, i32>::from_triplets(&e, Dim2::square(n), &triplets).unwrap();
        for chunks in [2, 4, 16, 64, 1000] {
            let bounds = a.chunk_bounds(chunks);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), n);
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "strictly increasing bounds (chunks={chunks}): {bounds:?}"
            );
            assert!(bounds.len() <= chunks + 1);
        }
        // The result is still correct under the deduped partition.
        let b = Dense::vector(&e, n, 1.0f64);
        let mut x = Dense::zeros(&e, Dim2::new(n, 1));
        a.apply(&b, &mut x).unwrap();
        let xs = x.to_host_vec();
        assert_eq!(xs[0], 3.0, "diag + last column");
        assert_eq!(xs[n - 1], (n - 1) as f64 + 2.0, "dense last row");
    }

    #[test]
    fn spmv_work_accounts_all_nnz() {
        let e = exec();
        let a = sample(&e);
        let bounds = a.chunk_bounds(2);
        let work = a.spmv_work(&bounds);
        let flops: f64 = work.iter().map(|w| w.flops).sum();
        assert_eq!(flops, 2.0 * a.nnz() as f64);
    }
}
