//! Compressed Sparse Row format.
//!
//! CSR is Ginkgo's workhorse format and the primary format of the paper's
//! benchmarks. Four SpMV strategies are provided, mirroring Ginkgo's
//! automatic strategy selection (and feeding the strategy ablation bench):
//!
//! * [`SpmvStrategy::Classical`] — contiguous row blocks of equal *row*
//!   count. Simple, but skewed row lengths produce load imbalance.
//! * [`SpmvStrategy::LoadBalance`] — row blocks balanced by *nonzero* count
//!   (row-granularity approximation of Ginkgo's merge-based kernel), which
//!   is what gives Ginkgo its near-linear NNZ scaling on irregular matrices.
//! * [`SpmvStrategy::MergePath`] — true merge-based kernel splitting the
//!   combined (rows + nnz) sequence, so a single ultra-dense row is divided
//!   across workers instead of serializing one lane.
//! * [`SpmvStrategy::Auto`] (the default) — picks one of the above from
//!   row-skew statistics gathered by the plan inspector.
//!
//! Partitioning is done once per matrix by the inspector–executor plan
//! layer ([`crate::matrix::plan`]): the first apply builds an [`SpmvPlan`]
//! (split points, resolved strategy, per-chunk cost work) which is cached on
//! the matrix and reused by every later apply until the matrix is mutated.

use crate::base::array::Array;
use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::pool::{parallel_chunks, uniform_bounds};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::dense::Dense;
use crate::matrix::plan::{self, PlanCache, PlanCacheStats, ResolvedStrategy, RowStats, SpmvPlan};
use crate::sanitize::{report_merge_violation, verify_merge_segments};
use pygko_sim::ChunkWork;
use std::sync::Arc;

/// SpMV parallelization strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpmvStrategy {
    /// Equal-row-count chunks (classical row-parallel kernel).
    Classical,
    /// Equal-nonzero-count chunks (load-balanced kernel).
    LoadBalance,
    /// Merge-path segments balancing rows + nnz (splits dense rows).
    MergePath,
    /// Strategy chosen per matrix from inspected row-skew statistics.
    #[default]
    Auto,
}

/// Sparse matrix in CSR format with value type `V` and index type `I`.
#[derive(Debug, Clone)]
pub struct Csr<V: Value, I: Index = i32> {
    size: Dim2,
    row_ptrs: Array<I>,
    col_idxs: Array<I>,
    values: Array<V>,
    strategy: SpmvStrategy,
    /// Cached execution plan; cloning yields a fresh empty cache.
    plan: PlanCache,
}

/// 4-wide unrolled sparse dot product of one nonzero span against a dense
/// vector (`k == 1` right-hand sides). Independent accumulators keep the
/// loop free of a serial dependency chain so the autovectorizer can keep
/// multiple FMA lanes busy; the scalar tail preserves exact semantics for
/// spans shorter than the unroll width. The final pairwise reduction is a
/// fixed reassociation, so results stay deterministic for a given span.
#[inline]
pub(crate) fn dot_span<V: Value, I: Index>(vals: &[V], cols: &[I], bv: &[V]) -> f64 {
    let mut vv = vals.chunks_exact(4);
    let mut cc = cols.chunks_exact(4);
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (v, c) in (&mut vv).zip(&mut cc) {
        a0 += v[0].to_f64() * bv[c[0].to_usize()].to_f64();
        a1 += v[1].to_f64() * bv[c[1].to_usize()].to_f64();
        a2 += v[2].to_f64() * bv[c[2].to_usize()].to_f64();
        a3 += v[3].to_f64() * bv[c[3].to_usize()].to_f64();
    }
    let mut tail = 0.0f64;
    for (v, c) in vv.remainder().iter().zip(cc.remainder().iter()) {
        tail += v.to_f64() * bv[c.to_usize()].to_f64();
    }
    ((a0 + a1) + (a2 + a3)) + tail
}

/// Raw output pointer shared across merge-path lanes for interior-row
/// writes (same scheme as the COO segment kernel).
struct SharedOut<V>(*mut V);

// SAFETY: lanes only dereference offsets of rows *interior* to their own
// segment; a row interior to a segment has every nonzero inside that
// segment's range, so those offsets are disjoint between lanes.
unsafe impl<V: Send> Send for SharedOut<V> {}
unsafe impl<V: Send> Sync for SharedOut<V> {}

impl<V> SharedOut<V> {
    /// # Safety
    ///
    /// The caller's lane must own `offset` exclusively for the duration of
    /// the job.
    unsafe fn slot(&self, offset: usize) -> *mut V {
        self.0.add(offset)
    }
}

/// The CSR structural invariants, checked from scratch. Shared between
/// construction-time validation ([`Csr::from_raw`]) and the runtime
/// sanitizer ([`Csr::validate`]).
fn check_csr_structure<I: Index>(
    size: Dim2,
    row_ptrs: &[I],
    col_idxs: &[I],
    n_values: usize,
) -> Result<()> {
    if row_ptrs.len() != size.rows + 1 {
        return Err(GkoError::BadInput(format!(
            "row_ptrs length {} does not match rows+1 = {}",
            row_ptrs.len(),
            size.rows + 1
        )));
    }
    if col_idxs.len() != n_values {
        return Err(GkoError::BadInput(format!(
            "col_idxs length {} != values length {}",
            col_idxs.len(),
            n_values
        )));
    }
    if row_ptrs[0] != I::zero() {
        return Err(GkoError::BadInput("row_ptrs[0] must be 0".into()));
    }
    if row_ptrs[size.rows].to_usize() != n_values {
        return Err(GkoError::BadInput(format!(
            "row_ptrs[rows] = {} does not match nnz = {}",
            row_ptrs[size.rows],
            n_values
        )));
    }
    for r in 0..size.rows {
        let (lo, hi) = (row_ptrs[r].to_usize(), row_ptrs[r + 1].to_usize());
        if lo > hi {
            return Err(GkoError::BadInput(format!(
                "row_ptrs must be non-decreasing (row {r})"
            )));
        }
        if hi > n_values {
            return Err(GkoError::BadInput(format!(
                "row_ptrs[{}] = {hi} exceeds nnz = {n_values}",
                r + 1
            )));
        }
        let mut prev: Option<I> = None;
        for &c in &col_idxs[lo..hi] {
            if c.to_usize() >= size.cols {
                return Err(GkoError::BadInput(format!(
                    "column index {c} out of range in row {r}"
                )));
            }
            if let Some(p) = prev {
                if c <= p {
                    return Err(GkoError::BadInput(format!(
                        "column indices must be strictly increasing within row {r}"
                    )));
                }
            }
            prev = Some(c);
        }
    }
    Ok(())
}

impl<V: Value, I: Index> Csr<V, I> {
    /// Matrix size.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Builds a CSR matrix from raw arrays, validating the structure
    /// (monotone row pointers, in-range and per-row sorted, unique columns).
    pub fn from_raw(
        exec: &Executor,
        size: Dim2,
        row_ptrs: Vec<I>,
        col_idxs: Vec<I>,
        values: Vec<V>,
    ) -> Result<Self> {
        check_csr_structure(size, &row_ptrs, &col_idxs, values.len())?;
        Ok(Csr {
            size,
            row_ptrs: Array::from_vec(exec, row_ptrs),
            col_idxs: Array::from_vec(exec, col_idxs),
            values: Array::from_vec(exec, values),
            strategy: SpmvStrategy::default(),
            plan: PlanCache::new(),
        })
    }

    /// Builds a CSR matrix from raw arrays **without** validating the
    /// structure. Intended for trusted converters and for sanitizer tests
    /// that need to construct deliberately corrupted matrices; anything
    /// built this way should be passed through [`Csr::validate`] before a
    /// kernel touches it.
    pub fn from_raw_unchecked(
        exec: &Executor,
        size: Dim2,
        row_ptrs: Vec<I>,
        col_idxs: Vec<I>,
        values: Vec<V>,
    ) -> Self {
        Csr {
            size,
            row_ptrs: Array::from_vec(exec, row_ptrs),
            col_idxs: Array::from_vec(exec, col_idxs),
            values: Array::from_vec(exec, values),
            strategy: SpmvStrategy::default(),
            plan: PlanCache::new(),
        }
    }

    /// Re-derives the CSR structural invariants from scratch: `row_ptrs`
    /// length, monotonicity and endpoints, and in-range, per-row strictly
    /// increasing column indices. The runtime sanitizer's entry point for
    /// data that bypassed [`Csr::from_raw`]'s construction-time checks.
    pub fn validate(&self) -> Result<()> {
        check_csr_structure(
            self.size,
            self.row_ptrs.as_slice(),
            self.col_idxs.as_slice(),
            self.values.len(),
        )
    }

    /// Builds from unsorted (row, col, value) triplets; duplicates are
    /// summed (Matrix Market semantics for symmetric expansions).
    pub fn from_triplets(
        exec: &Executor,
        size: Dim2,
        triplets: &[(usize, usize, V)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= size.rows || c >= size.cols {
                return Err(GkoError::BadInput(format!(
                    "entry ({r}, {c}) outside matrix {size}"
                )));
            }
        }
        let mut sorted: Vec<(usize, usize, V)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptrs = vec![I::zero(); size.rows + 1];
        let mut col_idxs: Vec<I> = Vec::with_capacity(sorted.len());
        let mut values: Vec<V> = Vec::with_capacity(sorted.len());
        let mut counts = vec![0usize; size.rows];
        let mut it = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = it.next() {
            while let Some(&(r2, c2, v2)) = it.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    it.next();
                } else {
                    break;
                }
            }
            counts[r] += 1;
            col_idxs.push(I::from_usize(c));
            values.push(v);
        }
        let mut acc = 0usize;
        for (r, &cnt) in counts.iter().enumerate() {
            acc += cnt;
            row_ptrs[r + 1] = I::from_usize(acc);
        }
        Csr::from_raw(exec, size, row_ptrs, col_idxs, values)
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &Dense<V>) -> Self {
        let size = dense.size();
        let mut triplets = Vec::new();
        for i in 0..size.rows {
            for j in 0..size.cols {
                let v = dense.at(i, j);
                if v != V::zero() {
                    triplets.push((i, j, v));
                }
            }
        }
        Csr::from_triplets(dense.executor(), size, &triplets)
            // lint: allow(panic): indices come from iterating `size`, so
            // they are in bounds by construction.
            .expect("dense-derived triplets are always valid")
    }

    /// Chooses the SpMV strategy (builder style). Drops any cached plan —
    /// the next apply re-runs the inspector for the new strategy.
    pub fn with_strategy(mut self, strategy: SpmvStrategy) -> Self {
        self.strategy = strategy;
        self.plan.invalidate();
        self
    }

    /// Current SpMV strategy.
    pub fn strategy(&self) -> SpmvStrategy {
        self.strategy
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `rows + 1`).
    pub fn row_ptrs(&self) -> &[I] {
        self.row_ptrs.as_slice()
    }

    /// Column index array (length `nnz`).
    pub fn col_idxs(&self) -> &[I] {
        self.col_idxs.as_slice()
    }

    /// Value array (length `nnz`).
    pub fn values(&self) -> &[V] {
        self.values.as_slice()
    }

    /// Mutable value access (structure stays fixed) — used by factorizations.
    ///
    /// Invalidates the cached plan. Today's plans depend only on the
    /// structure, which value mutation cannot change, but invalidating on
    /// every mutation keeps the cache trivially coherent with any future
    /// value-dependent strategy heuristics.
    pub fn values_mut(&mut self) -> &mut [V] {
        self.plan.invalidate();
        self.values.as_mut_slice()
    }

    /// The cached execution plan for this matrix on its executor, running
    /// the inspector on first use (and again after invalidation).
    pub fn plan(&self) -> Arc<SpmvPlan> {
        let exec = self.executor();
        let workers = exec.spec().workers;
        self.plan.get_or_build(self.strategy, workers, || {
            plan::build_plan(
                exec,
                self.strategy,
                self.size.rows,
                self.row_ptrs.as_slice(),
                V::BYTES,
            )
        })
    }

    /// Plan-cache build/hit counters (the bench ablation's reuse evidence).
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plan.stats()
    }

    /// Drops the cached plan so the next apply re-runs the inspector. Used
    /// by the plan-reuse ablation bench; ordinary mutation paths
    /// ([`Csr::values_mut`], [`Csr::with_strategy`]) invalidate on their own.
    pub fn invalidate_plan(&self) {
        self.plan.invalidate();
    }

    /// Executor the matrix lives on.
    pub fn executor(&self) -> &Executor {
        self.values.executor()
    }

    /// Clones onto another executor. The copy starts with an empty plan
    /// cache (plans are per-executor).
    pub fn clone_to(&self, exec: &Executor) -> Self {
        Csr {
            size: self.size,
            row_ptrs: self.row_ptrs.copy_to(exec),
            col_idxs: self.col_idxs.copy_to(exec),
            values: self.values.copy_to(exec),
            strategy: self.strategy,
            plan: PlanCache::new(),
        }
    }

    /// Densifies (for tests and the dense direct solver).
    pub fn to_dense(&self) -> Dense<V> {
        let mut out = Dense::zeros(self.executor(), self.size);
        let rp = self.row_ptrs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        for r in 0..self.size.rows {
            for k in rp[r].to_usize()..rp[r + 1].to_usize() {
                out.set(r, ci[k].to_usize(), vals[k]);
            }
        }
        out
    }

    /// Extracts the diagonal (missing diagonal entries read as zero).
    pub fn extract_diagonal(&self) -> Vec<V> {
        let rp = self.row_ptrs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        (0..self.size.rows.min(self.size.cols))
            .map(|r| {
                let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
                match ci[lo..hi].binary_search(&I::from_usize(r)) {
                    Ok(pos) => vals[lo + pos],
                    Err(_) => V::zero(),
                }
            })
            .collect()
    }

    /// Transposed copy (explicit CSC-to-CSR conversion).
    pub fn transpose(&self) -> Csr<V, I> {
        let (m, n) = (self.size.rows, self.size.cols);
        let rp = self.row_ptrs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        let nnz = self.nnz();
        let mut counts = vec![0usize; n + 1];
        for &c in ci {
            counts[c.to_usize() + 1] += 1;
        }
        for j in 0..n {
            counts[j + 1] += counts[j];
        }
        let mut t_rows = vec![I::zero(); n + 1];
        for (j, &c) in counts.iter().enumerate() {
            t_rows[j] = I::from_usize(c);
        }
        let mut t_cols = vec![I::zero(); nnz];
        let mut t_vals = vec![V::zero(); nnz];
        let mut cursor = counts;
        for r in 0..m {
            for k in rp[r].to_usize()..rp[r + 1].to_usize() {
                let c = ci[k].to_usize();
                let dst = cursor[c];
                cursor[c] += 1;
                t_cols[dst] = I::from_usize(r);
                t_vals[dst] = vals[k];
            }
        }
        Csr::from_raw(self.executor(), self.size.transposed(), t_rows, t_cols, t_vals)
            // lint: allow(panic): counting sort of a valid CSR yields
            // monotone row pointers and in-bounds, sorted columns.
            .expect("transpose of valid CSR is valid")
    }

    /// Row chunk boundaries according to the active strategy (with `Auto`
    /// resolved from the row statistics).
    ///
    /// Exposed so the cost model, the facade, and the ablation benches can
    /// inspect the partition a kernel will use. This is the *uncached* path
    /// for arbitrary chunk counts; applies go through [`Csr::plan`]. For
    /// [`SpmvStrategy::MergePath`] — whose segments are not row-aligned —
    /// the reported bounds are the deduplicated row spans of the segments.
    pub fn chunk_bounds(&self, max_chunks: usize) -> Vec<usize> {
        let m = self.size.rows;
        let rp = self.row_ptrs.as_slice();
        let stats = RowStats::inspect(m, rp);
        match plan::resolve_strategy(self.strategy, &stats) {
            ResolvedStrategy::Classical => uniform_bounds(m, max_chunks),
            ResolvedStrategy::LoadBalance => plan::load_balance_bounds(m, rp, max_chunks),
            ResolvedStrategy::MergePath => {
                let segs = plan::merge_segments(m, rp, max_chunks);
                if segs.is_empty() {
                    return uniform_bounds(m, max_chunks);
                }
                let mut bounds = vec![0usize];
                let mut last = 0usize;
                for s in segs.iter().skip(1) {
                    if s.row_first > last {
                        bounds.push(s.row_first);
                        last = s.row_first;
                    }
                }
                bounds.push(m);
                bounds
            }
        }
    }

    /// Work description of an SpMV under the given row partition.
    pub fn spmv_work(&self, bounds: &[usize]) -> Vec<ChunkWork> {
        let rp = self.row_ptrs.as_slice();
        bounds
            .windows(2)
            .map(|w| {
                let rows = (w[1] - w[0]) as f64;
                let nnz = (rp[w[1]].to_usize() - rp[w[0]].to_usize()) as f64;
                plan::spmv_chunk_work(rows, nnz, V::BYTES, I::BYTES)
            })
            .collect()
    }

    /// Row-parallel kernel (Classical and LoadBalance): each chunk owns a
    /// contiguous row block, so every output element is written by exactly
    /// one lane.
    fn spmv_rows(&self, plan: &SpmvPlan, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) {
        let k = b.size().cols;
        let bounds = &plan.row_bounds;
        let rp = self.row_ptrs.as_slice();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        let bv = b.as_slice();
        let exec = self.executor().clone();
        let elem_bounds: Vec<usize> = bounds.iter().map(|&r| r * k).collect();
        parallel_chunks(&exec, x.as_mut_slice(), &elem_bounds, |chunk, xs| {
            let row0 = bounds[chunk];
            if k == 1 {
                for (local, out) in xs.iter_mut().enumerate() {
                    let r = row0 + local;
                    let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
                    let prod = V::from_f64(dot_span(&vals[lo..hi], &ci[lo..hi], bv));
                    *out = if beta == V::zero() {
                        alpha * prod
                    } else {
                        alpha * prod + beta * *out
                    };
                }
            } else {
                for (local, xrow) in xs.chunks_mut(k).enumerate() {
                    let r = row0 + local;
                    let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
                    for (c, out) in xrow.iter_mut().enumerate() {
                        let mut acc = 0.0f64;
                        for idx in lo..hi {
                            acc += vals[idx].to_f64() * bv[ci[idx].to_usize() * k + c].to_f64();
                        }
                        let prod = V::from_f64(acc);
                        *out = if beta == V::zero() {
                            alpha * prod
                        } else {
                            alpha * prod + beta * *out
                        };
                    }
                }
            }
        });
    }

    /// Merge-path kernel: each segment owns a contiguous nonzero range.
    /// Rows interior to a segment are written directly (exclusive
    /// ownership); the segment's first and last rows — which a boundary may
    /// split — accumulate into per-segment scratch that a serial pass merges
    /// in segment order, keeping results deterministic for a given plan.
    fn spmv_merge(&self, plan: &SpmvPlan, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) {
        let k = b.size().cols;
        let segments = &plan.segments;
        let rp = self.row_ptrs.as_slice();
        if self.executor().sanitizer().is_enabled() {
            if let Err(v) = verify_merge_segments(rp, segments) {
                report_merge_violation(&v);
            }
        }
        // Prescale so rows no segment touches (empty rows) need no writes,
        // and segment lanes can blindly accumulate.
        if beta == V::zero() {
            x.fill(V::zero());
        } else if beta != V::one() {
            x.scale(beta);
        }
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        let bv = b.as_slice();
        let exec = self.executor().clone();

        // Scratch layout: per segment, k slots for its first row followed by
        // k slots for its last row (unused when the segment has one row).
        let segs = segments.len();
        let mut scratch = vec![0.0f64; segs * 2 * k];
        let scratch_bounds: Vec<usize> = (0..=segs).map(|s| s * 2 * k).collect();
        let xs_out = SharedOut(x.as_mut_slice().as_mut_ptr());
        parallel_chunks(&exec, scratch.as_mut_slice(), &scratch_bounds, |s, sc| {
            let seg = segments[s];
            let mut idx = seg.nnz_start;
            let mut r = seg.row_first;
            while idx < seg.nnz_end {
                // Skip rows already finished (and empty rows in between).
                while rp[r + 1].to_usize() <= idx {
                    r += 1;
                }
                let row_end = rp[r + 1].to_usize().min(seg.nnz_end);
                if k == 1 {
                    let acc = dot_span(&vals[idx..row_end], &ci[idx..row_end], bv);
                    if r == seg.row_first {
                        sc[0] = acc;
                    } else if r == seg.row_last {
                        sc[1] = acc;
                    } else {
                        // SAFETY: `r` is interior to this segment, so every
                        // nonzero of row `r` lies in this segment's range
                        // and no other lane touches this output.
                        unsafe {
                            *xs_out.slot(r) += alpha * V::from_f64(acc);
                        }
                    }
                } else {
                    let mut acc = vec![0.0f64; k];
                    for e in idx..row_end {
                        let col = ci[e].to_usize();
                        let v = vals[e].to_f64();
                        for (c, a) in acc.iter_mut().enumerate() {
                            *a += v * bv[col * k + c].to_f64();
                        }
                    }
                    if r == seg.row_first {
                        sc[..k].copy_from_slice(&acc);
                    } else if r == seg.row_last {
                        sc[k..].copy_from_slice(&acc);
                    } else {
                        for (c, a) in acc.into_iter().enumerate() {
                            // SAFETY: disjoint interior-row ownership argued
                            // in the k == 1 branch above.
                            unsafe {
                                *xs_out.slot(r * k + c) += alpha * V::from_f64(a);
                            }
                        }
                    }
                }
                idx = row_end;
            }
        });
        // Merge boundary rows serially in segment order: a row split across
        // segments receives its pieces in a fixed sequence.
        let xs = x.as_mut_slice();
        for (s, seg) in segments.iter().enumerate() {
            let sc = &scratch[s * 2 * k..(s + 1) * 2 * k];
            for c in 0..k {
                xs[seg.row_first * k + c] += alpha * V::from_f64(sc[c]);
            }
            if seg.row_last != seg.row_first {
                for c in 0..k {
                    xs[seg.row_last * k + c] += alpha * V::from_f64(sc[k + c]);
                }
            }
        }
    }

    fn spmv_into(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        if !self.executor().same_memory_space(b.executor()) {
            return Err(GkoError::ExecutorMismatch {
                left: self.executor().name().to_owned(),
                right: b.executor().name().to_owned(),
            });
        }
        let _timer = OpTimer::new(self.executor(), "csr");
        let plan = self.plan();
        match plan.resolved {
            ResolvedStrategy::Classical | ResolvedStrategy::LoadBalance => {
                self.spmv_rows(&plan, alpha, b, beta, x)
            }
            ResolvedStrategy::MergePath => self.spmv_merge(&plan, alpha, b, beta, x),
        }
        self.executor().launch(&plan.work);
        Ok(())
    }
}

impl<V: Value, I: Index> LinOp<V> for Csr<V, I> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        self.values.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.spmv_into(V::one(), b, V::zero(), x)
    }

    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        self.spmv_into(alpha, b, beta, x)
    }

    fn op_name(&self) -> &'static str {
        "csr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::reference()
    }

    /// 3x3 test matrix:
    /// [ 2 0 1 ]
    /// [ 0 3 0 ]
    /// [ 4 5 6 ]
    fn sample(e: &Executor) -> Csr<f64, i32> {
        Csr::from_raw(
            e,
            Dim2::square(3),
            vec![0, 2, 3, 6],
            vec![0, 2, 1, 0, 1, 2],
            vec![2.0, 1.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_malformed_input() {
        let e = exec();
        // wrong row_ptrs length
        assert!(Csr::<f64, i32>::from_raw(&e, Dim2::square(2), vec![0, 1], vec![0], vec![1.0])
            .is_err());
        // col out of range
        assert!(Csr::<f64, i32>::from_raw(
            &e,
            Dim2::square(2),
            vec![0, 1, 1],
            vec![5],
            vec![1.0]
        )
        .is_err());
        // unsorted columns in a row
        assert!(Csr::<f64, i32>::from_raw(
            &e,
            Dim2::square(2),
            vec![0, 2, 2],
            vec![1, 0],
            vec![1.0, 2.0]
        )
        .is_err());
        // nnz mismatch
        assert!(Csr::<f64, i32>::from_raw(
            &e,
            Dim2::square(2),
            vec![0, 1, 3],
            vec![0, 1],
            vec![1.0, 2.0]
        )
        .is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let e = exec();
        let a = sample(&e);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(3, 1));
        a.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![5.0, 6.0, 32.0]);

        let mut xd = Dense::zeros(&e, Dim2::new(3, 1));
        a.to_dense().apply(&b, &mut xd).unwrap();
        assert_eq!(xd.to_host_vec(), x.to_host_vec());
    }

    #[test]
    fn advanced_spmv_applies_alpha_beta() {
        let e = exec();
        let a = sample(&e);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::from_rows(&e, &[[1.0f64], [1.0], [1.0]]);
        a.apply_advanced(2.0, &b, -1.0, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![9.0, 11.0, 63.0]);
    }

    #[test]
    fn strategies_agree_numerically() {
        let e = exec();
        let a = sample(&e).with_strategy(SpmvStrategy::Classical);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x1 = Dense::zeros(&e, Dim2::new(3, 1));
        a.apply(&b, &mut x1).unwrap();
        let a2 = sample(&e).with_strategy(SpmvStrategy::LoadBalance);
        let mut x2 = Dense::zeros(&e, Dim2::new(3, 1));
        a2.apply(&b, &mut x2).unwrap();
        assert_eq!(x1.to_host_vec(), x2.to_host_vec());
    }

    #[test]
    fn load_balance_bounds_balance_nnz() {
        let e = exec();
        // One heavy row (8 nnz) and 8 light rows (1 nnz each).
        let mut triplets = vec![];
        for j in 0..8 {
            triplets.push((0usize, j, 1.0f64));
        }
        for i in 1..9 {
            triplets.push((i, 0, 1.0));
        }
        let a = Csr::<f64, i32>::from_triplets(&e, Dim2::new(9, 9), &triplets).unwrap();
        let bounds = a.chunk_bounds(4);
        let rp = a.row_ptrs();
        let nnz_per_chunk: Vec<usize> = bounds
            .windows(2)
            .map(|w| rp[w[1]].to_usize() - rp[w[0]].to_usize())
            .collect();
        // The heavy row is alone in its chunk (8 nnz), the rest spread out.
        assert_eq!(nnz_per_chunk.iter().sum::<usize>(), 16);
        assert!(nnz_per_chunk[0] >= 8, "heavy row isolated: {nnz_per_chunk:?}");

        let classical = a.with_strategy(SpmvStrategy::Classical).chunk_bounds(4);
        assert_ne!(bounds, classical);
    }

    #[test]
    fn triplets_sum_duplicates() {
        let e = exec();
        let a = Csr::<f64, i32>::from_triplets(
            &e,
            Dim2::square(2),
            &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)],
        )
        .unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_dense().at(0, 0), 3.0);
    }

    #[test]
    fn triplets_out_of_range_rejected() {
        let e = exec();
        assert!(
            Csr::<f64, i32>::from_triplets(&e, Dim2::square(2), &[(2, 0, 1.0)]).is_err()
        );
    }

    #[test]
    fn diagonal_extraction() {
        let e = exec();
        let a = sample(&e);
        assert_eq!(a.extract_diagonal(), vec![2.0, 3.0, 6.0]);
        // missing diagonal reads as zero
        let b = Csr::<f64, i32>::from_triplets(&e, Dim2::square(2), &[(0, 1, 7.0)]).unwrap();
        assert_eq!(b.extract_diagonal(), vec![0.0, 0.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let e = exec();
        let a = sample(&e);
        let t = a.transpose();
        assert_eq!(t.to_dense().at(0, 2), 4.0);
        assert_eq!(t.to_dense().at(2, 0), 1.0);
        let tt = t.transpose();
        assert_eq!(tt.to_dense().to_host_vec(), a.to_dense().to_host_vec());
    }

    #[test]
    fn from_dense_roundtrip() {
        let e = exec();
        let d = Dense::from_rows(&e, &[[0.0f64, 1.5], [2.5, 0.0]]);
        let a = Csr::<f64, i32>::from_dense(&d);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_dense().to_host_vec(), d.to_host_vec());
    }

    #[test]
    fn int64_indices_work() {
        let e = exec();
        let a = Csr::<f32, i64>::from_triplets(
            &e,
            Dim2::square(2),
            &[(0, 0, 2.0), (1, 1, 3.0)],
        )
        .unwrap();
        let b = Dense::from_rows(&e, &[[1.0f32], [1.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(2, 1));
        a.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![2.0, 3.0]);
    }

    #[test]
    fn load_balance_bounds_have_no_duplicates_on_arrow_head() {
        let e = exec();
        // Arrow-head: full last row + full last column + diagonal. Most nnz
        // sit in the final row, so many balance targets resolve to the same
        // boundary row; these used to be emitted as duplicate bounds
        // (= empty chunks inflating modeled chunk overhead).
        let n = 64;
        let mut triplets = vec![];
        for i in 0..n - 1 {
            triplets.push((i, i, 2.0f64));
            triplets.push((i, n - 1, 1.0));
            triplets.push((n - 1, i, 1.0));
        }
        triplets.push((n - 1, n - 1, 2.0));
        let a = Csr::<f64, i32>::from_triplets(&e, Dim2::square(n), &triplets).unwrap();
        for chunks in [2, 4, 16, 64, 1000] {
            let bounds = a.chunk_bounds(chunks);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), n);
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "strictly increasing bounds (chunks={chunks}): {bounds:?}"
            );
            assert!(bounds.len() <= chunks + 1);
        }
        // The result is still correct under the deduped partition.
        let b = Dense::vector(&e, n, 1.0f64);
        let mut x = Dense::zeros(&e, Dim2::new(n, 1));
        a.apply(&b, &mut x).unwrap();
        let xs = x.to_host_vec();
        assert_eq!(xs[0], 3.0, "diag + last column");
        assert_eq!(xs[n - 1], (n - 1) as f64 + 2.0, "dense last row");
    }

    #[test]
    fn spmv_work_accounts_all_nnz() {
        let e = exec();
        let a = sample(&e);
        let bounds = a.chunk_bounds(2);
        let work = a.spmv_work(&bounds);
        let flops: f64 = work.iter().map(|w| w.flops).sum();
        assert_eq!(flops, 2.0 * a.nnz() as f64);
    }

    #[test]
    fn plan_is_cached_and_reused_across_applies() {
        let e = Executor::omp(4);
        let a = sample(&e);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(3, 1));
        for _ in 0..5 {
            a.apply(&b, &mut x).unwrap();
        }
        let stats = a.plan_stats();
        assert_eq!(stats.builds, 1, "inspector ran once: {stats:?}");
        assert_eq!(stats.hits, 4, "remaining applies reused the plan");
        // Explicit invalidation forces a rebuild on the next apply.
        a.invalidate_plan();
        a.apply(&b, &mut x).unwrap();
        assert_eq!(a.plan_stats().builds, 2);
    }

    #[test]
    fn plan_invalidated_on_value_mutation() {
        let e = exec();
        let mut a = sample(&e);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(3, 1));
        a.apply(&b, &mut x).unwrap();
        assert_eq!(a.plan_stats().builds, 1);
        a.values_mut()[0] = 10.0;
        a.apply(&b, &mut x).unwrap();
        assert_eq!(a.plan_stats().builds, 2, "mutation rebuilt the plan");
        assert_eq!(x.to_host_vec(), vec![13.0, 6.0, 32.0]);
    }

    #[test]
    fn clone_does_not_share_plan_cache() {
        let e = exec();
        let a = sample(&e);
        let b = Dense::from_rows(&e, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::zeros(&e, Dim2::new(3, 1));
        a.apply(&b, &mut x).unwrap();
        assert_eq!(a.plan_stats().builds, 1);
        // The clone starts with an empty cache (no stale shared plan) and
        // builds its own on first apply, leaving the original untouched.
        let c = a.clone();
        assert_eq!(c.plan_stats(), PlanCacheStats::default());
        c.apply(&b, &mut x).unwrap();
        assert_eq!(c.plan_stats().builds, 1);
        assert_eq!(a.plan_stats().builds, 1);
    }

    #[test]
    fn auto_default_resolves_deterministically() {
        let e = exec();
        let a = sample(&e);
        assert_eq!(a.strategy(), SpmvStrategy::Auto, "Auto is the default");
        let r1 = a.plan().resolved;
        for _ in 0..5 {
            assert_eq!(a.plan().resolved, r1);
        }
        // An independently built copy of the same structure resolves the
        // same way: resolution is purely structural.
        assert_eq!(sample(&e).plan().resolved, r1);
    }

    /// Degenerate shapes where merge-path segment handling has edge cases:
    /// interleaved empty rows, a single dense row, a column vector, and a
    /// single-entry matrix. Integer-valued data keeps every partial-sum
    /// order bitwise exact, so merge-path must equal classical exactly.
    #[test]
    fn merge_path_matches_classical_on_degenerate_shapes() {
        type Case = (Dim2, Vec<(usize, usize, f64)>);
        for e in [Executor::reference(), Executor::omp(7)] {
            let cases: Vec<Case> = vec![
                // Empty rows around sparse ones.
                (
                    Dim2::new(6, 4),
                    vec![(1, 0, 2.0), (1, 3, 1.0), (4, 2, 3.0)],
                ),
                // Single dense row (1 x N).
                (
                    Dim2::new(1, 40),
                    (0..40).map(|j| (0usize, j, (j % 5) as f64 - 2.0)).collect(),
                ),
                // Column vector (N x 1).
                (
                    Dim2::new(17, 1),
                    (0..17).map(|i| (i, 0usize, i as f64)).collect(),
                ),
                // Single entry.
                (Dim2::new(3, 3), vec![(2, 2, 5.0)]),
            ];
            for (dim, triplets) in cases {
                let merge = Csr::<f64, i32>::from_triplets(&e, dim, &triplets)
                    .unwrap()
                    .with_strategy(SpmvStrategy::MergePath);
                let classical = Csr::<f64, i32>::from_triplets(&e, dim, &triplets)
                    .unwrap()
                    .with_strategy(SpmvStrategy::Classical);
                let bv: Vec<f64> = (0..dim.cols * 2).map(|t| ((t % 7) as f64) - 3.0).collect();
                let b = Dense::from_vec(&e, Dim2::new(dim.cols, 2), bv).unwrap();
                let xv: Vec<f64> = (0..dim.rows * 2).map(|t| t as f64).collect();
                let mut xm = Dense::from_vec(&e, Dim2::new(dim.rows, 2), xv).unwrap();
                let mut xc = xm.clone();
                merge.apply_advanced(2.0, &b, -1.0, &mut xm).unwrap();
                classical.apply_advanced(2.0, &b, -1.0, &mut xc).unwrap();
                assert_eq!(
                    xm.to_host_vec(),
                    xc.to_host_vec(),
                    "dim {dim:?} on {}",
                    e.name()
                );
            }
        }
    }

    #[test]
    fn merge_path_splits_dense_row_and_verifies_under_sanitizer() {
        let e = Executor::omp(8);
        e.enable_sanitizer();
        // Skewed: one row holds most nonzeros, so Auto resolves to
        // merge-path and the dense row is split across segments.
        let n = 64;
        let mut triplets: Vec<(usize, usize, f64)> = (0..n).map(|j| (3usize, j, 1.0)).collect();
        for i in 0..n {
            if i != 3 {
                triplets.push((i, i, 2.0));
            }
        }
        let a = Csr::<f64, i32>::from_triplets(&e, Dim2::square(n), &triplets).unwrap();
        let plan = a.plan();
        assert_eq!(plan.resolved, ResolvedStrategy::MergePath);
        assert!(
            plan.segments.iter().filter(|s| s.row_first <= 3 && 3 <= s.row_last).count() > 1,
            "dense row split across segments"
        );
        let b = Dense::vector(&e, n, 1.0f64);
        let mut x = Dense::zeros(&e, Dim2::new(n, 1));
        // Sanitizer-on apply validates the segment partition and the pool's
        // claim log; any violation panics.
        a.apply(&b, &mut x).unwrap();
        let xs = x.to_host_vec();
        assert_eq!(xs[3], n as f64, "dense row sums all columns");
        assert_eq!(xs[0], 2.0);
        assert_eq!(xs[n - 1], 2.0);
    }
}
