//! Matrix formats.
//!
//! The paper benchmarks CSR and COO (§6); Ginkgo additionally provides ELL
//! and sliced-ELL formats which we reproduce for completeness and for the
//! format-choice ablation benches, plus the 2-D convolution operator the
//! paper's outlook names as future work. All formats implement
//! [`LinOp`](crate::linop::LinOp) (their `apply` is an SpMV) and conversions
//! to/from [`Dense`](dense::Dense) and each other.

pub mod batch;
pub mod conv;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod diagonal;
pub mod ell;
pub mod hybrid;
pub mod plan;
pub mod sellp;

pub use batch::{BatchCsr, BatchDense};
pub use conv::Conv2d;
pub use coo::Coo;
pub use csr::{Csr, SpmvStrategy};
pub use plan::{MergeSegment, PlanCacheStats, ResolvedStrategy, RowStats, SpmvPlan};
pub use dense::Dense;
pub use diagonal::Diagonal;
pub use ell::Ell;
pub use hybrid::Hybrid;
pub use sellp::Sellp;
