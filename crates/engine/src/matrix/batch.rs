//! Batched formats: many independent small systems, one pool drain per op.
//!
//! The north-star workload is not one giant system but huge numbers of
//! independent small ones solved per call (Ginkgo's batched direction). A
//! loop of single applies pays the executor's kernel-launch overhead once
//! *per system per kernel*; the batched formats here amortize it to once
//! per kernel by draining the [`WorkerPool`](crate::executor::pool) exactly
//! once per batch apply.
//!
//! Two formats:
//!
//! * [`BatchDense`] — `num_systems` dense blocks of identical shape in one
//!   stride-aware slab, with per-system BLAS kernels (axpy, dots, norms)
//!   that accept a per-system coefficient slice and an activity mask so
//!   batched solvers can stop charging flops for converged systems.
//! * [`BatchCsr`] — `num_systems` CSR systems, either **shared sparsity**
//!   (one structure, per-system value slabs, ONE cached [`SpmvPlan`] reused
//!   across all systems and all applies) or **per-system sparsity**
//!   (independent `Csr` objects batched only for dispatch).
//!
//! Chunking policy for the batched SpMV: when the batch has at least
//! `2 * workers` systems, a chunk is a run of whole systems (small-system
//! regime); otherwise each system is split by its SpMV plan's row partition
//! (large-system regime). Either way the pool is drained once.

use crate::base::array::Array;
use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::pool::{parallel_chunks, uniform_bounds};
use crate::executor::Executor;
use crate::log::OpTimer;
use crate::matrix::csr::{dot_span, Csr, SpmvStrategy};
use crate::matrix::plan::{self, PlanCache, PlanCacheStats, SpmvPlan};
use pygko_sim::ChunkWork;
use std::sync::Arc;

/// True when system `s` participates in the current kernel.
#[inline]
fn is_active(active: Option<&[bool]>, s: usize) -> bool {
    active.is_none_or(|m| m[s])
}

/// Validates an activity mask's length against the batch size.
fn check_mask(active: Option<&[bool]>, num_systems: usize, op: &'static str) -> Result<()> {
    if let Some(mask) = active {
        if mask.len() != num_systems {
            return Err(GkoError::BadInput(format!(
                "{op}: activity mask covers {} systems but the batch has {num_systems}",
                mask.len()
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// BatchDense
// ---------------------------------------------------------------------------

/// `num_systems` equally-shaped dense blocks in one stride-aware slab.
///
/// System `s` occupies `values[s * stride .. s * stride + size.count()]` in
/// row-major order; `stride >= size.count()` leaves optional padding between
/// systems. All kernels chunk at whole-system granularity so one
/// [`parallel_chunks`] drain covers every system, and masked kernels skip
/// inactive systems inside the chunk closure while charging the cost model
/// only for active ones.
#[derive(Debug, Clone)]
pub struct BatchDense<V: Value> {
    num_systems: usize,
    size: Dim2,
    stride: usize,
    values: Array<V>,
}

impl<V: Value> BatchDense<V> {
    /// Allocates a zero-initialized batch with dense packing (no padding).
    pub fn zeros(exec: &Executor, num_systems: usize, size: Dim2) -> Self {
        BatchDense {
            num_systems,
            size,
            stride: size.count(),
            values: Array::new(exec, num_systems * size.count()),
        }
    }

    /// Allocates with an explicit per-system stride (`>= size.count()`).
    pub fn with_stride(
        exec: &Executor,
        num_systems: usize,
        size: Dim2,
        stride: usize,
    ) -> Result<Self> {
        if stride < size.count() {
            return Err(GkoError::BadInput(format!(
                "batch stride {stride} is smaller than the system size {} ({} entries)",
                size,
                size.count()
            )));
        }
        Ok(BatchDense {
            num_systems,
            size,
            stride,
            values: Array::new(exec, num_systems * stride),
        })
    }

    /// Builds a densely packed batch from one value vector per system.
    pub fn from_systems(exec: &Executor, size: Dim2, systems: &[Vec<V>]) -> Result<Self> {
        if systems.is_empty() {
            return Err(GkoError::BadInput(
                "a batch needs at least one system".to_owned(),
            ));
        }
        let count = size.count();
        let mut slab = Vec::with_capacity(systems.len() * count);
        for (s, vals) in systems.iter().enumerate() {
            if vals.len() != count {
                return Err(GkoError::BadInput(format!(
                    "system {s} holds {} values but the shape {size} needs {count}",
                    vals.len()
                )));
            }
            slab.extend_from_slice(vals);
        }
        Ok(BatchDense {
            num_systems: systems.len(),
            size,
            stride: count,
            values: Array::from_vec(exec, slab),
        })
    }

    /// Number of systems in the batch.
    pub fn num_systems(&self) -> usize {
        self.num_systems
    }

    /// Shape of each system.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Slab distance between consecutive systems, in elements.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Executor the slab lives on.
    pub fn executor(&self) -> &Executor {
        self.values.executor()
    }

    /// Read access to system `s` (row-major, padding excluded).
    pub fn system(&self, s: usize) -> &[V] {
        let lo = s * self.stride;
        &self.values.as_slice()[lo..lo + self.size.count()]
    }

    /// Write access to system `s`.
    pub fn system_mut(&mut self, s: usize) -> &mut [V] {
        let lo = s * self.stride;
        let count = self.size.count();
        &mut self.values.as_mut_slice()[lo..lo + count]
    }

    /// The whole slab, padding included.
    pub fn as_slice(&self) -> &[V] {
        self.values.as_slice()
    }

    /// Mutable access to the whole slab, padding included.
    pub fn as_mut_slice(&mut self) -> &mut [V] {
        self.values.as_mut_slice()
    }

    /// System-aligned chunk partition: `(system bounds, element bounds)`.
    fn system_bounds(&self) -> (Vec<usize>, Vec<usize>) {
        let spec = self.executor().spec();
        let sys_bounds = uniform_bounds(self.num_systems, spec.workers * 2);
        let elem_bounds = sys_bounds.iter().map(|&s| s * self.stride).collect();
        (sys_bounds, elem_bounds)
    }

    /// Cost-model work for a masked streaming kernel: only active systems
    /// move bytes or spend flops.
    fn masked_work(
        &self,
        sys_bounds: &[usize],
        active: Option<&[bool]>,
        arrays: usize,
        flops_per_item: f64,
    ) -> Vec<ChunkWork> {
        let count = self.size.count() as f64;
        sys_bounds
            .windows(2)
            .map(|w| {
                let act = (w[0]..w[1]).filter(|&s| is_active(active, s)).count() as f64;
                ChunkWork::new(
                    act * count * (arrays * V::BYTES) as f64,
                    0.0,
                    act * count * flops_per_item,
                )
            })
            .collect()
    }

    fn check_compatible(&self, other: &BatchDense<V>, op: &'static str) -> Result<()> {
        if self.num_systems != other.num_systems {
            return Err(GkoError::BadInput(format!(
                "{op}: batches hold {} vs {} systems",
                self.num_systems, other.num_systems
            )));
        }
        if self.size != other.size {
            return Err(GkoError::DimensionMismatch {
                op,
                expected: self.size,
                actual: other.size,
            });
        }
        self.values.check_same_executor(&other.values)
    }

    fn check_coeffs(&self, coeffs: &[f64], op: &'static str) -> Result<()> {
        if coeffs.len() != self.num_systems {
            return Err(GkoError::BadInput(format!(
                "{op}: {} coefficients for {} systems",
                coeffs.len(),
                self.num_systems
            )));
        }
        Ok(())
    }

    /// Fills every system (and padding) with a constant.
    pub fn fill(&mut self, value: V) {
        let _timer = OpTimer::new(self.executor(), "batch_dense::fill");
        let exec = self.executor().clone();
        let n = self.values.len();
        let bounds = uniform_bounds(n, exec.spec().workers * 2);
        let work: Vec<ChunkWork> = bounds
            .windows(2)
            .map(|w| ChunkWork::new(((w[1] - w[0]) * V::BYTES) as f64, 0.0, 0.0))
            .collect();
        parallel_chunks(&exec, self.values.as_mut_slice(), &bounds, |_i, s| {
            for v in s {
                *v = value;
            }
        });
        exec.launch(&work);
    }

    /// Copies every system from `other` (strides may differ).
    pub fn copy_from(&mut self, other: &BatchDense<V>) -> Result<()> {
        self.check_compatible(other, "batch copy")?;
        let _timer = OpTimer::new(self.executor(), "batch_dense::copy");
        let exec = self.executor().clone();
        let (sys_bounds, elem_bounds) = self.system_bounds();
        let work = self.masked_work(&sys_bounds, None, 2, 0.0);
        let (stride, o_stride, count) = (self.stride, other.stride, self.size.count());
        let src = other.values.as_slice();
        parallel_chunks(&exec, self.values.as_mut_slice(), &elem_bounds, |ci, out| {
            let sys_lo = sys_bounds[ci];
            for s in sys_lo..sys_bounds[ci + 1] {
                let dst = &mut out[(s - sys_lo) * stride..(s - sys_lo) * stride + count];
                dst.copy_from_slice(&src[s * o_stride..s * o_stride + count]);
            }
        });
        exec.launch(&work);
        Ok(())
    }

    /// Per-system axpy: `self[s] += alpha[s] * other[s]` for active systems.
    pub fn axpy(
        &mut self,
        alpha: &[f64],
        other: &BatchDense<V>,
        active: Option<&[bool]>,
    ) -> Result<()> {
        self.check_compatible(other, "batch axpy")?;
        self.check_coeffs(alpha, "batch axpy")?;
        check_mask(active, self.num_systems, "batch axpy")?;
        let _timer = OpTimer::new(self.executor(), "batch_dense::axpy");
        let exec = self.executor().clone();
        let (sys_bounds, elem_bounds) = self.system_bounds();
        let work = self.masked_work(&sys_bounds, active, 3, 2.0);
        let (stride, o_stride, count) = (self.stride, other.stride, self.size.count());
        let src = other.values.as_slice();
        parallel_chunks(&exec, self.values.as_mut_slice(), &elem_bounds, |ci, out| {
            let sys_lo = sys_bounds[ci];
            for s in sys_lo..sys_bounds[ci + 1] {
                if !is_active(active, s) {
                    continue;
                }
                let a = V::from_f64(alpha[s]);
                let dst = &mut out[(s - sys_lo) * stride..(s - sys_lo) * stride + count];
                let sv = &src[s * o_stride..s * o_stride + count];
                for (d, &v) in dst.iter_mut().zip(sv) {
                    *d += a * v;
                }
            }
        });
        exec.launch(&work);
        Ok(())
    }

    /// Per-system `self[s] = other[s] + beta[s] * self[s]` for active
    /// systems (the CG direction update `p = z + beta p`).
    pub fn scale_add(
        &mut self,
        other: &BatchDense<V>,
        beta: &[f64],
        active: Option<&[bool]>,
    ) -> Result<()> {
        self.check_compatible(other, "batch scale_add")?;
        self.check_coeffs(beta, "batch scale_add")?;
        check_mask(active, self.num_systems, "batch scale_add")?;
        let _timer = OpTimer::new(self.executor(), "batch_dense::scale_add");
        let exec = self.executor().clone();
        let (sys_bounds, elem_bounds) = self.system_bounds();
        let work = self.masked_work(&sys_bounds, active, 3, 2.0);
        let (stride, o_stride, count) = (self.stride, other.stride, self.size.count());
        let src = other.values.as_slice();
        parallel_chunks(&exec, self.values.as_mut_slice(), &elem_bounds, |ci, out| {
            let sys_lo = sys_bounds[ci];
            for s in sys_lo..sys_bounds[ci + 1] {
                if !is_active(active, s) {
                    continue;
                }
                let b = V::from_f64(beta[s]);
                let dst = &mut out[(s - sys_lo) * stride..(s - sys_lo) * stride + count];
                let sv = &src[s * o_stride..s * o_stride + count];
                for (d, &v) in dst.iter_mut().zip(sv) {
                    *d = v + b * *d;
                }
            }
        });
        exec.launch(&work);
        Ok(())
    }

    /// Per-system Euclidean norms into `out[s]` for active systems
    /// (inactive slots are left untouched). Accumulates in `f64` per system
    /// in element order, so results are deterministic.
    pub fn norms2(&self, active: Option<&[bool]>, out: &mut [f64]) -> Result<()> {
        self.check_coeffs(out, "batch norms2")?;
        check_mask(active, self.num_systems, "batch norms2")?;
        let _timer = OpTimer::new(self.executor(), "batch_dense::norms2");
        let exec = self.executor().clone();
        let (sys_bounds, _) = self.system_bounds();
        let work = self.masked_work(&sys_bounds, active, 1, 2.0);
        let (stride, count) = (self.stride, self.size.count());
        let vals = self.values.as_slice();
        parallel_chunks(&exec, out, &sys_bounds, |ci, slots| {
            let sys_lo = sys_bounds[ci];
            for (j, slot) in slots.iter_mut().enumerate() {
                let s = sys_lo + j;
                if !is_active(active, s) {
                    continue;
                }
                let mut acc = 0.0f64;
                for &v in &vals[s * stride..s * stride + count] {
                    let f = v.to_f64();
                    acc += f * f;
                }
                *slot = acc.sqrt();
            }
        });
        exec.launch(&work);
        Ok(())
    }

    /// Per-system dot products `out[s] = self[s] · other[s]` for active
    /// systems (inactive slots are left untouched).
    pub fn dots(
        &self,
        other: &BatchDense<V>,
        active: Option<&[bool]>,
        out: &mut [f64],
    ) -> Result<()> {
        self.check_compatible(other, "batch dots")?;
        self.check_coeffs(out, "batch dots")?;
        check_mask(active, self.num_systems, "batch dots")?;
        let _timer = OpTimer::new(self.executor(), "batch_dense::dots");
        let exec = self.executor().clone();
        let (sys_bounds, _) = self.system_bounds();
        let work = self.masked_work(&sys_bounds, active, 2, 2.0);
        let (stride, o_stride, count) = (self.stride, other.stride, self.size.count());
        let a = self.values.as_slice();
        let b = other.values.as_slice();
        parallel_chunks(&exec, out, &sys_bounds, |ci, slots| {
            let sys_lo = sys_bounds[ci];
            for (j, slot) in slots.iter_mut().enumerate() {
                let s = sys_lo + j;
                if !is_active(active, s) {
                    continue;
                }
                let av = &a[s * stride..s * stride + count];
                let bv = &b[s * o_stride..s * o_stride + count];
                let mut acc = 0.0f64;
                for (&x, &y) in av.iter().zip(bv) {
                    acc += x.to_f64() * y.to_f64();
                }
                *slot = acc;
            }
        });
        exec.launch(&work);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// BatchCsr
// ---------------------------------------------------------------------------

/// Sparsity storage of a [`BatchCsr`].
#[derive(Debug)]
enum Sparsity<V: Value, I: Index> {
    /// One structure shared by every system; values live in the batch's
    /// slab. One plan serves all systems and survives value mutation.
    Shared {
        row_ptrs: Array<I>,
        col_idxs: Array<I>,
        nnz: usize,
        strategy: SpmvStrategy,
        plan: PlanCache,
    },
    /// Independent systems batched only for dispatch.
    PerSystem { systems: Vec<Csr<V, I>> },
}

/// A batch of `num_systems` equally-shaped CSR systems.
///
/// The **shared-sparsity** variant keeps one `row_ptrs`/`col_idxs` structure
/// and an `num_systems × nnz` value slab; since SpMV plans depend only on
/// structure, ONE cached [`SpmvPlan`] serves every system and every apply,
/// and [`BatchCsr::system_values_mut`] deliberately does *not* invalidate
/// it. The **per-system** variant wraps arbitrary same-shaped [`Csr`]s.
///
/// [`BatchCsr::apply_batch`] computes `x[s] = A[s] b[s]` for every active
/// system with a single pool drain.
#[derive(Debug)]
pub struct BatchCsr<V: Value, I: Index = i32> {
    num_systems: usize,
    size: Dim2,
    exec: Executor,
    /// Shared variant: the `num_systems × nnz` value slab. Empty for
    /// per-system sparsity (values live inside each `Csr`).
    values: Array<V>,
    sparsity: Sparsity<V, I>,
}

/// One contiguous piece of a batched SpMV: a run of whole systems
/// (`row_lo == 0`, `row_hi == rows`) or a row range of a single system.
struct ChunkDesc {
    sys_lo: usize,
    sys_hi: usize,
    row_lo: usize,
    row_hi: usize,
}

impl<V: Value, I: Index> BatchCsr<V, I> {
    /// Builds a shared-sparsity batch from a prototype structure and one
    /// value vector per system (each of length `proto.nnz()`).
    pub fn from_shared(proto: &Csr<V, I>, system_values: &[Vec<V>]) -> Result<Self> {
        if system_values.is_empty() {
            return Err(GkoError::BadInput(
                "a batch needs at least one system".to_owned(),
            ));
        }
        let nnz = proto.nnz();
        let mut slab = Vec::with_capacity(system_values.len() * nnz);
        for (s, vals) in system_values.iter().enumerate() {
            if vals.len() != nnz {
                return Err(GkoError::BadInput(format!(
                    "system {s} holds {} values but the shared sparsity has {nnz}",
                    vals.len()
                )));
            }
            slab.extend_from_slice(vals);
        }
        Ok(Self::shared_from_slab(proto, system_values.len(), slab))
    }

    /// Builds a shared-sparsity batch replicating one matrix `num_systems`
    /// times (the facade's batched-solve path).
    pub fn replicated(proto: &Csr<V, I>, num_systems: usize) -> Result<Self> {
        if num_systems == 0 {
            return Err(GkoError::BadInput(
                "a batch needs at least one system".to_owned(),
            ));
        }
        let mut slab = Vec::with_capacity(num_systems * proto.nnz());
        for _ in 0..num_systems {
            slab.extend_from_slice(proto.values());
        }
        Ok(Self::shared_from_slab(proto, num_systems, slab))
    }

    fn shared_from_slab(proto: &Csr<V, I>, num_systems: usize, slab: Vec<V>) -> Self {
        let exec = proto.executor().clone();
        BatchCsr {
            num_systems,
            size: proto.size(),
            values: Array::from_vec(&exec, slab),
            sparsity: Sparsity::Shared {
                row_ptrs: Array::from_vec(&exec, proto.row_ptrs().to_vec()),
                col_idxs: Array::from_vec(&exec, proto.col_idxs().to_vec()),
                nnz: proto.nnz(),
                strategy: proto.strategy(),
                plan: PlanCache::new(),
            },
            exec,
        }
    }

    /// Builds a per-system-sparsity batch from same-shaped matrices.
    pub fn from_systems(systems: Vec<Csr<V, I>>) -> Result<Self> {
        let first = systems.first().ok_or_else(|| {
            GkoError::BadInput("a batch needs at least one system".to_owned())
        })?;
        let size = first.size();
        let exec = first.executor().clone();
        for sys in &systems {
            if sys.size() != size {
                return Err(GkoError::DimensionMismatch {
                    op: "batch",
                    expected: size,
                    actual: sys.size(),
                });
            }
            if !exec.same_memory_space(sys.executor()) {
                return Err(GkoError::ExecutorMismatch {
                    left: exec.name().to_owned(),
                    right: sys.executor().name().to_owned(),
                });
            }
        }
        Ok(BatchCsr {
            num_systems: systems.len(),
            size,
            values: Array::new(&exec, 0),
            sparsity: Sparsity::PerSystem { systems },
            exec,
        })
    }

    /// Number of systems in the batch.
    pub fn num_systems(&self) -> usize {
        self.num_systems
    }

    /// Shape of each system.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Executor the batch lives on.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// True for the shared-sparsity variant.
    pub fn is_shared(&self) -> bool {
        matches!(self.sparsity, Sparsity::Shared { .. })
    }

    /// Nonzeros of the shared structure (`None` for per-system sparsity).
    pub fn shared_nnz(&self) -> Option<usize> {
        match &self.sparsity {
            Sparsity::Shared { nnz, .. } => Some(*nnz),
            Sparsity::PerSystem { .. } => None,
        }
    }

    /// Read access to system `s`'s values.
    pub fn system_values(&self, s: usize) -> &[V] {
        match &self.sparsity {
            Sparsity::Shared { nnz, .. } => &self.values.as_slice()[s * nnz..(s + 1) * nnz],
            Sparsity::PerSystem { systems } => systems[s].values(),
        }
    }

    /// Write access to system `s`'s values.
    ///
    /// On the shared-sparsity variant this does **not** invalidate the
    /// cached SpMV plan: plans depend only on the structure (`row_ptrs`),
    /// which value mutation cannot change, so refreshing one system's
    /// coefficients must not force a re-inspection that every other system
    /// would pay for. Per-system sparsity delegates to that system's
    /// [`Csr::values_mut`], which invalidates only its own plan.
    pub fn system_values_mut(&mut self, s: usize) -> &mut [V] {
        match &mut self.sparsity {
            Sparsity::Shared { nnz, .. } => {
                let (lo, hi) = (s * *nnz, (s + 1) * *nnz);
                &mut self.values.as_mut_slice()[lo..hi]
            }
            Sparsity::PerSystem { systems } => systems[s].values_mut(),
        }
    }

    /// Plan-cache counters of the shared plan (`None` for per-system
    /// sparsity, whose plans live inside each `Csr`).
    pub fn plan_stats(&self) -> Option<PlanCacheStats> {
        match &self.sparsity {
            Sparsity::Shared { plan, .. } => Some(plan.stats()),
            Sparsity::PerSystem { .. } => None,
        }
    }

    /// The shared plan, building it on first use (shared sparsity only).
    fn shared_plan(&self) -> Option<Arc<SpmvPlan>> {
        match &self.sparsity {
            Sparsity::Shared {
                row_ptrs,
                strategy,
                plan,
                ..
            } => {
                let workers = self.exec.spec().workers;
                Some(plan.get_or_build(*strategy, workers, || {
                    plan::build_plan(
                        &self.exec,
                        *strategy,
                        self.size.rows,
                        row_ptrs.as_slice(),
                        V::BYTES,
                    )
                }))
            }
            Sparsity::PerSystem { .. } => None,
        }
    }

    /// Row partition for splitting a single large system.
    fn split_bounds(&self, s: usize, plan: Option<&SpmvPlan>, max_chunks: usize) -> Vec<usize> {
        match &self.sparsity {
            Sparsity::Shared { .. } => match plan {
                // The cached plan's partition (merge-path plans have no
                // row-aligned bounds; fall back to a uniform split).
                Some(p) if p.row_bounds.len() >= 2 => p.row_bounds.clone(),
                _ => uniform_bounds(self.size.rows, max_chunks),
            },
            Sparsity::PerSystem { systems } => systems[s].chunk_bounds(max_chunks),
        }
    }

    /// Cost-model work for an SpMV over `rows` rows and `nnz` nonzeros.
    fn span_work(rows: usize, nnz: usize) -> ChunkWork {
        plan::spmv_chunk_work(rows as f64, nnz as f64, V::BYTES, I::BYTES)
    }

    /// Nonzeros in system `s` rows `[lo, hi)`.
    fn span_nnz(&self, s: usize, lo: usize, hi: usize) -> usize {
        match &self.sparsity {
            Sparsity::Shared { row_ptrs, .. } => {
                let rp = row_ptrs.as_slice();
                rp[hi].to_usize() - rp[lo].to_usize()
            }
            Sparsity::PerSystem { systems } => {
                let rp = systems[s].row_ptrs();
                rp[hi].to_usize() - rp[lo].to_usize()
            }
        }
    }

    /// Batched SpMV: `x[s] = A[s] b[s]` for every system where
    /// `active` is unset or true; inactive systems' outputs are untouched.
    ///
    /// Drains the worker pool exactly once. A chunk is a run of whole
    /// systems when the batch is large relative to the pool, or a plan-split
    /// row range of one system otherwise; the cost model is charged only
    /// for active systems.
    pub fn apply_batch(
        &self,
        b: &BatchDense<V>,
        x: &mut BatchDense<V>,
        active: Option<&[bool]>,
    ) -> Result<()> {
        let (rows, cols) = (self.size.rows, self.size.cols);
        if b.num_systems() != self.num_systems || x.num_systems() != self.num_systems {
            return Err(GkoError::BadInput(format!(
                "apply_batch: operator has {} systems, b {} and x {}",
                self.num_systems,
                b.num_systems(),
                x.num_systems()
            )));
        }
        if b.size() != Dim2::new(cols, 1) {
            return Err(GkoError::DimensionMismatch {
                op: "apply_batch",
                expected: Dim2::new(cols, 1),
                actual: b.size(),
            });
        }
        if x.size() != Dim2::new(rows, 1) {
            return Err(GkoError::DimensionMismatch {
                op: "apply_batch",
                expected: Dim2::new(rows, 1),
                actual: x.size(),
            });
        }
        if !self.exec.same_memory_space(b.executor()) {
            return Err(GkoError::ExecutorMismatch {
                left: self.exec.name().to_owned(),
                right: b.executor().name().to_owned(),
            });
        }
        check_mask(active, self.num_systems, "apply_batch")?;
        let _timer = OpTimer::new(&self.exec, "batch_csr");

        // Resolve (and count a hit on) the shared plan before chunking.
        let plan = self.shared_plan();
        let workers = self.exec.spec().workers.max(1);
        let max_chunks = workers * 2;
        let x_stride = x.stride();

        // Partition the x slab into system-aligned chunks. `work` carries
        // only active systems' cost; bounds must still tile the whole slab
        // (padding rides with the last chunk of each system).
        let mut descs: Vec<ChunkDesc> = Vec::new();
        let mut elem_bounds = vec![0usize];
        let mut work: Vec<ChunkWork> = Vec::new();
        if self.num_systems >= max_chunks {
            // Small-system regime: a chunk is a run of whole systems.
            let sys_bounds = uniform_bounds(self.num_systems, max_chunks);
            for w in sys_bounds.windows(2) {
                let act: usize = (w[0]..w[1]).filter(|&s| is_active(active, s)).count();
                descs.push(ChunkDesc {
                    sys_lo: w[0],
                    sys_hi: w[1],
                    row_lo: 0,
                    row_hi: rows,
                });
                elem_bounds.push(w[1] * x_stride);
                if act > 0 {
                    let nnz: usize = (w[0]..w[1])
                        .filter(|&s| is_active(active, s))
                        .map(|s| self.span_nnz(s, 0, rows))
                        .sum();
                    work.push(Self::span_work(act * rows, nnz));
                }
            }
        } else {
            // Large-system regime: split each active system by its plan.
            for s in 0..self.num_systems {
                let sys_end = (s + 1) * x_stride;
                if !is_active(active, s) {
                    descs.push(ChunkDesc {
                        sys_lo: s,
                        sys_hi: s,
                        row_lo: 0,
                        row_hi: 0,
                    });
                    elem_bounds.push(sys_end);
                    continue;
                }
                let bounds = self.split_bounds(s, plan.as_deref(), max_chunks);
                if bounds.len() < 2 {
                    descs.push(ChunkDesc {
                        sys_lo: s,
                        sys_hi: s,
                        row_lo: 0,
                        row_hi: 0,
                    });
                    elem_bounds.push(sys_end);
                    continue;
                }
                for (j, w) in bounds.windows(2).enumerate() {
                    descs.push(ChunkDesc {
                        sys_lo: s,
                        sys_hi: s + 1,
                        row_lo: w[0],
                        row_hi: w[1],
                    });
                    let last = j + 2 == bounds.len();
                    elem_bounds.push(if last { sys_end } else { s * x_stride + w[1] });
                    work.push(Self::span_work(w[1] - w[0], self.span_nnz(s, w[0], w[1])));
                }
            }
        }

        let b_stride = b.stride();
        let bsl = b.as_slice();
        match &self.sparsity {
            Sparsity::Shared {
                row_ptrs,
                col_idxs,
                nnz,
                ..
            } => {
                let rp = row_ptrs.as_slice();
                let ci = col_idxs.as_slice();
                let vals = self.values.as_slice();
                let nnz = *nnz;
                parallel_chunks(&self.exec, x.as_mut_slice(), &elem_bounds, |d, xs| {
                    let desc = &descs[d];
                    for s in desc.sys_lo..desc.sys_hi {
                        if !is_active(active, s) {
                            continue;
                        }
                        let base = (s - desc.sys_lo) * x_stride;
                        let sv = &vals[s * nnz..(s + 1) * nnz];
                        let bv = &bsl[s * b_stride..s * b_stride + cols];
                        for r in desc.row_lo..desc.row_hi {
                            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
                            xs[base + (r - desc.row_lo)] =
                                V::from_f64(dot_span(&sv[lo..hi], &ci[lo..hi], bv));
                        }
                    }
                });
            }
            Sparsity::PerSystem { systems } => {
                parallel_chunks(&self.exec, x.as_mut_slice(), &elem_bounds, |d, xs| {
                    let desc = &descs[d];
                    for s in desc.sys_lo..desc.sys_hi {
                        if !is_active(active, s) {
                            continue;
                        }
                        let base = (s - desc.sys_lo) * x_stride;
                        let sys = &systems[s];
                        let (rp, ci, sv) = (sys.row_ptrs(), sys.col_idxs(), sys.values());
                        let bv = &bsl[s * b_stride..s * b_stride + cols];
                        for r in desc.row_lo..desc.row_hi {
                            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
                            xs[base + (r - desc.row_lo)] =
                                V::from_f64(dot_span(&sv[lo..hi], &ci[lo..hi], bv));
                        }
                    }
                });
            }
        }
        self.exec.launch(&work);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linop::LinOp;
    use crate::matrix::dense::Dense;

    fn tridiag(exec: &Executor, n: usize, diag: f64) -> Csr<f64, i32> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, diag));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
    }

    /// Shared-sparsity batch of `s` tridiagonal systems with distinct values.
    fn shared_batch(exec: &Executor, n: usize, s: usize) -> BatchCsr<f64, i32> {
        let proto = tridiag(exec, n, 4.0);
        let vals: Vec<Vec<f64>> = (0..s)
            .map(|k| {
                proto
                    .values()
                    .iter()
                    .map(|&v| if v > 0.0 { v + k as f64 * 0.25 } else { v })
                    .collect()
            })
            .collect();
        BatchCsr::from_shared(&proto, &vals).unwrap()
    }

    /// Reference result: each system applied through the plain Csr kernel.
    fn reference_apply(
        exec: &Executor,
        batch: &BatchCsr<f64, i32>,
        b: &BatchDense<f64>,
    ) -> Vec<Vec<f64>> {
        let n = batch.size().rows;
        let proto = tridiag(exec, n, 4.0);
        (0..batch.num_systems())
            .map(|s| {
                let csr = Csr::from_raw(
                    exec,
                    batch.size(),
                    proto.row_ptrs().to_vec(),
                    proto.col_idxs().to_vec(),
                    batch.system_values(s).to_vec(),
                )
                .unwrap();
                let bv = Dense::from_vec(
                    exec,
                    Dim2::new(n, 1),
                    b.system(s).to_vec(),
                )
                .unwrap();
                let mut xv = Dense::zeros(exec, Dim2::new(n, 1));
                csr.apply(&bv, &mut xv).unwrap();
                xv.to_host_vec()
            })
            .collect()
    }

    #[test]
    fn shared_apply_matches_per_system_reference() {
        let exec = Executor::reference();
        let (n, s) = (12, 5);
        let batch = shared_batch(&exec, n, s);
        let mut b = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        for k in 0..s {
            for (i, v) in b.system_mut(k).iter_mut().enumerate() {
                *v = (i + k + 1) as f64 * 0.5;
            }
        }
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        batch.apply_batch(&b, &mut x, None).unwrap();
        let want = reference_apply(&exec, &batch, &b);
        for (k, want_k) in want.iter().enumerate() {
            for (i, (&got, &w)) in x.system(k).iter().zip(want_k).enumerate() {
                assert!(
                    (got - w).abs() < 1e-12,
                    "system {k} row {i}: {got} vs {w}"
                );
            }
        }
    }

    #[test]
    fn grouped_and_split_regimes_agree() {
        // Force both chunking regimes by varying the batch size around the
        // 2*workers threshold (reference executor: 1 worker, threshold 2).
        let exec = Executor::reference();
        let n = 9;
        for s in [1usize, 2, 7] {
            let batch = shared_batch(&exec, n, s);
            let mut b = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
            for k in 0..s {
                for (i, v) in b.system_mut(k).iter_mut().enumerate() {
                    *v = 1.0 + (i * (k + 1)) as f64;
                }
            }
            let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
            batch.apply_batch(&b, &mut x, None).unwrap();
            let want = reference_apply(&exec, &batch, &b);
            for (k, want_k) in want.iter().enumerate() {
                for (&got, &w) in x.system(k).iter().zip(want_k) {
                    assert!((got - w).abs() < 1e-12, "batch of {s}, system {k}");
                }
            }
        }
    }

    #[test]
    fn per_system_sparsity_apply() {
        let exec = Executor::reference();
        let n = 8;
        let systems = vec![
            tridiag(&exec, n, 3.0),
            tridiag(&exec, n, 5.0),
            tridiag(&exec, n, 7.0),
        ];
        let batch = BatchCsr::from_systems(systems.clone()).unwrap();
        assert!(!batch.is_shared());
        let mut b = BatchDense::zeros(&exec, 3, Dim2::new(n, 1));
        for k in 0..3 {
            for v in b.system_mut(k) {
                *v = (k + 1) as f64;
            }
        }
        let mut x = BatchDense::zeros(&exec, 3, Dim2::new(n, 1));
        batch.apply_batch(&b, &mut x, None).unwrap();
        for (k, sys) in systems.iter().enumerate() {
            let bv = Dense::from_vec(&exec, Dim2::new(n, 1), b.system(k).to_vec()).unwrap();
            let mut xv = Dense::zeros(&exec, Dim2::new(n, 1));
            sys.apply(&bv, &mut xv).unwrap();
            for (&got, &w) in x.system(k).iter().zip(xv.to_host_vec().iter()) {
                assert!((got - w).abs() < 1e-12, "system {k}");
            }
        }
    }

    #[test]
    fn masked_apply_leaves_inactive_systems_untouched() {
        let exec = Executor::reference();
        let (n, s) = (6, 4);
        let batch = shared_batch(&exec, n, s);
        let mut b = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        b.fill(1.0);
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        x.fill(-7.0);
        let active = vec![true, false, true, false];
        batch.apply_batch(&b, &mut x, Some(&active)).unwrap();
        for (k, &act) in active.iter().enumerate() {
            if act {
                assert!(x.system(k).iter().any(|&v| v != -7.0), "system {k} written");
            } else {
                assert!(
                    x.system(k).iter().all(|&v| v == -7.0),
                    "system {k} must be untouched"
                );
            }
        }
    }

    #[test]
    fn shared_plan_is_built_once_and_reused() {
        let exec = Executor::reference();
        let (n, s) = (10, 6);
        let batch = shared_batch(&exec, n, s);
        let b = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        for _ in 0..50 {
            batch.apply_batch(&b, &mut x, None).unwrap();
        }
        let stats = batch.plan_stats().unwrap();
        assert_eq!(stats.builds, 1, "one inspection serves the whole batch");
        assert_eq!(stats.hits, 49);
        assert!(stats.reuse_ratio() > 0.97, "ratio {}", stats.reuse_ratio());
    }

    #[test]
    fn value_mutation_does_not_invalidate_shared_plan() {
        let exec = Executor::reference();
        let (n, s) = (10, 4);
        let mut batch = shared_batch(&exec, n, s);
        let b = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        batch.apply_batch(&b, &mut x, None).unwrap();
        // Refresh one system's coefficients: structure-only plans for the
        // other systems must survive.
        for v in batch.system_values_mut(0) {
            *v *= 2.0;
        }
        batch.apply_batch(&b, &mut x, None).unwrap();
        let stats = batch.plan_stats().unwrap();
        assert_eq!(stats.builds, 1, "value mutation must not re-inspect");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn batch_dense_kernels_match_scalar_math() {
        let exec = Executor::reference();
        let (n, s) = (5, 3);
        let dim = Dim2::new(n, 1);
        let mut a = BatchDense::zeros(&exec, s, dim);
        let mut b = BatchDense::zeros(&exec, s, dim);
        for k in 0..s {
            for (i, v) in a.system_mut(k).iter_mut().enumerate() {
                *v = (k + i) as f64;
            }
            for (i, v) in b.system_mut(k).iter_mut().enumerate() {
                *v = 1.0 + i as f64 * (k + 1) as f64;
            }
        }
        let alpha = vec![1.0, -2.0, 0.5];
        let before: Vec<Vec<f64>> = (0..s).map(|k| a.system(k).to_vec()).collect();
        a.axpy(&alpha, &b, None).unwrap();
        for k in 0..s {
            for (i, &was) in before[k].iter().enumerate() {
                let want = was + alpha[k] * b.system(k)[i];
                assert!((a.system(k)[i] - want).abs() < 1e-12);
            }
        }
        let mut dots = vec![0.0; s];
        a.dots(&b, None, &mut dots).unwrap();
        let mut norms = vec![0.0; s];
        a.norms2(None, &mut norms).unwrap();
        for k in 0..s {
            let want_dot: f64 = a.system(k).iter().zip(b.system(k)).map(|(x, y)| x * y).sum();
            let want_norm: f64 = a.system(k).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((dots[k] - want_dot).abs() < 1e-9, "dot {k}");
            assert!((norms[k] - want_norm).abs() < 1e-9, "norm {k}");
        }
    }

    #[test]
    fn masked_kernels_skip_inactive_systems() {
        let exec = Executor::reference();
        let (n, s) = (4, 3);
        let dim = Dim2::new(n, 1);
        let mut a = BatchDense::zeros(&exec, s, dim);
        a.fill(1.0);
        let mut b = BatchDense::zeros(&exec, s, dim);
        b.fill(10.0);
        let active = vec![true, false, true];
        a.axpy(&[1.0, 1.0, 1.0], &b, Some(&active)).unwrap();
        assert_eq!(a.system(0)[0], 11.0);
        assert_eq!(a.system(1)[0], 1.0, "inactive system untouched");
        assert_eq!(a.system(2)[0], 11.0);
        let mut out = vec![-1.0; s];
        a.norms2(Some(&active), &mut out).unwrap();
        assert!(out[0] > 0.0);
        assert_eq!(out[1], -1.0, "inactive slot untouched");
    }

    #[test]
    fn strided_batch_round_trips() {
        let exec = Executor::reference();
        let dim = Dim2::new(3, 1);
        let mut padded = BatchDense::<f64>::with_stride(&exec, 2, dim, 8).unwrap();
        assert_eq!(padded.stride(), 8);
        for (i, v) in padded.system_mut(1).iter_mut().enumerate() {
            *v = i as f64;
        }
        let mut dense = BatchDense::zeros(&exec, 2, dim);
        dense.copy_from(&padded).unwrap();
        assert_eq!(dense.system(1), &[0.0, 1.0, 2.0]);
        assert!(BatchDense::<f64>::with_stride(&exec, 2, dim, 2).is_err());
    }

    #[test]
    fn dimension_and_mask_errors() {
        let exec = Executor::reference();
        let batch = shared_batch(&exec, 6, 3);
        let b = BatchDense::zeros(&exec, 3, Dim2::new(6, 1));
        let mut wrong_rows = BatchDense::zeros(&exec, 3, Dim2::new(5, 1));
        assert!(batch.apply_batch(&b, &mut wrong_rows, None).is_err());
        let mut wrong_batch = BatchDense::zeros(&exec, 2, Dim2::new(6, 1));
        assert!(batch.apply_batch(&b, &mut wrong_batch, None).is_err());
        let mut x = BatchDense::zeros(&exec, 3, Dim2::new(6, 1));
        let short_mask = vec![true; 2];
        assert!(batch.apply_batch(&b, &mut x, Some(&short_mask)).is_err());
        assert!(BatchCsr::<f64, i32>::from_systems(vec![]).is_err());
        let proto = tridiag(&exec, 4, 2.0);
        assert!(BatchCsr::from_shared(&proto, &[vec![1.0; 3]]).is_err());
    }
}
