//! SELL-P (sliced ELLPACK with padding) format.
//!
//! SELL-P divides the rows into slices of `slice_size` rows and pads only
//! within each slice, combining ELL's coalescing with far less padding on
//! skewed matrices. This is Ginkgo's SELL-P as described in the
//! load-balancing SpMV paper the pyGinkgo paper cites (Anzt et al., TOPC
//! 2020).

use crate::base::array::Array;
use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::pool::parallel_chunks;
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;

/// Default rows per slice (Ginkgo uses the warp size; 32 here).
pub const DEFAULT_SLICE_SIZE: usize = 32;

/// Sparse matrix in sliced-ELL format.
#[derive(Debug, Clone)]
pub struct Sellp<V: Value, I: Index = i32> {
    size: Dim2,
    slice_size: usize,
    /// Per-slice padded width.
    slice_lengths: Vec<usize>,
    /// Offset of each slice's storage block (`slice_lengths[s] * slice_size`
    /// elements per slice).
    slice_offsets: Vec<usize>,
    /// Within a slice: slot-major, `[offset + slot * slice_size + lane]`.
    col_idxs: Array<I>,
    values: Array<V>,
}

impl<V: Value, I: Index> Sellp<V, I> {
    /// Matrix size.
    pub fn size(&self) -> Dim2 {
        self.size
    }

    /// Converts from CSR with the default slice size.
    pub fn from_csr(csr: &Csr<V, I>) -> Self {
        Sellp::from_csr_with_slice(csr, DEFAULT_SLICE_SIZE)
    }

    /// Converts from CSR with an explicit slice size.
    pub fn from_csr_with_slice(csr: &Csr<V, I>, slice_size: usize) -> Self {
        assert!(slice_size > 0, "slice size must be positive");
        let size = csr.size();
        let rows = size.rows;
        let rp = csr.row_ptrs();
        let n_slices = rows.div_ceil(slice_size);
        let mut slice_lengths = Vec::with_capacity(n_slices);
        let mut slice_offsets = Vec::with_capacity(n_slices + 1);
        slice_offsets.push(0usize);
        for s in 0..n_slices {
            let lo_row = s * slice_size;
            let hi_row = ((s + 1) * slice_size).min(rows);
            let len = (lo_row..hi_row)
                .map(|r| rp[r + 1].to_usize() - rp[r].to_usize())
                .max()
                .unwrap_or(0);
            slice_lengths.push(len);
            slice_offsets.push(slice_offsets[s] + len * slice_size);
        }
        // lint: allow(panic): `slice_offsets` starts with a pushed 0.
        let total = *slice_offsets.last().unwrap();
        let mut col_idxs = vec![I::zero(); total];
        let mut values = vec![V::zero(); total];
        for s in 0..n_slices {
            let lo_row = s * slice_size;
            let hi_row = ((s + 1) * slice_size).min(rows);
            for r in lo_row..hi_row {
                let lane = r - lo_row;
                let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
                let mut last_col = I::zero();
                for slot in 0..slice_lengths[s] {
                    let idx = slice_offsets[s] + slot * slice_size + lane;
                    if lo + slot < hi {
                        last_col = csr.col_idxs()[lo + slot];
                        col_idxs[idx] = last_col;
                        values[idx] = csr.values()[lo + slot];
                    } else {
                        col_idxs[idx] = last_col;
                        values[idx] = V::zero();
                    }
                }
            }
        }
        Sellp {
            size,
            slice_size,
            slice_lengths,
            slice_offsets,
            col_idxs: Array::from_vec(csr.executor(), col_idxs),
            values: Array::from_vec(csr.executor(), values),
        }
    }

    /// Converts back to CSR, dropping padding.
    pub fn to_csr(&self) -> Csr<V, I> {
        let mut triplets = Vec::new();
        for s in 0..self.slice_lengths.len() {
            let lo_row = s * self.slice_size;
            let hi_row = ((s + 1) * self.slice_size).min(self.size.rows);
            for r in lo_row..hi_row {
                let lane = r - lo_row;
                for slot in 0..self.slice_lengths[s] {
                    let idx = self.slice_offsets[s] + slot * self.slice_size + lane;
                    let v = self.values.as_slice()[idx];
                    if v != V::zero() {
                        triplets.push((r, self.col_idxs.as_slice()[idx].to_usize(), v));
                    }
                }
            }
        }
        Csr::from_triplets(self.executor(), self.size, &triplets)
            // lint: allow(panic): SELL-P stores only in-bounds columns, so
            // the derived triplets satisfy the CSR contract.
            .expect("SELL-P-derived triplets are valid")
    }

    /// Total stored slots (including padding).
    pub fn stored_elements(&self) -> usize {
        self.values.len()
    }

    /// Rows per slice.
    pub fn slice_size(&self) -> usize {
        self.slice_size
    }

    /// Executor the matrix lives on.
    pub fn executor(&self) -> &Executor {
        self.values.executor()
    }

    /// Re-derives the SELL-P structural invariants: slice bookkeeping
    /// (counts, offsets, per-slice volumes) consistent with `slice_size`
    /// and the row count, storage arrays matching the total volume, and
    /// every column index (padding included) in range.
    pub fn validate(&self) -> Result<()> {
        if self.slice_size == 0 {
            return Err(GkoError::BadInput("SELL-P slice_size must be positive".into()));
        }
        let n_slices = self.size.rows.div_ceil(self.slice_size);
        if self.slice_lengths.len() != n_slices || self.slice_offsets.len() != n_slices + 1 {
            return Err(GkoError::BadInput(format!(
                "SELL-P slice bookkeeping ({} lengths, {} offsets) does not \
                 match {n_slices} slices",
                self.slice_lengths.len(),
                self.slice_offsets.len()
            )));
        }
        if self.slice_offsets.first() != Some(&0) {
            return Err(GkoError::BadInput("SELL-P slice_offsets[0] must be 0".into()));
        }
        for s in 0..n_slices {
            let volume = self.slice_lengths[s] * self.slice_size;
            if self.slice_offsets[s + 1] != self.slice_offsets[s] + volume {
                return Err(GkoError::BadInput(format!(
                    "SELL-P slice {s} offset step {} does not match its \
                     padded volume {volume}",
                    self.slice_offsets[s + 1].wrapping_sub(self.slice_offsets[s])
                )));
            }
        }
        let total = self.slice_offsets[n_slices];
        if self.col_idxs.len() != total || self.values.len() != total {
            return Err(GkoError::BadInput(format!(
                "SELL-P storage sizes ({} cols, {} values) do not match the \
                 slice volume total {total}",
                self.col_idxs.len(),
                self.values.len()
            )));
        }
        for (slot, &c) in self.col_idxs.as_slice().iter().enumerate() {
            if c.to_usize() >= self.size.cols {
                return Err(GkoError::BadInput(format!(
                    "SELL-P column index {c} at slot {slot} out of range for {}",
                    self.size
                )));
            }
        }
        Ok(())
    }

    /// One chunk per slice: the padded slice volume is streamed.
    pub fn spmv_work(&self) -> Vec<ChunkWork> {
        self.slice_lengths
            .iter()
            .map(|&len| {
                let stored = (len * self.slice_size) as f64;
                ChunkWork::new(
                    stored * (V::BYTES + I::BYTES) as f64
                        + self.slice_size as f64 * V::BYTES as f64,
                    stored * V::BYTES as f64,
                    2.0 * stored,
                )
            })
            .collect()
    }
}

impl<V: Value, I: Index> LinOp<V> for Sellp<V, I> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        self.values.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.apply_advanced(V::one(), b, V::zero(), x)
    }

    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        if !self.executor().same_memory_space(b.executor()) {
            return Err(GkoError::ExecutorMismatch {
                left: self.executor().name().to_owned(),
                right: b.executor().name().to_owned(),
            });
        }
        let _timer = OpTimer::new(self.executor(), "sellp");
        let k = b.size().cols;
        let work = self.spmv_work();
        let ci = self.col_idxs.as_slice();
        let vals = self.values.as_slice();
        let bv = b.as_slice();
        let exec = self.executor().clone();
        // Slice-parallel dispatch: each slice owns a contiguous row block,
        // so slices map 1:1 onto pool chunks (exactly the partition the
        // cost model charges).
        let n_slices = self.slice_lengths.len();
        let mut elem_bounds = Vec::with_capacity(n_slices + 1);
        elem_bounds.push(0usize);
        for s in 0..n_slices {
            let hi_row = ((s + 1) * self.slice_size).min(self.size.rows);
            elem_bounds.push(hi_row * k);
        }
        let rows = self.size.rows;
        parallel_chunks(&exec, x.as_mut_slice(), &elem_bounds, |s, xs| {
            let lo_row = s * self.slice_size;
            let hi_row = ((s + 1) * self.slice_size).min(rows);
            let slice_len = self.slice_lengths[s];
            let offset = self.slice_offsets[s];
            for r in lo_row..hi_row {
                let lane = r - lo_row;
                if k == 1 {
                    // Unrolled slot walk (stride = slice_size): four
                    // independent accumulators hide the gather latency
                    // chain; the scalar tail covers slice_len % 4.
                    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                    let mut slot = 0usize;
                    while slot + 4 <= slice_len {
                        let i0 = offset + slot * self.slice_size + lane;
                        let (i1, i2) = (i0 + self.slice_size, i0 + 2 * self.slice_size);
                        let i3 = i0 + 3 * self.slice_size;
                        a0 += vals[i0].to_f64() * bv[ci[i0].to_usize()].to_f64();
                        a1 += vals[i1].to_f64() * bv[ci[i1].to_usize()].to_f64();
                        a2 += vals[i2].to_f64() * bv[ci[i2].to_usize()].to_f64();
                        a3 += vals[i3].to_f64() * bv[ci[i3].to_usize()].to_f64();
                        slot += 4;
                    }
                    let mut tail = 0.0f64;
                    while slot < slice_len {
                        let idx = offset + slot * self.slice_size + lane;
                        tail += vals[idx].to_f64() * bv[ci[idx].to_usize()].to_f64();
                        slot += 1;
                    }
                    let prod = V::from_f64(((a0 + a1) + (a2 + a3)) + tail);
                    let out = &mut xs[r - lo_row];
                    *out = if beta == V::zero() {
                        alpha * prod
                    } else {
                        alpha * prod + beta * *out
                    };
                } else {
                    for c in 0..k {
                        let mut acc = 0.0f64;
                        for slot in 0..slice_len {
                            let idx = offset + slot * self.slice_size + lane;
                            acc += vals[idx].to_f64() * bv[ci[idx].to_usize() * k + c].to_f64();
                        }
                        let prod = V::from_f64(acc);
                        let out = &mut xs[(r - lo_row) * k + c];
                        *out = if beta == V::zero() {
                            alpha * prod
                        } else {
                            alpha * prod + beta * *out
                        };
                    }
                }
            }
        });
        self.executor().launch(&work);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "sellp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::reference()
    }

    fn skewed(e: &Executor, rows: usize) -> Csr<f64, i32> {
        // Row 0 has `rows` nnz; all other rows have 1.
        let mut t = vec![];
        for j in 0..rows {
            t.push((0usize, j, 1.0 + j as f64));
        }
        for i in 1..rows {
            t.push((i, i, 2.0));
        }
        Csr::from_triplets(e, Dim2::square(rows), &t).unwrap()
    }

    #[test]
    fn spmv_matches_csr() {
        let e = exec();
        let csr = skewed(&e, 100);
        let sellp = Sellp::from_csr_with_slice(&csr, 8);
        let b = Dense::<f64>::vector(&e, 100, 1.0);
        let mut x1 = Dense::zeros(&e, Dim2::new(100, 1));
        let mut x2 = Dense::zeros(&e, Dim2::new(100, 1));
        csr.apply(&b, &mut x1).unwrap();
        sellp.apply(&b, &mut x2).unwrap();
        assert_eq!(x1.to_host_vec(), x2.to_host_vec());
    }

    #[test]
    fn pads_less_than_ell_on_skewed_rows() {
        let e = exec();
        let csr = skewed(&e, 128);
        let sellp = Sellp::from_csr_with_slice(&csr, 16);
        let ell = crate::matrix::ell::Ell::from_csr(&csr);
        assert!(sellp.stored_elements() < ell.stored_elements());
        assert!(sellp.stored_elements() >= csr.nnz());
    }

    #[test]
    fn csr_roundtrip() {
        let e = exec();
        let csr = skewed(&e, 50);
        let back = Sellp::from_csr_with_slice(&csr, 8).to_csr();
        assert_eq!(back.nnz(), csr.nnz());
        assert_eq!(back.to_dense().to_host_vec(), csr.to_dense().to_host_vec());
    }

    #[test]
    fn ragged_final_slice_is_handled() {
        let e = exec();
        // 10 rows with slice size 4 -> slices of 4, 4, 2 rows.
        let csr = skewed(&e, 10);
        let sellp = Sellp::from_csr_with_slice(&csr, 4);
        let b = Dense::<f64>::vector(&e, 10, 2.0);
        let mut x1 = Dense::zeros(&e, Dim2::new(10, 1));
        let mut x2 = Dense::zeros(&e, Dim2::new(10, 1));
        csr.apply(&b, &mut x1).unwrap();
        sellp.apply(&b, &mut x2).unwrap();
        assert_eq!(x1.to_host_vec(), x2.to_host_vec());
    }

    #[test]
    fn one_chunk_per_slice_in_cost_model() {
        let e = exec();
        let csr = skewed(&e, 64);
        let sellp = Sellp::from_csr_with_slice(&csr, 16);
        assert_eq!(sellp.spmv_work().len(), 4);
    }
}
