//! Inspector–executor SpMV plans.
//!
//! Iterative solvers apply the *same* matrix thousands of times, yet until
//! this layer existed every apply re-derived its chunk partition from the
//! row pointers. Following Ginkgo's strategy machinery (and the classic
//! inspector–executor split), the partition work is now done once by an
//! *inspector* ([`build_plan`]) and the result — an [`SpmvPlan`] holding the
//! resolved strategy, precomputed split points, per-chunk cost descriptions,
//! and row-skew statistics — is cached on the matrix ([`PlanCache`]) and
//! reused by every subsequent apply until the matrix is mutated.
//!
//! Three partition shapes are produced:
//!
//! * **Classical** — equal-row-count chunks, oversubscribed 4× so the pool's
//!   work stealing can absorb moderate imbalance.
//! * **LoadBalance** — equal-nonzero-count row chunks. Balanced by
//!   construction, so the plan emits exactly one chunk per worker: the old
//!   per-apply path oversubscribed these too, paying 4× the modeled
//!   per-chunk overhead for balance the partition already had.
//! * **MergePath** — diagonal splits of the merged (rows + nnz) sequence
//!   (Merrill & Garland's merge-based CSR). Each segment owns a contiguous
//!   nonzero range and the rows it spans, so a single ultra-dense row is
//!   divided across workers instead of serializing one lane.
//!
//! [`SpmvStrategy::Auto`] resolves to one of the three from the inspected
//! skew statistics; the resolution is purely structural (row pointers only),
//! so it is deterministic and identical on every executor.

use crate::base::types::Index;
use crate::executor::pool::uniform_bounds;
use crate::executor::Executor;
use crate::log::{Event, OpTimer};
use crate::matrix::csr::SpmvStrategy;
use pygko_sim::ChunkWork;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Classical chunks per worker: oversubscription lets stealing absorb the
/// row-length imbalance a uniform row split cannot see.
pub const CLASSICAL_OVERSUBSCRIPTION: usize = 4;

/// `Auto` picks [`SpmvStrategy::LoadBalance`] once the heaviest row exceeds
/// this multiple of the average row length.
pub const BALANCE_SKEW: f64 = 4.0;

/// `Auto` escalates to [`SpmvStrategy::MergePath`] once the heaviest row
/// exceeds this multiple of the average — at that point one row rivals a
/// whole worker's fair share and must itself be split.
pub const MERGE_SKEW: f64 = 32.0;

// ---------------------------------------------------------------------------
// Row statistics (the inspector's measurements)
// ---------------------------------------------------------------------------

/// Row-length statistics derived from a CSR row-pointer array.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RowStats {
    /// Matrix rows.
    pub rows: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Nonzeros in the heaviest row.
    pub max_row_nnz: usize,
    /// Rows with no stored entries.
    pub empty_rows: usize,
}

impl RowStats {
    /// One streaming pass over the row pointers.
    pub fn inspect<I: Index>(rows: usize, row_ptrs: &[I]) -> Self {
        let mut max_row_nnz = 0usize;
        let mut empty_rows = 0usize;
        for r in 0..rows {
            let len = row_ptrs[r + 1].to_usize() - row_ptrs[r].to_usize();
            max_row_nnz = max_row_nnz.max(len);
            if len == 0 {
                empty_rows += 1;
            }
        }
        let nnz = if rows == 0 {
            0
        } else {
            row_ptrs[rows].to_usize()
        };
        RowStats {
            rows,
            nnz,
            max_row_nnz,
            empty_rows,
        }
    }

    /// Mean nonzeros per row (0 for an empty matrix).
    pub fn avg_row_nnz(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz as f64 / self.rows as f64
        }
    }

    /// Heaviest row relative to the mean (1.0 for uniform rows).
    pub fn skew(&self) -> f64 {
        let avg = self.avg_row_nnz();
        if avg > 0.0 {
            self.max_row_nnz as f64 / avg
        } else {
            1.0
        }
    }
}

/// Resolves `Auto` into a concrete strategy from the inspected statistics.
///
/// Purely structural, so the same matrix resolves identically on every
/// executor and every run.
pub fn resolve_strategy(requested: SpmvStrategy, stats: &RowStats) -> ResolvedStrategy {
    match requested {
        SpmvStrategy::Classical => ResolvedStrategy::Classical,
        SpmvStrategy::LoadBalance => ResolvedStrategy::LoadBalance,
        SpmvStrategy::MergePath => ResolvedStrategy::MergePath,
        SpmvStrategy::Auto => {
            let skew = stats.skew();
            if skew >= MERGE_SKEW {
                ResolvedStrategy::MergePath
            } else if skew >= BALANCE_SKEW {
                ResolvedStrategy::LoadBalance
            } else {
                ResolvedStrategy::Classical
            }
        }
    }
}

/// The concrete kernel a plan executes (`Auto` already resolved).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedStrategy {
    /// Equal-row-count chunks.
    Classical,
    /// Equal-nonzero-count row chunks.
    LoadBalance,
    /// Merge-path (rows + nnz) diagonal segments.
    MergePath,
}

impl ResolvedStrategy {
    /// Stable lowercase name (used in events and bench records).
    pub fn name(self) -> &'static str {
        match self {
            ResolvedStrategy::Classical => "classical",
            ResolvedStrategy::LoadBalance => "load_balance",
            ResolvedStrategy::MergePath => "merge_path",
        }
    }
}

// ---------------------------------------------------------------------------
// Partition helpers (pure functions over the row pointers)
// ---------------------------------------------------------------------------

/// Row boundaries with (approximately) equal nonzeros per chunk, deduplicated
/// so skewed matrices never produce empty chunks.
pub fn load_balance_bounds<I: Index>(rows: usize, row_ptrs: &[I], max_chunks: usize) -> Vec<usize> {
    let nnz = if rows == 0 {
        0
    } else {
        row_ptrs[rows].to_usize()
    };
    if nnz == 0 || rows == 0 {
        return uniform_bounds(rows, max_chunks);
    }
    let chunks = max_chunks.max(1).min(rows);
    let mut bounds = Vec::with_capacity(chunks + 1);
    bounds.push(0usize);
    let mut prev = 0usize;
    for c in 1..chunks {
        let target = c * nnz / chunks;
        // First row whose end passes the target.
        let row = row_ptrs.partition_point(|&p| p.to_usize() < target);
        // Skewed nnz distributions (e.g. one dense row holding most of the
        // matrix) make several targets resolve to the same row; duplicates
        // would be empty chunks inflating the modeled per-chunk overhead,
        // so boundaries are deduplicated as they are produced.
        let row = row.clamp(prev, rows);
        if row < rows && row != prev {
            bounds.push(row);
            prev = row;
        }
    }
    bounds.push(rows);
    bounds
}

/// One merge-path segment: a contiguous nonzero range plus the rows it
/// spans. `row_first`/`row_last` are the rows of the first and last owned
/// nonzero; either may extend into neighbouring segments (a split row),
/// which is why the executing kernel routes their partial sums through
/// per-segment scratch instead of writing them directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeSegment {
    /// First owned nonzero index (inclusive).
    pub nnz_start: usize,
    /// One past the last owned nonzero index.
    pub nnz_end: usize,
    /// Row containing nonzero `nnz_start`.
    pub row_first: usize,
    /// Row containing nonzero `nnz_end - 1`.
    pub row_last: usize,
}

/// Row index of nonzero `e` (last row whose pointer is `<= e`).
fn row_of<I: Index>(row_ptrs: &[I], e: usize) -> usize {
    row_ptrs.partition_point(|&p| p.to_usize() <= e) - 1
}

/// Splits the merged (rows + nnz) decision sequence into `max_chunks`
/// balanced segments via diagonal binary searches.
///
/// For diagonal `d`, the split row is the largest `r` with
/// `row_ptrs[r] + r <= d` (the left side is strictly increasing in `r`) and
/// the nonzero cursor is `d - r`, which the same inequality pins inside
/// `row_ptrs[r] ..= row_ptrs[r + 1]`. Segments with no nonzeros (diagonals
/// advancing only through empty rows) are dropped — empty rows cost the
/// executing kernel nothing.
pub fn merge_segments<I: Index>(rows: usize, row_ptrs: &[I], max_chunks: usize) -> Vec<MergeSegment> {
    let nnz = if rows == 0 {
        0
    } else {
        row_ptrs[rows].to_usize()
    };
    if nnz == 0 {
        return Vec::new();
    }
    let total = rows + nnz;
    let chunks = max_chunks.max(1).min(total);
    let mut cuts: Vec<usize> = Vec::with_capacity(chunks + 1);
    cuts.push(0);
    let mut last_cut = 0usize;
    for c in 1..chunks {
        let d = c * total / chunks;
        // Largest r in [0, rows] with row_ptrs[r] + r <= d.
        let (mut lo, mut hi) = (0usize, rows);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if row_ptrs[mid].to_usize() + mid <= d {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let cut = d - lo;
        if cut > last_cut && cut < nnz {
            cuts.push(cut);
            last_cut = cut;
        }
    }
    cuts.push(nnz);
    cuts.windows(2)
        .map(|w| MergeSegment {
            nnz_start: w[0],
            nnz_end: w[1],
            row_first: row_of(row_ptrs, w[0]),
            row_last: row_of(row_ptrs, w[1] - 1),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// A cached, per-matrix SpMV execution plan (the inspector's output).
#[derive(Clone, Debug)]
pub struct SpmvPlan {
    /// Strategy the matrix requested (cache key together with `workers`).
    pub requested: SpmvStrategy,
    /// Concrete strategy after `Auto` resolution.
    pub resolved: ResolvedStrategy,
    /// Worker count of the executor the plan was built for.
    pub workers: usize,
    /// Row chunk boundaries (Classical / LoadBalance; empty for MergePath).
    pub row_bounds: Vec<usize>,
    /// Merge-path segments (MergePath only; empty otherwise).
    pub segments: Vec<MergeSegment>,
    /// Per-chunk cost-model work, aligned with the partition above.
    pub work: Vec<ChunkWork>,
    /// Row-skew statistics gathered by the inspector.
    pub stats: RowStats,
}

impl SpmvPlan {
    /// Number of parallel pieces the plan dispatches.
    pub fn chunks(&self) -> usize {
        if self.segments.is_empty() {
            self.row_bounds.len().saturating_sub(1)
        } else {
            self.segments.len()
        }
    }
}

/// Counters describing one matrix's plan-cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Inspector runs (first apply, and after each invalidation).
    pub builds: u64,
    /// Applies served by a cached plan.
    pub hits: u64,
}

impl PlanCacheStats {
    /// Fraction of plan lookups served from cache.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.builds + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-matrix plan slot plus build/hit counters.
///
/// The slot invalidates itself when the lookup key (requested strategy,
/// executor worker count) changes; structural mutation must call
/// [`PlanCache::invalidate`] explicitly.
#[derive(Debug, Default)]
pub struct PlanCache {
    slot: Mutex<Option<Arc<SpmvPlan>>>, // lock: plan.slot
    builds: AtomicU64,                  // atomic: counter
    hits: AtomicU64,                    // atomic: counter
}

/// Cloning a matrix must not share plan state: the clone starts with an
/// empty cache so later mutation of either copy cannot serve the other a
/// stale plan.
impl Clone for PlanCache {
    fn clone(&self) -> Self {
        PlanCache::default()
    }
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Drops the cached plan (the next apply re-runs the inspector).
    pub fn invalidate(&self) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Build/hit counters (monotone; survive invalidation).
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// Returns the cached plan for `(requested, workers)`, or builds one.
    ///
    /// The slot lock is held across `build`, so concurrent first applies of
    /// one matrix run the inspector exactly once.
    pub fn get_or_build<F>(&self, requested: SpmvStrategy, workers: usize, build: F) -> Arc<SpmvPlan>
    where
        F: FnOnce() -> SpmvPlan,
    {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(plan) = slot.as_ref() {
            if plan.requested == requested && plan.workers == workers {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return plan.clone();
            }
        }
        let plan = Arc::new(build());
        self.builds.fetch_add(1, Ordering::Relaxed);
        *slot = Some(plan.clone());
        plan
    }
}

// ---------------------------------------------------------------------------
// The inspector
// ---------------------------------------------------------------------------

/// Cost-model work of an SpMV chunk covering `rows` rows and `nnz` nonzeros
/// (shared by every CSR partition shape so all strategies are charged
/// identically per nonzero). `vb`/`ib` are the value/index byte widths.
pub(crate) fn spmv_chunk_work(rows: f64, nnz: f64, vb: usize, ib: usize) -> ChunkWork {
    ChunkWork::new(
        nnz * (vb + ib) as f64 + rows * (ib + vb) as f64,
        nnz * vb as f64, // x gathers
        2.0 * nnz,
    )
}

/// Runs the inspector: gathers row statistics, resolves the strategy,
/// computes the partition and its per-chunk work, charges the inspection
/// pass to the virtual timeline, and emits [`Event::PlanBuilt`].
///
/// The surrounding [`OpTimer`] publishes the inspector's wall/virtual cost
/// as the `csr::plan` kernel, so profilers attribute plan building
/// separately from apply time (it shows up as a child frame of the first
/// `csr` apply).
pub fn build_plan<I: Index>(
    exec: &Executor,
    requested: SpmvStrategy,
    rows: usize,
    row_ptrs: &[I],
    value_bytes: usize,
) -> SpmvPlan {
    let _timer = OpTimer::new(exec, "csr::plan");
    let workers = exec.spec().workers;
    let stats = RowStats::inspect(rows, row_ptrs);
    let resolved = resolve_strategy(requested, &stats);
    let (row_bounds, segments) = match resolved {
        ResolvedStrategy::Classical => (
            uniform_bounds(rows, workers * CLASSICAL_OVERSUBSCRIPTION),
            Vec::new(),
        ),
        // Balanced by construction: one chunk per worker, no
        // oversubscription overhead.
        ResolvedStrategy::LoadBalance => {
            (load_balance_bounds(rows, row_ptrs, workers), Vec::new())
        }
        ResolvedStrategy::MergePath => (Vec::new(), merge_segments(rows, row_ptrs, workers)),
    };
    let work: Vec<ChunkWork> = if segments.is_empty() {
        row_bounds
            .windows(2)
            .map(|w| {
                let rows = (w[1] - w[0]) as f64;
                let nnz =
                    (row_ptrs[w[1]].to_usize() - row_ptrs[w[0]].to_usize()) as f64;
                spmv_chunk_work(rows, nnz, value_bytes, I::BYTES)
            })
            .collect()
    } else {
        segments
            .iter()
            .map(|s| {
                spmv_chunk_work(
                    (s.row_last - s.row_first + 1) as f64,
                    (s.nnz_end - s.nnz_start) as f64,
                    value_bytes,
                    I::BYTES,
                )
            })
            .collect()
    };
    // Charge the inspector itself: one streaming pass over the row-pointer
    // array plus a comparison per row.
    exec.launch(&[ChunkWork::new(
        ((rows + 1) * I::BYTES) as f64,
        0.0,
        rows as f64,
    )]);
    let plan = SpmvPlan {
        requested,
        resolved,
        workers,
        row_bounds,
        segments,
        work,
        stats,
    };
    exec.loggers().log(&Event::PlanBuilt {
        op: "csr",
        strategy: resolved.name(),
        chunks: plan.chunks() as u64,
        rows: rows as u64,
        nnz: stats.nnz as u64,
    });
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Row pointers of a matrix with rows of the given lengths.
    fn rp(lens: &[usize]) -> Vec<i32> {
        let mut out = vec![0i32];
        let mut acc = 0i32;
        for &l in lens {
            acc += l as i32;
            out.push(acc);
        }
        out
    }

    #[test]
    fn stats_capture_skew_and_empties() {
        let rp = rp(&[1, 0, 7, 0, 2]);
        let s = RowStats::inspect(5, &rp);
        assert_eq!(s.rows, 5);
        assert_eq!(s.nnz, 10);
        assert_eq!(s.max_row_nnz, 7);
        assert_eq!(s.empty_rows, 2);
        assert_eq!(s.avg_row_nnz(), 2.0);
        assert_eq!(s.skew(), 3.5);
    }

    #[test]
    fn auto_resolution_is_deterministic_and_structural() {
        // Uniform rows -> classical.
        let uniform = RowStats::inspect(4, &rp(&[2, 2, 2, 2]));
        assert_eq!(
            resolve_strategy(SpmvStrategy::Auto, &uniform),
            ResolvedStrategy::Classical
        );
        // Moderate skew (max 6 vs avg 1.5 = 4x) -> load balance.
        let skewed = RowStats::inspect(8, &rp(&[6, 1, 1, 1, 1, 1, 1, 0]));
        assert_eq!(
            resolve_strategy(SpmvStrategy::Auto, &skewed),
            ResolvedStrategy::LoadBalance
        );
        // One row holding nearly everything -> merge path.
        let extreme = RowStats::inspect(65, &{
            let mut lens = vec![1usize; 64];
            lens.push(640);
            rp(&lens)
        });
        assert_eq!(
            resolve_strategy(SpmvStrategy::Auto, &extreme),
            ResolvedStrategy::MergePath
        );
        // Explicit requests pass through untouched.
        assert_eq!(
            resolve_strategy(SpmvStrategy::MergePath, &uniform),
            ResolvedStrategy::MergePath
        );
        // Resolution repeated on identical stats never flips.
        for _ in 0..10 {
            assert_eq!(
                resolve_strategy(SpmvStrategy::Auto, &skewed),
                ResolvedStrategy::LoadBalance
            );
        }
    }

    #[test]
    fn merge_segments_partition_all_nnz() {
        // One dense row inside light rows.
        let mut lens = vec![2usize; 10];
        lens[4] = 100;
        let rp = rp(&lens);
        for chunks in [1usize, 2, 3, 7, 16] {
            let segs = merge_segments(10, &rp, chunks);
            assert!(!segs.is_empty());
            assert_eq!(segs[0].nnz_start, 0);
            assert_eq!(segs.last().unwrap().nnz_end, 118);
            for w in segs.windows(2) {
                assert_eq!(w[0].nnz_end, w[1].nnz_start, "contiguous");
            }
            for s in &segs {
                assert!(s.nnz_start < s.nnz_end, "nonempty: {s:?}");
                assert!(s.row_first <= s.row_last);
            }
        }
        // The dense row is actually split across several segments.
        let segs = merge_segments(10, &rp, 8);
        let touching = segs
            .iter()
            .filter(|s| s.row_first <= 4 && 4 <= s.row_last)
            .count();
        assert!(touching >= 3, "dense row split across segments: {segs:?}");
    }

    #[test]
    fn merge_segments_handle_degenerate_shapes() {
        // Empty matrix.
        assert!(merge_segments(0, &[0i32], 8).is_empty());
        // All rows empty.
        assert!(merge_segments(3, &rp(&[0, 0, 0]), 8).is_empty());
        // Single dense row.
        let one_row = rp(&[33]);
        let segs = merge_segments(1, &one_row, 4);
        assert_eq!(segs[0].nnz_start, 0);
        assert_eq!(segs.last().unwrap().nnz_end, 33);
        assert!(segs.iter().all(|s| s.row_first == 0 && s.row_last == 0));
        assert!(segs.len() > 1, "dense row split: {segs:?}");
        // Column vector (N x 1, one nnz per row).
        let col = rp(&[1, 1, 1, 1, 1]);
        let segs = merge_segments(5, &col, 2);
        assert_eq!(segs.iter().map(|s| s.nnz_end - s.nnz_start).sum::<usize>(), 5);
        // More chunks than merge items.
        let tiny = rp(&[1]);
        let segs = merge_segments(1, &tiny, 100);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn load_balance_bounds_dedup_and_cover() {
        let mut lens = vec![1usize; 8];
        lens[0] = 64;
        let rp_arr = rp(&lens);
        let bounds = load_balance_bounds(8, &rp_arr, 4);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), 8);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
    }

    #[test]
    fn cache_hits_and_invalidation_are_counted() {
        let cache = PlanCache::new();
        let build = || SpmvPlan {
            requested: SpmvStrategy::Auto,
            resolved: ResolvedStrategy::Classical,
            workers: 2,
            row_bounds: vec![0, 1],
            segments: Vec::new(),
            work: Vec::new(),
            stats: RowStats::default(),
        };
        let p1 = cache.get_or_build(SpmvStrategy::Auto, 2, build);
        let p2 = cache.get_or_build(SpmvStrategy::Auto, 2, build);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats(), PlanCacheStats { builds: 1, hits: 1 });
        // Different key -> rebuild.
        let _ = cache.get_or_build(SpmvStrategy::Auto, 4, || SpmvPlan {
            workers: 4,
            ..build()
        });
        assert_eq!(cache.stats().builds, 2);
        // Invalidation -> rebuild on next lookup.
        cache.invalidate();
        let _ = cache.get_or_build(SpmvStrategy::Auto, 4, || SpmvPlan {
            workers: 4,
            ..build()
        });
        assert_eq!(cache.stats(), PlanCacheStats { builds: 3, hits: 1 });
        assert!(cache.stats().reuse_ratio() < 0.5);
        // A cloned cache starts empty.
        let fresh = cache.clone();
        assert_eq!(fresh.stats(), PlanCacheStats::default());
    }
}
