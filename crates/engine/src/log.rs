//! Event logging and profiling.
//!
//! Ginkgo makes loggers first-class citizens of the engine: any event — a
//! `LinOp` apply, a solver iteration, a criterion check, an allocation, a
//! worker-pool dispatch — can be observed by logger objects attached to an
//! executor or a solver. pyGinkgo surfaces the same machinery to Python
//! (`logger, result = solver.apply(b, x)`, Listing 1). This module provides:
//!
//! * the typed [`Event`] stream and the [`Logger`] trait observers implement;
//! * a [`LoggerRegistry`] so several loggers can attach to one emitter
//!   (executors and solvers each own a registry);
//! * three concrete loggers: [`Record`] (bounded in-memory event history),
//!   [`Stream`] (human-readable line writer), and [`Profiler`] (nested
//!   per-kernel wall/virtual-time aggregation that folds in the worker
//!   pool's dispatch/steal counters);
//! * the [`OpTimer`] RAII guard kernels and solvers use to emit paired
//!   `LinOpApplyStarted`/`LinOpApplyCompleted` events, and
//! * the per-solve [`ConvergenceLogger`] that records residual history and
//!   forwards iteration/solve events into the registries.
//!
//! Emission is designed to be free when nobody listens: every instrumented
//! site performs a single relaxed atomic load and branches away when the
//! relevant registry is empty.
//!
//! This event stream is also the input to the higher observability layers:
//! [`crate::metrics`] aggregates it into histograms, the
//! [`crate::telemetry`] flight recorder folds it into per-solve reports,
//! and the [`crate::trace`] tracer reassembles the paired
//! started/completed events into causal span trees.

use crate::executor::Executor;
use crate::stop::StopReason;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One observable engine event.
///
/// Events are emitted by instrumented kernels (`LinOpApply*`), solver
/// iteration loops (`IterationComplete`, `CriterionChecked`,
/// `SolveCompleted`), the executor's memory accountant
/// (`AllocationComplete`), and the worker pool (`PoolDispatch`).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// An instrumented operator apply (or kernel) began on the emitting
    /// thread.
    LinOpApplyStarted {
        /// Operator/kernel name, e.g. `"csr"` or `"dense::dot"`.
        op: &'static str,
    },
    /// The matching apply finished.
    LinOpApplyCompleted {
        /// Operator/kernel name, paired with the preceding `Started`.
        op: &'static str,
        /// Host wall-clock nanoseconds between start and completion.
        wall_ns: u64,
        /// Virtual (cost-model) nanoseconds charged to the executor's
        /// timeline between start and completion.
        virtual_ns: u64,
    },
    /// A solver finished one iteration and recorded a residual norm.
    IterationComplete {
        /// Solver name, e.g. `"solver::Cg"`.
        solver: &'static str,
        /// 1-based iteration number.
        iteration: usize,
        /// Residual norm recorded for this iteration.
        residual: f64,
    },
    /// A stopping criterion was evaluated.
    CriterionChecked {
        /// Solver name.
        solver: &'static str,
        /// Completed iterations at the time of the check.
        iteration: usize,
        /// Residual norm handed to the criterion.
        residual: f64,
        /// The criterion's verdict (`None` keeps iterating).
        stop: Option<StopReason>,
    },
    /// A solve finished (for any reason).
    SolveCompleted {
        /// Solver name.
        solver: &'static str,
        /// Fully completed iterations (see [`SolveRecord::iterations`]).
        iterations: usize,
        /// Final residual norm.
        residual: f64,
        /// Why the iteration stopped.
        reason: StopReason,
    },
    /// A batched solve finished: one event summarizes every system in the
    /// batch (per-system outcomes travel in the returned
    /// `BatchSolveRecord`, not in events).
    BatchSolveCompleted {
        /// Solver name, e.g. `"solver::BatchCg"`.
        solver: &'static str,
        /// Systems in the batch.
        systems: usize,
        /// Systems whose stop reason indicates convergence.
        converged: usize,
        /// Systems that stopped with `Breakdown`.
        breakdowns: usize,
        /// Iterations of the slowest system (the batch ran this many).
        iterations: usize,
    },
    /// The executor's memory accountant recorded an allocation.
    AllocationComplete {
        /// Allocation size in bytes.
        bytes: usize,
    },
    /// An SpMV execution plan was built (the inspector ran).
    ///
    /// Emitted at most once per (matrix, strategy, partition) by the plan
    /// cache; subsequent applies reuse the cached plan silently. The
    /// inspector's own wall/virtual cost is carried by the surrounding
    /// `LinOpApply*` pair for the `<op>::plan` kernel, so profilers can
    /// attribute inspection separately from apply time.
    PlanBuilt {
        /// Operator the plan belongs to, e.g. `"csr"`.
        op: &'static str,
        /// Resolved strategy name (`Auto` is resolved before emission).
        strategy: &'static str,
        /// Chunks/segments in the built partition.
        chunks: u64,
        /// Matrix rows inspected.
        rows: u64,
        /// Matrix nonzeros inspected.
        nnz: u64,
    },
    /// The worker pool executed one parallel kernel dispatch.
    PoolDispatch {
        /// Chunk closures executed by this dispatch.
        chunks: u64,
        /// Chunks executed by a lane other than their home queue's.
        steals: u64,
        /// Pool lanes (including the submitting thread).
        threads: usize,
        /// Host wall-clock nanoseconds the dispatch spent inside the pool
        /// (publication, chunk execution, and the completion handshake).
        wall_ns: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::LinOpApplyStarted { op } => write!(f, "apply {op} started"),
            Event::LinOpApplyCompleted {
                op,
                wall_ns,
                virtual_ns,
            } => write!(
                f,
                "apply {op} completed wall={wall_ns}ns virtual={virtual_ns}ns"
            ),
            Event::IterationComplete {
                solver,
                iteration,
                residual,
            } => write!(f, "{solver} iteration {iteration} residual {residual:.6e}"),
            Event::CriterionChecked {
                solver,
                iteration,
                residual,
                stop,
            } => write!(
                f,
                "{solver} criterion after {iteration} iters residual {residual:.6e} -> {stop:?}"
            ),
            Event::SolveCompleted {
                solver,
                iterations,
                residual,
                reason,
            } => write!(
                f,
                "{solver} solve completed: {iterations} iterations, residual {residual:.6e}, {reason:?}"
            ),
            Event::BatchSolveCompleted {
                solver,
                systems,
                converged,
                breakdowns,
                iterations,
            } => write!(
                f,
                "{solver} batch completed: {systems} systems ({converged} converged, \
                 {breakdowns} breakdowns) in {iterations} iterations"
            ),
            Event::AllocationComplete { bytes } => write!(f, "allocated {bytes} bytes"),
            Event::PlanBuilt {
                op,
                strategy,
                chunks,
                rows,
                nnz,
            } => write!(
                f,
                "plan {op} built: {strategy}, {chunks} chunks over {rows} rows / {nnz} nnz"
            ),
            Event::PoolDispatch {
                chunks,
                steals,
                threads,
                wall_ns,
            } => write!(
                f,
                "pool dispatch: {chunks} chunks, {steals} steals, {threads} lanes, {wall_ns}ns"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Logger trait and registry
// ---------------------------------------------------------------------------

/// An event observer (Ginkgo's `log::Logger`).
///
/// Implementations must be cheap and must not call back into the registry
/// they are attached to from `on_event` (the registry's lock is held during
/// delivery).
pub trait Logger: Send + Sync {
    /// Receives one event. Called synchronously from the emitting thread.
    fn on_event(&self, event: &Event);

    /// Short diagnostic name.
    fn name(&self) -> &'static str {
        "logger"
    }
}

#[derive(Default)]
struct RegistryInner {
    /// Mirror of `loggers.len()` readable without the lock; instrumented
    /// hot paths check it with one relaxed load before building events.
    count: AtomicUsize, // atomic: flag
    loggers: Mutex<Vec<Arc<dyn Logger>>>, // lock: log.loggers
}

/// A cheaply cloneable set of attached [`Logger`]s.
///
/// Executors and solvers each own one registry; clones share state, so a
/// logger added through any handle is seen by all. Delivery order follows
/// attachment order.
#[derive(Clone, Default)]
pub struct LoggerRegistry {
    inner: Arc<RegistryInner>,
}

impl fmt::Debug for LoggerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoggerRegistry")
            .field("loggers", &self.len())
            .finish()
    }
}

impl LoggerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        LoggerRegistry::default()
    }

    /// Attaches a logger. The same logger object may be attached to several
    /// registries, but attaching it twice to registries that both see a
    /// solver's events delivers those events twice.
    pub fn add(&self, logger: Arc<dyn Logger>) {
        let mut loggers = self
            .inner
            .loggers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loggers.push(logger);
        self.inner.count.store(loggers.len(), Ordering::Release);
    }

    /// Detaches a logger by object identity; returns true if it was found.
    pub fn remove(&self, logger: &Arc<dyn Logger>) -> bool {
        let mut loggers = self
            .inner
            .loggers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let before = loggers.len();
        loggers.retain(|l| !Arc::ptr_eq(l, logger));
        self.inner.count.store(loggers.len(), Ordering::Release);
        before != loggers.len()
    }

    /// Detaches every logger.
    pub fn clear(&self) {
        let mut loggers = self
            .inner
            .loggers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loggers.clear();
        self.inner.count.store(0, Ordering::Release);
    }

    /// Number of attached loggers.
    pub fn len(&self) -> usize {
        self.inner.count.load(Ordering::Acquire)
    }

    /// True when no logger is attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fast emptiness check for instrumented hot paths: one relaxed load.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.count.load(Ordering::Relaxed) > 0
    }

    /// Delivers `event` to every attached logger (no-op when empty).
    pub fn log(&self, event: &Event) {
        if !self.is_active() {
            return;
        }
        let loggers = self
            .inner
            .loggers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for logger in loggers.iter() {
            logger.on_event(event);
        }
    }
}

// ---------------------------------------------------------------------------
// OpTimer — RAII instrumentation guard
// ---------------------------------------------------------------------------

struct OpTimerInner {
    exec: Executor,
    op: &'static str,
    wall_start: Instant,
    virtual_start: u64,
}

/// RAII guard that brackets an instrumented operation with
/// [`Event::LinOpApplyStarted`]/[`Event::LinOpApplyCompleted`].
///
/// Construction emits `Started` and samples the host clock plus the
/// executor's virtual timeline; dropping the guard emits `Completed` with
/// both elapsed times. When the executor has no attached loggers the guard
/// is inert and costs a single atomic load.
pub struct OpTimer {
    inner: Option<OpTimerInner>,
}

impl OpTimer {
    /// Starts timing `op` on `exec` (inert if `exec` has no loggers).
    pub fn new(exec: &Executor, op: &'static str) -> Self {
        if !exec.loggers().is_active() {
            return OpTimer { inner: None };
        }
        exec.loggers().log(&Event::LinOpApplyStarted { op });
        OpTimer {
            inner: Some(OpTimerInner {
                exec: exec.clone(),
                op,
                wall_start: Instant::now(),
                virtual_start: exec.timeline().now_ns(),
            }),
        }
    }
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let wall_ns = inner.wall_start.elapsed().as_nanos() as u64;
            let virtual_ns = inner
                .exec
                .timeline()
                .now_ns()
                .saturating_sub(inner.virtual_start);
            inner.exec.loggers().log(&Event::LinOpApplyCompleted {
                op: inner.op,
                wall_ns,
                virtual_ns,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Record logger
// ---------------------------------------------------------------------------

struct RecordState {
    events: VecDeque<Event>,
    dropped: u64,
}

/// Bounded in-memory event history (Ginkgo's `log::Record`).
///
/// Keeps the most recent `capacity` events; older events are discarded and
/// counted in [`Record::dropped`].
pub struct Record {
    capacity: usize,
    state: Mutex<RecordState>, // lock: log.record.state
}

impl Default for Record {
    fn default() -> Self {
        Record::new()
    }
}

impl Record {
    /// Default event capacity.
    pub const DEFAULT_CAPACITY: usize = 16_384;

    /// Record with the default capacity.
    pub fn new() -> Self {
        Record::with_capacity(Record::DEFAULT_CAPACITY)
    }

    /// Record keeping at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Record {
            capacity: capacity.max(1),
            state: Mutex::new(RecordState {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, RecordState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.state().events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.state().events.len()
    }

    /// True when no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.state().dropped
    }

    /// Discards all retained events and resets the drop counter.
    pub fn reset(&self) {
        let mut s = self.state();
        s.events.clear();
        s.dropped = 0;
    }
}

impl Logger for Record {
    fn on_event(&self, event: &Event) {
        let mut s = self.state();
        if s.events.len() == self.capacity {
            s.events.pop_front();
            s.dropped += 1;
        }
        s.events.push_back(event.clone());
    }

    fn name(&self) -> &'static str {
        "record"
    }
}

// ---------------------------------------------------------------------------
// Stream logger
// ---------------------------------------------------------------------------

/// Human-readable line-per-event writer (Ginkgo's `log::Stream`).
pub struct Stream {
    out: Mutex<Box<dyn std::io::Write + Send>>, // lock: log.stream.out
}

impl Stream {
    /// Stream writing to an arbitrary sink.
    pub fn new(writer: impl std::io::Write + Send + 'static) -> Self {
        Stream {
            out: Mutex::new(Box::new(writer)),
        }
    }

    /// Stream writing to standard output.
    pub fn stdout() -> Self {
        Stream::new(std::io::stdout())
    }
}

impl Logger for Stream {
    fn on_event(&self, event: &Event) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // A full pipe is not worth panicking a solve over.
        let _ = writeln!(out, "[gko] {event}");
    }

    fn name(&self) -> &'static str {
        "stream"
    }
}

/// Cheaply cloneable in-memory byte sink for [`Stream`], used when the
/// rendered log text must be read back (tests, the facade's
/// `logger_data()`).
#[derive(Clone, Default)]
pub struct SharedBuf {
    bytes: Arc<Mutex<Vec<u8>>>, // lock: log.sharedbuf.bytes
}

impl SharedBuf {
    /// Creates an empty shared buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// The buffered text so far (lossy UTF-8).
    pub fn contents(&self) -> String {
        let bytes = self.bytes.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Profiler logger
// ---------------------------------------------------------------------------

/// Aggregated timing of one instrumented operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelProfile {
    /// Operation name (e.g. `"csr"`, `"dense::dot"`, `"solver::Cg"`).
    pub op: &'static str,
    /// Completed invocations.
    pub calls: u64,
    /// Inclusive host wall-clock nanoseconds (children included).
    pub wall_ns: u64,
    /// Inclusive virtual (cost-model) nanoseconds.
    pub virtual_ns: u64,
    /// Exclusive wall nanoseconds (time not attributed to nested
    /// instrumented operations on the same thread).
    pub self_wall_ns: u64,
    /// Exclusive virtual nanoseconds.
    pub self_virtual_ns: u64,
}

/// Everything a [`Profiler`] accumulated.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfilerSummary {
    /// Per-operation timing, sorted by descending inclusive virtual time.
    pub kernels: Vec<KernelProfile>,
    /// Solver iterations observed.
    pub iterations: u64,
    /// Criterion checks observed.
    pub criterion_checks: u64,
    /// Completed solves observed.
    pub solves: u64,
    /// SpMV plan (inspector) builds observed.
    pub plan_builds: u64,
    /// Worker-pool kernel dispatches observed.
    pub pool_dispatches: u64,
    /// Chunk closures executed across those dispatches.
    pub pool_chunks: u64,
    /// Chunks executed by a stealing lane.
    pub pool_steals: u64,
    /// Allocations observed.
    pub allocations: u64,
    /// Bytes across those allocations.
    pub allocated_bytes: u64,
}

struct ProfFrame {
    op: &'static str,
    child_wall_ns: u64,
    child_virtual_ns: u64,
}

#[derive(Default)]
struct ProfState {
    /// Per-thread stack of open `LinOpApplyStarted` frames; nesting is
    /// tracked per emitting thread so concurrent solves on one executor
    /// do not corrupt each other's attribution.
    stacks: HashMap<ThreadId, Vec<ProfFrame>>,
    kernels: BTreeMap<&'static str, KernelProfile>,
    counters: ProfilerSummary,
}

/// Nested per-kernel wall/virtual-time profiler.
///
/// Attach to an *executor's* registry so it observes the instrumented
/// kernels (`LinOpApply*` events); solver-level events and the worker pool's
/// [`Event::PoolDispatch`] counters are folded into the same summary. For
/// each operation the profiler tracks inclusive time and *exclusive* (self)
/// time, so a solver's time can be broken down into SpMV vs dot/axpy vs
/// bookkeeping.
#[derive(Default)]
pub struct Profiler {
    state: Mutex<ProfState>, // lock: log.profiler.state
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, ProfState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Aggregated timing for one operation, if it was observed.
    pub fn kernel(&self, op: &str) -> Option<KernelProfile> {
        self.state().kernels.get(op).cloned()
    }

    /// Snapshot of everything accumulated so far.
    pub fn summary(&self) -> ProfilerSummary {
        let s = self.state();
        let mut summary = s.counters.clone();
        summary.kernels = s.kernels.values().cloned().collect();
        summary
            .kernels
            .sort_by(|a, b| b.virtual_ns.cmp(&a.virtual_ns).then(a.op.cmp(b.op)));
        summary
    }

    /// Human-readable profile table.
    pub fn report(&self) -> String {
        let summary = self.summary();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>8} {:>14} {:>14} {:>14}\n",
            "op", "calls", "virtual_ns", "self_virt_ns", "wall_ns"
        ));
        for k in &summary.kernels {
            out.push_str(&format!(
                "{:<20} {:>8} {:>14} {:>14} {:>14}\n",
                k.op, k.calls, k.virtual_ns, k.self_virtual_ns, k.wall_ns
            ));
        }
        out.push_str(&format!(
            "iterations {} | checks {} | solves {} | plans {} | pool: {} dispatches, {} chunks, {} steals | allocs {} ({} bytes)\n",
            summary.iterations,
            summary.criterion_checks,
            summary.solves,
            summary.plan_builds,
            summary.pool_dispatches,
            summary.pool_chunks,
            summary.pool_steals,
            summary.allocations,
            summary.allocated_bytes,
        ));
        out
    }
}

impl Logger for Profiler {
    fn on_event(&self, event: &Event) {
        let mut s = self.state();
        match *event {
            Event::LinOpApplyStarted { op } => {
                s.stacks
                    .entry(std::thread::current().id())
                    .or_default()
                    .push(ProfFrame {
                        op,
                        child_wall_ns: 0,
                        child_virtual_ns: 0,
                    });
            }
            Event::LinOpApplyCompleted {
                op,
                wall_ns,
                virtual_ns,
            } => {
                let tid = std::thread::current().id();
                let (mut self_wall, mut self_virtual) = (wall_ns, virtual_ns);
                if let Some(stack) = s.stacks.get_mut(&tid) {
                    // Pop the matching frame (defensive: leave a mismatched
                    // stack alone rather than mis-attributing time).
                    if stack.last().is_some_and(|f| f.op == op) {
                        // lint: allow(panic): guarded by the `last()` check
                        // on the line above — the stack is non-empty here.
                        let frame = stack.pop().expect("frame present");
                        self_wall = wall_ns.saturating_sub(frame.child_wall_ns);
                        self_virtual = virtual_ns.saturating_sub(frame.child_virtual_ns);
                        if let Some(parent) = stack.last_mut() {
                            parent.child_wall_ns += wall_ns;
                            parent.child_virtual_ns += virtual_ns;
                        }
                    }
                    if s.stacks.get(&tid).is_some_and(|st| st.is_empty()) {
                        s.stacks.remove(&tid);
                    }
                }
                let entry = s.kernels.entry(op).or_insert_with(|| KernelProfile {
                    op,
                    ..KernelProfile::default()
                });
                entry.calls += 1;
                entry.wall_ns += wall_ns;
                entry.virtual_ns += virtual_ns;
                entry.self_wall_ns += self_wall;
                entry.self_virtual_ns += self_virtual;
            }
            Event::IterationComplete { .. } => s.counters.iterations += 1,
            Event::CriterionChecked { .. } => s.counters.criterion_checks += 1,
            Event::SolveCompleted { .. } => s.counters.solves += 1,
            // A batch counts as one solve: the profiler tracks pool-level
            // work, and a batch drains the pool like a single solve does.
            Event::BatchSolveCompleted { .. } => s.counters.solves += 1,
            Event::PlanBuilt { .. } => s.counters.plan_builds += 1,
            Event::AllocationComplete { bytes } => {
                s.counters.allocations += 1;
                s.counters.allocated_bytes += bytes as u64;
            }
            Event::PoolDispatch { chunks, steals, .. } => {
                s.counters.pool_dispatches += 1;
                s.counters.pool_chunks += chunks;
                s.counters.pool_steals += steals;
            }
        }
    }

    fn name(&self) -> &'static str {
        "profiler"
    }
}

// ---------------------------------------------------------------------------
// ConvergenceLogger
// ---------------------------------------------------------------------------

/// Snapshot of a finished (or in-progress) solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveRecord {
    /// Iterations *fully completed* before the solve stopped.
    ///
    /// This is the engine-wide convention at breakdown: an iteration that
    /// aborted partway (a non-finite or zero denominator detected before
    /// the solution update) is **not** counted, so every solver satisfies
    /// `residual_history.len() == iterations` on every exit path. When
    /// breakdown is detected *after* the solution update (e.g. a residual
    /// norm that went non-finite), the iteration did complete and is
    /// counted.
    pub iterations: usize,
    /// Residual norm before the first iteration.
    pub initial_residual: f64,
    /// Residual norm at the last check.
    pub final_residual: f64,
    /// One entry per completed-iteration residual check.
    pub residual_history: Vec<f64>,
    /// Why the iteration stopped.
    pub stop_reason: Option<StopReason>,
}

impl SolveRecord {
    /// True if the solve converged by a residual criterion.
    pub fn converged(&self) -> bool {
        self.stop_reason.map(StopReason::is_converged).unwrap_or(false)
    }

    /// The achieved reduction factor `final / initial` (1.0 if no progress
    /// information was recorded).
    pub fn reduction(&self) -> f64 {
        if self.initial_residual > 0.0 {
            self.final_residual / self.initial_residual
        } else {
            1.0
        }
    }
}

struct ConvergenceInner {
    record: SolveRecord,
    solver: &'static str,
    /// Registries that receive `IterationComplete`/`SolveCompleted` events
    /// (typically the owning solver's registry plus its executor's).
    sinks: Vec<LoggerRegistry>,
}

/// Cloneable handle to a solve log.
///
/// All lock acquisitions recover from poisoning: a panic inside a kernel on
/// some worker must not turn every later logger read into a second panic.
#[derive(Clone)]
pub struct ConvergenceLogger {
    inner: Arc<Mutex<ConvergenceInner>>, // lock: log.conv.inner
}

impl fmt::Debug for ConvergenceLogger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConvergenceLogger")
            .field("record", &self.snapshot())
            .finish()
    }
}

impl Default for ConvergenceLogger {
    fn default() -> Self {
        ConvergenceLogger {
            inner: Arc::new(Mutex::new(ConvergenceInner {
                record: SolveRecord::default(),
                solver: "solver",
                sinks: Vec::new(),
            })),
        }
    }
}

impl ConvergenceLogger {
    /// Creates an empty logger.
    pub fn new() -> Self {
        ConvergenceLogger::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ConvergenceInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Names the owning solver and adds a registry that receives the
    /// iteration/solve events this logger generates.
    pub fn bind_events(&self, solver: &'static str, sink: LoggerRegistry) {
        let mut inner = self.lock();
        inner.solver = solver;
        inner.sinks.push(sink);
    }

    /// Delivers an event to every bound registry. The logger's own lock is
    /// *not* held during delivery, so observers may safely call
    /// [`ConvergenceLogger::snapshot`].
    fn emit(&self, sinks: &[LoggerRegistry], event: &Event) {
        for sink in sinks {
            sink.log(event);
        }
    }

    fn active_sinks(inner: &ConvergenceInner) -> Vec<LoggerRegistry> {
        if inner.sinks.iter().any(|s| s.is_active()) {
            inner.sinks.clone()
        } else {
            Vec::new()
        }
    }

    /// Clears the record (called by solvers at the start of an apply).
    pub fn begin(&self, initial_residual: f64) {
        let mut inner = self.lock();
        inner.record = SolveRecord {
            initial_residual,
            final_residual: initial_residual,
            ..SolveRecord::default()
        };
    }

    /// Records one completed iteration's residual check and emits
    /// [`Event::IterationComplete`].
    pub fn record_residual(&self, iteration: usize, residual: f64) {
        let (solver, sinks) = {
            let mut inner = self.lock();
            inner.record.iterations = iteration;
            inner.record.final_residual = residual;
            inner.record.residual_history.push(residual);
            (inner.solver, Self::active_sinks(&inner))
        };
        self.emit(
            &sinks,
            &Event::IterationComplete {
                solver,
                iteration,
                residual,
            },
        );
    }

    /// Records the stop reason and emits [`Event::SolveCompleted`].
    pub fn finish(&self, iterations: usize, reason: StopReason) {
        let (solver, sinks, residual) = {
            let mut inner = self.lock();
            inner.record.iterations = iterations;
            inner.record.stop_reason = Some(reason);
            (
                inner.solver,
                Self::active_sinks(&inner),
                inner.record.final_residual,
            )
        };
        self.emit(
            &sinks,
            &Event::SolveCompleted {
                solver,
                iterations,
                residual,
                reason,
            },
        );
    }

    /// Copies out the current record.
    pub fn snapshot(&self) -> SolveRecord {
        self.lock().record.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let log = ConvergenceLogger::new();
        log.begin(10.0);
        log.record_residual(1, 5.0);
        log.record_residual(2, 1e-7);
        log.finish(2, StopReason::ResidualReduction);
        let rec = log.snapshot();
        assert_eq!(rec.iterations, 2);
        assert_eq!(rec.initial_residual, 10.0);
        assert_eq!(rec.final_residual, 1e-7);
        assert_eq!(rec.residual_history, vec![5.0, 1e-7]);
        assert!(rec.converged());
        assert!((rec.reduction() - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn begin_resets_previous_solve() {
        let log = ConvergenceLogger::new();
        log.begin(1.0);
        log.record_residual(1, 0.5);
        log.finish(1, StopReason::MaxIterations);
        log.begin(2.0);
        let rec = log.snapshot();
        assert_eq!(rec.iterations, 0);
        assert!(rec.residual_history.is_empty());
        assert_eq!(rec.stop_reason, None);
        assert!(!rec.converged());
    }

    #[test]
    fn clone_shares_state() {
        let log = ConvergenceLogger::new();
        let log2 = log.clone();
        log.begin(1.0);
        log2.record_residual(1, 0.1);
        assert_eq!(log.snapshot().final_residual, 0.1);
    }

    #[test]
    fn reduction_handles_zero_initial() {
        let rec = SolveRecord::default();
        assert_eq!(rec.reduction(), 1.0);
    }

    #[test]
    fn poisoned_logger_stays_usable() {
        let log = ConvergenceLogger::new();
        log.begin(1.0);
        // Poison the mutex by panicking while holding the lock.
        let log2 = log.clone();
        let handle = std::thread::spawn(move || {
            let _guard = log2.inner.lock().unwrap();
            panic!("kernel panic while logging");
        });
        assert!(handle.join().is_err());
        // Every method must recover the lock instead of double-panicking.
        log.record_residual(1, 0.5);
        log.finish(1, StopReason::MaxIterations);
        let rec = log.snapshot();
        assert_eq!(rec.final_residual, 0.5);
        assert_eq!(rec.stop_reason, Some(StopReason::MaxIterations));
    }

    #[test]
    fn bound_logger_forwards_iteration_and_solve_events() {
        let log = ConvergenceLogger::new();
        let registry = LoggerRegistry::new();
        let record = Arc::new(Record::new());
        registry.add(record.clone());
        log.bind_events("solver::Test", registry);
        log.begin(2.0);
        log.record_residual(1, 1.0);
        log.finish(1, StopReason::ResidualReduction);
        let events = record.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::IterationComplete {
                solver: "solver::Test",
                iteration: 1,
                residual: 1.0
            }
        );
        assert_eq!(
            events[1],
            Event::SolveCompleted {
                solver: "solver::Test",
                iterations: 1,
                residual: 1.0,
                reason: StopReason::ResidualReduction,
            }
        );
    }

    #[test]
    fn registry_add_remove_clear() {
        let registry = LoggerRegistry::new();
        assert!(registry.is_empty());
        assert!(!registry.is_active());
        let a: Arc<dyn Logger> = Arc::new(Record::new());
        let b: Arc<dyn Logger> = Arc::new(Record::new());
        registry.add(a.clone());
        registry.add(b.clone());
        assert_eq!(registry.len(), 2);
        assert!(registry.is_active());
        assert!(registry.remove(&a));
        assert!(!registry.remove(&a), "already removed");
        assert_eq!(registry.len(), 1);
        registry.clear();
        assert!(registry.is_empty());
    }

    #[test]
    fn record_is_bounded_and_counts_drops() {
        let record = Record::with_capacity(3);
        for i in 0..5 {
            record.on_event(&Event::AllocationComplete { bytes: i });
        }
        assert_eq!(record.len(), 3);
        assert_eq!(record.dropped(), 2);
        let events = record.events();
        assert_eq!(events[0], Event::AllocationComplete { bytes: 2 });
        assert_eq!(events[2], Event::AllocationComplete { bytes: 4 });
        record.reset();
        assert!(record.is_empty());
        assert_eq!(record.dropped(), 0);
    }

    #[test]
    fn stream_renders_one_line_per_event() {
        let buf = SharedBuf::new();
        let stream = Stream::new(buf.clone());
        stream.on_event(&Event::LinOpApplyStarted { op: "csr" });
        stream.on_event(&Event::IterationComplete {
            solver: "solver::Cg",
            iteration: 2,
            residual: 0.25,
        });
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("apply csr started"), "{text}");
        assert!(lines[1].contains("solver::Cg iteration 2"), "{text}");
    }

    #[test]
    fn profiler_attributes_nested_self_time() {
        let profiler = Profiler::new();
        // outer (inclusive 100) wraps inner (inclusive 30).
        profiler.on_event(&Event::LinOpApplyStarted { op: "outer" });
        profiler.on_event(&Event::LinOpApplyStarted { op: "inner" });
        profiler.on_event(&Event::LinOpApplyCompleted {
            op: "inner",
            wall_ns: 40,
            virtual_ns: 30,
        });
        profiler.on_event(&Event::LinOpApplyCompleted {
            op: "outer",
            wall_ns: 100,
            virtual_ns: 100,
        });
        let outer = profiler.kernel("outer").unwrap();
        let inner = profiler.kernel("inner").unwrap();
        assert_eq!(outer.virtual_ns, 100);
        assert_eq!(outer.self_virtual_ns, 70);
        assert_eq!(outer.self_wall_ns, 60);
        assert_eq!(inner.virtual_ns, 30);
        assert_eq!(inner.self_virtual_ns, 30);
        let summary = profiler.summary();
        assert_eq!(summary.kernels[0].op, "outer", "sorted by virtual time");
        assert!(profiler.report().contains("outer"));
    }

    #[test]
    fn profiler_folds_counters() {
        let profiler = Profiler::new();
        profiler.on_event(&Event::PoolDispatch {
            chunks: 8,
            steals: 2,
            threads: 4,
            wall_ns: 100,
        });
        profiler.on_event(&Event::AllocationComplete { bytes: 256 });
        profiler.on_event(&Event::IterationComplete {
            solver: "solver::Cg",
            iteration: 1,
            residual: 1.0,
        });
        profiler.on_event(&Event::CriterionChecked {
            solver: "solver::Cg",
            iteration: 1,
            residual: 1.0,
            stop: None,
        });
        profiler.on_event(&Event::SolveCompleted {
            solver: "solver::Cg",
            iterations: 1,
            residual: 1.0,
            reason: StopReason::MaxIterations,
        });
        profiler.on_event(&Event::PlanBuilt {
            op: "csr",
            strategy: "merge_path",
            chunks: 16,
            rows: 100,
            nnz: 500,
        });
        let s = profiler.summary();
        assert_eq!(s.pool_dispatches, 1);
        assert_eq!(s.pool_chunks, 8);
        assert_eq!(s.pool_steals, 2);
        assert_eq!(s.allocations, 1);
        assert_eq!(s.allocated_bytes, 256);
        assert_eq!(s.iterations, 1);
        assert_eq!(s.criterion_checks, 1);
        assert_eq!(s.solves, 1);
        assert_eq!(s.plan_builds, 1);
        assert!(profiler.report().contains("plans 1"));
    }

    #[test]
    fn op_timer_is_inert_without_loggers() {
        let exec = Executor::reference();
        assert!(!exec.loggers().is_active());
        let _t = OpTimer::new(&exec, "noop"); // must not emit or panic
    }

    #[test]
    fn op_timer_emits_paired_events() {
        let exec = Executor::reference();
        let record = Arc::new(Record::new());
        exec.add_logger(record.clone());
        {
            let _t = OpTimer::new(&exec, "csr");
            exec.timeline().advance_ns(500.0);
        }
        exec.clear_loggers();
        let events = record.events();
        assert_eq!(events[0], Event::LinOpApplyStarted { op: "csr" });
        match events[1] {
            Event::LinOpApplyCompleted {
                op,
                virtual_ns,
                ..
            } => {
                assert_eq!(op, "csr");
                assert_eq!(virtual_ns, 500);
            }
            ref other => panic!("expected completion, got {other:?}"),
        }
    }
}
