//! Convergence logging.
//!
//! Ginkgo attaches logger objects to solvers; pyGinkgo's `solver.apply`
//! returns the logger to Python (Listing 1: `logger, result = ...`). The
//! engine-side [`ConvergenceLogger`] is a cheaply cloneable handle that
//! solvers write per-iteration residual data into.

use crate::stop::StopReason;
use std::sync::{Arc, Mutex};

/// Snapshot of a finished (or in-progress) solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveRecord {
    /// Completed iterations.
    pub iterations: usize,
    /// Residual norm before the first iteration.
    pub initial_residual: f64,
    /// Residual norm at the last check.
    pub final_residual: f64,
    /// One entry per residual check (GMRES checks after every Hessenberg
    /// update, so there may be more entries than iterations elsewhere).
    pub residual_history: Vec<f64>,
    /// Why the iteration stopped.
    pub stop_reason: Option<StopReason>,
}

impl SolveRecord {
    /// True if the solve converged by a residual criterion.
    pub fn converged(&self) -> bool {
        self.stop_reason.map(StopReason::is_converged).unwrap_or(false)
    }

    /// The achieved reduction factor `final / initial` (1.0 if no progress
    /// information was recorded).
    pub fn reduction(&self) -> f64 {
        if self.initial_residual > 0.0 {
            self.final_residual / self.initial_residual
        } else {
            1.0
        }
    }
}

/// Cloneable handle to a solve log.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceLogger {
    inner: Arc<Mutex<SolveRecord>>,
}

impl ConvergenceLogger {
    /// Creates an empty logger.
    pub fn new() -> Self {
        ConvergenceLogger::default()
    }

    /// Clears the record (called by solvers at the start of an apply).
    pub fn begin(&self, initial_residual: f64) {
        let mut rec = self.inner.lock().expect("logger poisoned");
        *rec = SolveRecord {
            initial_residual,
            final_residual: initial_residual,
            ..SolveRecord::default()
        };
    }

    /// Records one residual check.
    pub fn record_residual(&self, iteration: usize, residual: f64) {
        let mut rec = self.inner.lock().expect("logger poisoned");
        rec.iterations = iteration;
        rec.final_residual = residual;
        rec.residual_history.push(residual);
    }

    /// Records the stop reason.
    pub fn finish(&self, iterations: usize, reason: StopReason) {
        let mut rec = self.inner.lock().expect("logger poisoned");
        rec.iterations = iterations;
        rec.stop_reason = Some(reason);
    }

    /// Copies out the current record.
    pub fn snapshot(&self) -> SolveRecord {
        self.inner.lock().expect("logger poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let log = ConvergenceLogger::new();
        log.begin(10.0);
        log.record_residual(1, 5.0);
        log.record_residual(2, 1e-7);
        log.finish(2, StopReason::ResidualReduction);
        let rec = log.snapshot();
        assert_eq!(rec.iterations, 2);
        assert_eq!(rec.initial_residual, 10.0);
        assert_eq!(rec.final_residual, 1e-7);
        assert_eq!(rec.residual_history, vec![5.0, 1e-7]);
        assert!(rec.converged());
        assert!((rec.reduction() - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn begin_resets_previous_solve() {
        let log = ConvergenceLogger::new();
        log.begin(1.0);
        log.record_residual(1, 0.5);
        log.finish(1, StopReason::MaxIterations);
        log.begin(2.0);
        let rec = log.snapshot();
        assert_eq!(rec.iterations, 0);
        assert!(rec.residual_history.is_empty());
        assert_eq!(rec.stop_reason, None);
        assert!(!rec.converged());
    }

    #[test]
    fn clone_shares_state() {
        let log = ConvergenceLogger::new();
        let log2 = log.clone();
        log.begin(1.0);
        log2.record_residual(1, 0.1);
        assert_eq!(log.snapshot().final_residual, 0.1);
    }

    #[test]
    fn reduction_handles_zero_initial() {
        let rec = SolveRecord::default();
        assert_eq!(rec.reduction(), 1.0);
    }
}
