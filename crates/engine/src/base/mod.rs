//! Fundamental building blocks: value/index type traits, dimensions,
//! executor-tracked arrays, and the error type.

pub mod array;
pub mod dim;
pub mod error;
pub mod types;
