//! Error handling for the engine.

use crate::base::dim::Dim2;
use std::fmt;

/// Errors produced by engine operations.
#[derive(Clone, Debug, PartialEq)]
pub enum GkoError {
    /// Operand sizes are incompatible for the requested operation.
    DimensionMismatch {
        /// Operation that was attempted (e.g. `"apply"`, `"dot"`).
        op: &'static str,
        /// Size the operation expected.
        expected: Dim2,
        /// Size that was supplied.
        actual: Dim2,
    },
    /// Structurally invalid input (unsorted indices, out-of-range column,
    /// inconsistent array lengths, ...).
    BadInput(String),
    /// Operands live on different executors and the operation does not copy
    /// implicitly.
    ExecutorMismatch {
        /// Executor of the first operand.
        left: String,
        /// Executor of the second operand.
        right: String,
    },
    /// Numerical breakdown: a pivot, rho, or denominator became zero or
    /// non-finite.
    Breakdown(&'static str),
    /// A matrix required by a factorization or direct solve is singular.
    Singular {
        /// Row/column at which singularity was detected.
        at: usize,
    },
    /// Feature not supported by this build (e.g. unknown config key).
    Unsupported(String),
    /// Configuration tree could not be interpreted.
    InvalidConfig(String),
}

impl fmt::Display for GkoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GkoError::DimensionMismatch { op, expected, actual } => write!(
                f,
                "dimension mismatch in {op}: expected {expected}, got {actual}"
            ),
            GkoError::BadInput(msg) => write!(f, "bad input: {msg}"),
            GkoError::ExecutorMismatch { left, right } => {
                write!(f, "executor mismatch: {left} vs {right}")
            }
            GkoError::Breakdown(what) => write!(f, "numerical breakdown in {what}"),
            GkoError::Singular { at } => write!(f, "singular matrix (zero pivot at {at})"),
            GkoError::Unsupported(what) => write!(f, "unsupported: {what}"),
            GkoError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for GkoError {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, GkoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GkoError::DimensionMismatch {
            op: "apply",
            expected: Dim2::new(3, 1),
            actual: Dim2::new(4, 1),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in apply: expected (3 x 1), got (4 x 1)"
        );
        assert!(GkoError::Singular { at: 7 }.to_string().contains('7'));
        assert!(GkoError::Breakdown("cg rho").to_string().contains("cg rho"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GkoError::BadInput("x".into()));
    }
}
