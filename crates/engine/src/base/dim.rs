//! Two-dimensional size descriptor, mirroring Ginkgo's `gko::dim<2>`.

use std::fmt;

/// The (rows, columns) size of a linear operator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Dim2 {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Dim2 {
    /// Creates a size.
    pub const fn new(rows: usize, cols: usize) -> Self {
        Dim2 { rows, cols }
    }

    /// A square size.
    pub const fn square(n: usize) -> Self {
        Dim2 { rows: n, cols: n }
    }

    /// Total number of entries of a dense operator of this size.
    pub const fn count(&self) -> usize {
        self.rows * self.cols
    }

    /// True for square operators.
    pub const fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The transposed size.
    pub const fn transposed(&self) -> Dim2 {
        Dim2 {
            rows: self.cols,
            cols: self.rows,
        }
    }
}

impl fmt::Display for Dim2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} x {})", self.rows, self.cols)
    }
}

impl From<(usize, usize)> for Dim2 {
    fn from((rows, cols): (usize, usize)) -> Self {
        Dim2 { rows, cols }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let d = Dim2::new(3, 4);
        assert_eq!(d.rows, 3);
        assert_eq!(d.cols, 4);
        assert_eq!(d.count(), 12);
        assert!(!d.is_square());
        assert!(Dim2::square(5).is_square());
    }

    #[test]
    fn transpose_swaps() {
        assert_eq!(Dim2::new(2, 7).transposed(), Dim2::new(7, 2));
    }

    #[test]
    fn display_format() {
        assert_eq!(Dim2::new(10, 20).to_string(), "(10 x 20)");
    }

    #[test]
    fn from_tuple() {
        assert_eq!(Dim2::from((1, 2)), Dim2::new(1, 2));
    }
}
