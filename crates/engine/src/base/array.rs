//! Executor-bound flat storage, mirroring Ginkgo's `gko::array<T>`.
//!
//! An [`Array`] owns a contiguous buffer that logically lives on its
//! executor's memory space. Because the device executors are simulations,
//! the bytes are physically in host memory, but every allocation is tracked
//! by the owning executor's memory accountant and every cross-executor copy
//! is charged to the simulated transfer model — so programs observe the same
//! costs and ownership rules real Ginkgo enforces.

use crate::base::error::{GkoError, Result};
use crate::executor::Executor;

/// A contiguous, executor-bound buffer of `T`.
#[derive(Debug)]
pub struct Array<T> {
    exec: Executor,
    data: Vec<T>,
}

impl<T: Copy + Default + Send + Sync> Array<T> {
    /// Allocates `len` default-initialized elements on `exec`.
    pub fn new(exec: &Executor, len: usize) -> Self {
        exec.track_alloc(len * std::mem::size_of::<T>());
        Array {
            exec: exec.clone(),
            data: vec![T::default(); len],
        }
    }

    /// Takes ownership of a host vector, placing it on `exec`.
    ///
    /// If `exec` is a device executor this charges a host-to-device transfer.
    pub fn from_vec(exec: &Executor, data: Vec<T>) -> Self {
        let bytes = data.len() * std::mem::size_of::<T>();
        exec.track_alloc(bytes);
        exec.charge_upload(bytes);
        Array {
            exec: exec.clone(),
            data,
        }
    }

    /// Copies this array to another executor, charging the transfer.
    pub fn copy_to(&self, exec: &Executor) -> Array<T> {
        let bytes = self.data.len() * std::mem::size_of::<T>();
        exec.track_alloc(bytes);
        if !self.exec.same_memory_space(exec) {
            // Device->device or host<->device: pay the slower link.
            self.exec.charge_download(bytes);
            exec.charge_upload(bytes);
        }
        Array {
            exec: exec.clone(),
            data: self.data.clone(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The executor this array lives on.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Read access to the underlying buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Overwrites every element.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Validates that `self` and `other` are on the same executor.
    pub fn check_same_executor<U>(&self, other: &Array<U>) -> Result<()> {
        if self.exec.same_memory_space(&other.exec) {
            Ok(())
        } else {
            Err(GkoError::ExecutorMismatch {
                left: self.exec.name().to_owned(),
                right: other.exec.name().to_owned(),
            })
        }
    }

    /// Consumes the array and returns the host vector (charging a download
    /// when leaving a device).
    pub fn into_vec(self) -> Vec<T> {
        let bytes = self.data.len() * std::mem::size_of::<T>();
        self.exec.charge_download(bytes);
        // Drop accounting happens manually here since we bypass Drop.
        self.exec.track_dealloc(bytes);
        let mut me = std::mem::ManuallyDrop::new(self);
        std::mem::take(&mut me.data)
    }
}

impl<T> Drop for Array<T> {
    fn drop(&mut self) {
        self.exec
            .track_dealloc(self.data.len() * std::mem::size_of::<T>());
    }
}

impl<T: Copy + Default + Send + Sync> Clone for Array<T> {
    fn clone(&self) -> Self {
        self.exec
            .track_alloc(self.data.len() * std::mem::size_of::<T>());
        Array {
            exec: self.exec.clone(),
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;

    #[test]
    fn allocation_is_tracked() {
        let exec = Executor::reference();
        let base = exec.bytes_allocated();
        let a = Array::<f64>::new(&exec, 100);
        assert_eq!(exec.bytes_allocated(), base + 800);
        drop(a);
        assert_eq!(exec.bytes_allocated(), base);
    }

    #[test]
    fn from_vec_keeps_contents() {
        let exec = Executor::reference();
        let a = Array::from_vec(&exec, vec![1.0f32, 2.0, 3.0]);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn copy_to_device_charges_transfer() {
        let host = Executor::reference();
        let dev = Executor::cuda(0);
        let a = Array::from_vec(&host, vec![0u8; 1 << 20]);
        let before = dev.timeline().snapshot();
        let b = a.copy_to(&dev);
        let delta = dev.timeline().snapshot().since(&before);
        assert_eq!(delta.copies, 1);
        assert_eq!(delta.bytes_copied, 1 << 20);
        assert!(delta.ns > 0);
        assert_eq!(b.as_slice().len(), 1 << 20);
    }

    #[test]
    fn copy_within_same_space_is_free_of_transfer() {
        let host = Executor::reference();
        let omp = Executor::omp(4);
        let a = Array::from_vec(&host, vec![1.0f64; 10]);
        let before = omp.timeline().snapshot();
        let _b = a.copy_to(&omp);
        let delta = omp.timeline().snapshot().since(&before);
        assert_eq!(delta.copies, 0, "host executors share the memory space");
    }

    #[test]
    fn executor_mismatch_is_detected() {
        let host = Executor::reference();
        let dev = Executor::cuda(0);
        let a = Array::from_vec(&host, vec![1.0f64; 4]);
        let b = Array::from_vec(&dev, vec![1.0f64; 4]);
        assert!(a.check_same_executor(&b).is_err());
        let c = Array::from_vec(&host, vec![2.0f64; 4]);
        assert!(a.check_same_executor(&c).is_ok());
    }

    #[test]
    fn into_vec_returns_data_and_balances_accounting() {
        let exec = Executor::reference();
        let base = exec.bytes_allocated();
        let a = Array::from_vec(&exec, vec![5i32; 8]);
        let v = a.into_vec();
        assert_eq!(v, vec![5i32; 8]);
        assert_eq!(exec.bytes_allocated(), base);
    }

    #[test]
    fn fill_overwrites() {
        let exec = Executor::reference();
        let mut a = Array::<f64>::new(&exec, 5);
        a.fill(2.5);
        assert!(a.as_slice().iter().all(|&x| x == 2.5));
    }
}
