//! Value and index type abstractions.
//!
//! Ginkgo instantiates its templated kernels for every value/index type
//! combination (paper §5.1, Table 1: `half`/`float`/`double` values and
//! `int32`/`int64` indices). The [`Value`] and [`Index`] traits are the Rust
//! equivalent; every kernel in this crate is generic over them and the
//! `pyginkgo` facade pre-instantiates the same combinations Table 1 lists.

use pygko_half::Half;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating point value type usable in kernels.
///
/// Arithmetic happens in the native type (so `half` really rounds like
/// half); *reductions* (dot products, norms) accumulate in `f64` via
/// [`Value::to_f64`] for accuracy and determinism, mirroring how GPU kernels
/// accumulate in a wider register type.
pub trait Value:
    Copy
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// Ginkgo/pyGinkgo type name: `"half"`, `"float"`, or `"double"`.
    const NAME: &'static str;
    /// Storage size in bytes (Table 1's "Size" column).
    const BYTES: usize;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion from `f64` (rounds to the type's precision).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// True if the value is neither NaN nor infinite.
    fn is_finite(self) -> bool;

    /// Unit roundoff of the type, used by default solver tolerances.
    fn eps() -> f64;
}

impl Value for f64 {
    const NAME: &'static str = "double";
    const BYTES: usize = 8;

    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    fn eps() -> f64 {
        f64::EPSILON
    }
}

impl Value for f32 {
    const NAME: &'static str = "float";
    const BYTES: usize = 4;

    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn abs(self) -> Self {
        f32::abs(self)
    }
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    fn eps() -> f64 {
        f32::EPSILON as f64
    }
}

impl Value for Half {
    const NAME: &'static str = "half";
    const BYTES: usize = 2;

    fn zero() -> Self {
        Half::ZERO
    }
    fn one() -> Self {
        Half::ONE
    }
    fn from_f64(v: f64) -> Self {
        Half::from_f64(v)
    }
    fn to_f64(self) -> f64 {
        Half::to_f64(self)
    }
    fn abs(self) -> Self {
        Half::abs(self)
    }
    fn sqrt(self) -> Self {
        Half::sqrt(self)
    }
    fn is_finite(self) -> bool {
        Half::is_finite(self)
    }
    fn eps() -> f64 {
        9.765625e-4 // 2^-10
    }
}

/// An integer index type for sparse structure arrays.
pub trait Index:
    Copy + PartialEq + Eq + PartialOrd + Ord + Debug + Display + Default + Send + Sync + 'static
{
    /// Ginkgo/pyGinkgo type name: `"int32"` or `"int64"`.
    const NAME: &'static str;
    /// Storage size in bytes.
    const BYTES: usize;
    /// Largest representable index.
    const MAX_USIZE: usize;

    /// Converts from `usize`, panicking on overflow (structure arrays are
    /// validated at construction, so overflow here is a program bug).
    fn from_usize(v: usize) -> Self;
    /// Converts to `usize` (indices are always non-negative in valid data).
    fn to_usize(self) -> usize;
    /// Zero.
    fn zero() -> Self {
        Self::from_usize(0)
    }
}

impl Index for i32 {
    const NAME: &'static str = "int32";
    const BYTES: usize = 4;
    const MAX_USIZE: usize = i32::MAX as usize;

    fn from_usize(v: usize) -> Self {
        i32::try_from(v).expect("index exceeds int32 range")
    }
    fn to_usize(self) -> usize {
        debug_assert!(self >= 0, "negative index");
        self as usize
    }
}

impl Index for i64 {
    const NAME: &'static str = "int64";
    const BYTES: usize = 8;
    const MAX_USIZE: usize = i64::MAX as usize;

    fn from_usize(v: usize) -> Self {
        i64::try_from(v).expect("index exceeds int64 range")
    }
    fn to_usize(self) -> usize {
        debug_assert!(self >= 0, "negative index");
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table_1() {
        assert_eq!(<Half as Value>::NAME, "half");
        assert_eq!(<f32 as Value>::NAME, "float");
        assert_eq!(<f64 as Value>::NAME, "double");
        assert_eq!(<i32 as Index>::NAME, "int32");
        assert_eq!(<i64 as Index>::NAME, "int64");
    }

    #[test]
    fn sizes_match_table_1() {
        assert_eq!(<Half as Value>::BYTES, 2);
        assert_eq!(<f32 as Value>::BYTES, 4);
        assert_eq!(<f64 as Value>::BYTES, 8);
        assert_eq!(<i32 as Index>::BYTES, 4);
        assert_eq!(<i64 as Index>::BYTES, 8);
    }

    #[test]
    fn value_roundtrip_through_f64() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(Half::from_f64(0.25).to_f64(), 0.25);
        assert_eq!(f64::from_f64(-2.5).to_f64(), -2.5);
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(i32::from_usize(42).to_usize(), 42);
        assert_eq!(i64::from_usize(1 << 40).to_usize(), 1 << 40);
    }

    #[test]
    #[should_panic(expected = "index exceeds int32 range")]
    fn int32_overflow_panics() {
        let _ = i32::from_usize(usize::MAX);
    }

    #[test]
    fn eps_ordering() {
        assert!(Half::eps() > f32::eps());
        assert!(f32::eps() > f64::eps());
    }
}
