//! Live telemetry plane: scrape endpoint, per-lane pool utilization, and an
//! anomaly-detecting flight recorder.
//!
//! [`crate::log`] streams raw events and [`crate::metrics`] aggregates them;
//! this module makes that state *continuously observable* without a human
//! attaching a profiler, using nothing beyond `std`:
//!
//! * [`TelemetryServer`] (see [`crate::Executor::serve_telemetry`]) — a
//!   blocking-accept HTTP exporter serving `GET /metrics` (Prometheus text),
//!   `GET /healthz` (liveness + sanitizer arm state, JSON), `GET /runs`
//!   (recent flight-recorder reports, JSON), `GET /traces` +
//!   `GET /traces/<id>` (the tracer's tail-sampled span trees, JSON or
//!   Chrome-trace), and `GET /profile` + `GET /profile/diff` (the
//!   continuous profiler's flame aggregates, JSON or folded stacks);
//! * [`FlightRecorder`] (see [`crate::Executor::enable_flight_recorder`]) —
//!   a bounded ring of per-solve [`FlightReport`]s screened by stagnation /
//!   divergence, lane-imbalance, and latency-drift detectors
//!   ([`DetectorConfig`] holds the thresholds);
//! * [`prom::validate`] — a strict in-tree validator for the Prometheus
//!   text format, used by tests and CI to prove scrapes are never torn.
//!
//! The inert path is unchanged: with no exporter or recorder attached,
//! instrumented sites still cost one relaxed atomic load.

pub mod http;
pub mod prom;
pub mod recorder;

pub use http::TelemetryServer;
pub use recorder::{
    Anomaly, BatchOutcome, DetectorConfig, FlightRecorder, FlightReport, KernelLatency,
    ResidualSummary, SystemContext, DEFAULT_RUNS_LIMIT,
};

use crate::config::{json, Config};
use crate::executor::Executor;
use std::fmt::Write as _;

/// Renders the full `/metrics` document for `exec`: the metrics registry's
/// exposition (when enabled), one labelled series triple per pool lane, and
/// the flight recorder's report gauge.
pub fn render_prometheus(exec: &Executor) -> String {
    let mut out = exec
        .metrics_snapshot()
        .map(|s| s.to_prometheus())
        .unwrap_or_default();
    let lanes = exec.pool_lane_stats();
    if !lanes.is_empty() {
        for (metric, help, field) in [
            (
                "gko_pool_lane_chunks_total",
                "Chunk closures executed per pool lane.",
                0usize,
            ),
            (
                "gko_pool_lane_steals_total",
                "Chunks stolen from another lane's queue, per executing lane.",
                1,
            ),
            (
                "gko_pool_lane_busy_ns_total",
                "Wall nanoseconds spent draining chunks, per pool lane.",
                2,
            ),
        ] {
            let _ = writeln!(out, "# HELP {metric} {help}");
            let _ = writeln!(out, "# TYPE {metric} counter");
            for (lane, stats) in lanes.iter().enumerate() {
                let value = match field {
                    0 => stats.chunks,
                    1 => stats.steals,
                    _ => stats.busy_ns,
                };
                let _ = writeln!(out, "{metric}{{lane=\"{lane}\"}} {value}");
            }
        }
    }
    if let Some(recorder) = exec.flight_recorder() {
        let _ = writeln!(
            out,
            "# HELP gko_flight_reports Flight-recorder reports currently retained."
        );
        let _ = writeln!(out, "# TYPE gko_flight_reports gauge");
        let _ = writeln!(out, "gko_flight_reports {}", recorder.reports_len());
    }
    let tracer = exec.tracer();
    if tracer.is_armed() {
        let _ = writeln!(
            out,
            "# HELP gko_trace_retained Span trees currently retained in the trace store."
        );
        let _ = writeln!(out, "# TYPE gko_trace_retained gauge");
        let _ = writeln!(out, "gko_trace_retained {}", tracer.retained());
        let _ = writeln!(
            out,
            "# HELP gko_trace_drops_total Traces discarded by tail-based sampling."
        );
        let _ = writeln!(out, "# TYPE gko_trace_drops_total counter");
        let _ = writeln!(out, "gko_trace_drops_total {}", tracer.drops());
        let _ = writeln!(
            out,
            "# HELP gko_trace_truncated_spans_total Spans dropped because a trace hit its span cap."
        );
        let _ = writeln!(out, "# TYPE gko_trace_truncated_spans_total counter");
        let _ = writeln!(
            out,
            "gko_trace_truncated_spans_total {}",
            tracer.truncated_spans()
        );
    }
    let profile = exec.profile();
    if profile.is_armed() {
        let _ = writeln!(
            out,
            "# HELP gko_profile_nodes Flame nodes allocated in the profiler's live window."
        );
        let _ = writeln!(out, "# TYPE gko_profile_nodes gauge");
        let _ = writeln!(out, "gko_profile_nodes {}", profile.node_count());
        let _ = writeln!(
            out,
            "# HELP gko_profile_evicted_total Spans dropped because the profiler's node cap was reached."
        );
        let _ = writeln!(out, "# TYPE gko_profile_evicted_total counter");
        let _ = writeln!(out, "gko_profile_evicted_total {}", profile.evicted());
        let _ = writeln!(
            out,
            "# HELP gko_profile_solves_total Solves folded into the flame aggregate since arming."
        );
        let _ = writeln!(out, "# TYPE gko_profile_solves_total counter");
        let _ = writeln!(out, "gko_profile_solves_total {}", profile.solves_total());
    }
    // Build/uptime identity gauges, unconditional so every scrape carries
    // them (the standard `build_info` idiom: constant 1, facts as labels).
    let build_profile = if cfg!(debug_assertions) { "debug" } else { "release" };
    let _ = writeln!(
        out,
        "# HELP gko_build_info Build identity; constant 1 with version/profile labels."
    );
    let _ = writeln!(out, "# TYPE gko_build_info gauge");
    let _ = writeln!(
        out,
        "gko_build_info{{version=\"{}\",profile=\"{build_profile}\"}} 1",
        env!("CARGO_PKG_VERSION")
    );
    let _ = writeln!(
        out,
        "# HELP gko_uptime_seconds Real seconds since this executor was constructed."
    );
    let _ = writeln!(out, "# TYPE gko_uptime_seconds gauge");
    let _ = writeln!(out, "gko_uptime_seconds {}", exec.uptime_seconds());
    out
}

/// Renders the `/healthz` JSON document for `exec`.
pub fn health_json(exec: &Executor) -> String {
    let stats = exec.pool_stats();
    let lanes = exec.pool_lane_stats();
    let sanitizer = exec.sanitizer_report();
    let recorder = exec.flight_recorder();
    let cfg = Config::map()
        .with("status", "ok")
        .with("backend", exec.backend().name())
        .with("device", exec.name())
        .with("functional_threads", exec.functional_threads())
        .with(
            "pool",
            Config::map()
                .with("spawned", !lanes.is_empty())
                .with("lanes", lanes.len())
                .with("dispatches", stats.dispatches as i64)
                .with("chunks", stats.chunks as i64)
                .with("steals", stats.steals as i64),
        )
        .with(
            "sanitizer",
            Config::map()
                .with("armed", exec.sanitizer().is_enabled())
                .with("jobs_checked", sanitizer.jobs_checked as i64)
                .with("pieces_checked", sanitizer.pieces_checked as i64),
        )
        .with(
            "metrics",
            Config::map()
                .with("enabled", exec.metrics().is_some())
                .with(
                    "events",
                    exec.metrics().map(|m| m.events_observed()).unwrap_or(0) as i64,
                ),
        )
        .with(
            "flight_recorder",
            Config::map()
                .with("enabled", recorder.is_some())
                .with(
                    "reports",
                    recorder.as_ref().map(|r| r.reports_len()).unwrap_or(0),
                )
                .with(
                    "anomalies",
                    recorder.as_ref().map(|r| r.anomalies_total()).unwrap_or(0) as i64,
                ),
        )
        .with(
            "tracing",
            Config::map()
                .with("armed", exec.tracer().is_armed())
                .with("retained", exec.tracer().retained())
                .with("drops", exec.tracer().drops() as i64),
        )
        .with(
            "profiling",
            Config::map()
                .with("armed", exec.profile().is_armed())
                .with("nodes", exec.profile().node_count())
                .with("solves", exec.profile().solves_total() as i64)
                .with("evicted", exec.profile().evicted() as i64),
        )
        .with("uptime_seconds", exec.uptime_seconds());
    json::to_string_pretty(&cfg)
}
