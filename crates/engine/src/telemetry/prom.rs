//! Strict validator for the Prometheus text exposition format (0.0.4).
//!
//! Used by the concurrent-scrape tests and `scripts/check_telemetry.sh` to
//! prove every `/metrics` response is well-formed — in particular that a
//! scrape racing live kernels never observes a torn snapshot. "Strict"
//! means structural rules beyond what most scrapers enforce:
//!
//! * every sample must belong to a family declared by a preceding `# TYPE`
//!   line (histogram families cover their `_bucket`/`_sum`/`_count` series);
//! * `# HELP`/`# TYPE` appear at most once per family, before its samples;
//! * metric and label names match the spec charset, label values use only
//!   the legal escapes (`\\`, `\"`, `\n`);
//! * counter samples are finite and non-negative;
//! * histogram buckets are cumulative (non-decreasing in `le` order), carry
//!   an `le="+Inf"` bucket, and that bucket equals the family's `_count`.

use std::collections::BTreeMap;

/// Validates `text` against the rules above. Returns the first violation as
/// a human-readable message naming the offending line.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: Vec<String> = Vec::new();
    let mut sampled: Vec<String> = Vec::new();
    let mut histograms: BTreeMap<String, HistogramCheck> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest
                .split_once(' ')
                .map(|(a, b)| (a, Some(b)))
                .unwrap_or((rest, None));
            check_metric_name(name, n)?;
            if helped.iter().any(|h| h == name) {
                return Err(format!("line {n}: duplicate HELP for `{name}`"));
            }
            if sampled.iter().any(|s| s == name) {
                return Err(format!("line {n}: HELP for `{name}` after its samples"));
            }
            helped.push(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
            check_metric_name(name, n)?;
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("line {n}: unknown metric type `{kind}`"));
            }
            if types.contains_key(name) {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            if sampled.iter().any(|s| s == name) {
                return Err(format!("line {n}: TYPE for `{name}` after its samples"));
            }
            types.insert(name.to_string(), kind.to_string());
        } else if line.starts_with('#') {
            return Err(format!("line {n}: comment is neither HELP nor TYPE"));
        } else {
            let sample = parse_sample(line, n)?;
            let (family, suffix) = resolve_family(&sample.name, &types)
                .ok_or_else(|| format!("line {n}: sample `{}` has no TYPE", sample.name))?;
            if !sampled.iter().any(|s| s == &family) {
                sampled.push(family.clone());
            }
            let kind = types.get(&family).map(String::as_str).unwrap_or("untyped");
            if kind == "counter" && !(sample.value.is_finite() && sample.value >= 0.0) {
                return Err(format!(
                    "line {n}: counter `{}` has non-finite or negative value {}",
                    sample.name, sample.value
                ));
            }
            if kind == "histogram" {
                check_histogram_sample(&mut histograms, &family, &suffix, &sample, n)?;
            }
        }
    }
    for (group, check) in &histograms {
        if check.buckets_seen {
            let inf = check
                .inf_bucket
                .ok_or_else(|| format!("histogram series `{group}` lacks an le=\"+Inf\" bucket"))?;
            if let Some(count) = check.count {
                if (inf - count).abs() > f64::EPSILON * inf.abs().max(1.0) {
                    return Err(format!(
                        "histogram series `{group}`: le=\"+Inf\" bucket {inf} != _count {count}"
                    ));
                }
            }
        }
    }
    Ok(())
}

struct Sample {
    name: String,
    /// Label pairs in order of appearance.
    labels: Vec<(String, String)>,
    value: f64,
}

#[derive(Default)]
struct HistogramCheck {
    buckets_seen: bool,
    last_cumulative: f64,
    inf_bucket: Option<f64>,
    count: Option<f64>,
}

fn check_metric_name(name: &str, line: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    let ok_rest = name
        .chars()
        .skip(1)
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    if ok_first && ok_rest {
        Ok(())
    } else {
        Err(format!("line {line}: invalid metric name `{name}`"))
    }
}

fn check_label_name(name: &str, line: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    let ok_rest = name
        .chars()
        .skip(1)
        .all(|c| c.is_ascii_alphanumeric() || c == '_');
    if ok_first && ok_rest {
        Ok(())
    } else {
        Err(format!("line {line}: invalid label name `{name}`"))
    }
}

/// Splits a sample line into name, labels, and value, validating escapes.
fn parse_sample(line: &str, n: usize) -> Result<Sample, String> {
    let (name, rest) = match line.find(['{', ' ']) {
        Some(pos) => (&line[..pos], &line[pos..]),
        None => return Err(format!("line {n}: sample without a value")),
    };
    check_metric_name(name, n)?;
    let (labels, value_part) = if let Some(body) = rest.strip_prefix('{') {
        let close = find_label_end(body)
            .ok_or_else(|| format!("line {n}: unterminated label block"))?;
        let labels = parse_labels(&body[..close], n)?;
        (labels, body[close + 1..].trim_start())
    } else {
        (Vec::new(), rest.trim_start())
    };
    // An optional timestamp may follow the value.
    let value_text = value_part.split_whitespace().next().unwrap_or("");
    let value = parse_value(value_text)
        .ok_or_else(|| format!("line {n}: unparsable sample value `{value_text}`"))?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Index of the closing `}` of a label block, honoring quoted values.
fn find_label_end(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
        } else if in_quotes && c == '\\' {
            escaped = true;
        } else if c == '"' {
            in_quotes = !in_quotes;
        } else if !in_quotes && c == '}' {
            return Some(i);
        }
    }
    None
}

fn parse_labels(body: &str, n: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {n}: label without `=`"))?;
        let name = &rest[..eq];
        check_label_name(name, n)?;
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {n}: label value must be quoted"))?;
        let (value, remaining) = take_quoted(after, n)?;
        labels.push((name.to_string(), value));
        rest = match remaining.strip_prefix(',') {
            Some(r) => r,
            None if remaining.is_empty() => remaining,
            None => {
                return Err(format!(
                    "line {n}: expected `,` between labels, found `{remaining}`"
                ))
            }
        };
    }
    Ok(labels)
}

/// Consumes a quoted label value (after the opening quote), validating that
/// only `\\`, `\"`, and `\n` escapes appear. Returns (unescaped value,
/// remainder after the closing quote).
fn take_quoted(body: &str, n: usize) -> Result<(String, &str), String> {
    let mut value = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((value, &body[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => value.push('\\'),
                Some((_, '"')) => value.push('"'),
                Some((_, 'n')) => value.push('\n'),
                Some((_, other)) => {
                    return Err(format!("line {n}: illegal escape `\\{other}` in label value"))
                }
                None => return Err(format!("line {n}: dangling backslash in label value")),
            },
            '\n' => return Err(format!("line {n}: raw newline in label value")),
            c => value.push(c),
        }
    }
    Err(format!("line {n}: unterminated label value"))
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        t => t.parse::<f64>().ok().filter(|_| !t.is_empty()),
    }
}

/// Resolves a sample name to its declared family: an exact TYPE match, or a
/// histogram family covering the `_bucket`/`_sum`/`_count` suffixes.
fn resolve_family(name: &str, types: &BTreeMap<String, String>) -> Option<(String, String)> {
    if types.contains_key(name) {
        return Some((name.to_string(), String::new()));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some((base.to_string(), suffix.to_string()));
            }
        }
    }
    None
}

fn check_histogram_sample(
    histograms: &mut BTreeMap<String, HistogramCheck>,
    family: &str,
    suffix: &str,
    sample: &Sample,
    n: usize,
) -> Result<(), String> {
    // Group by the family plus every label except `le`, so each labelled
    // series (e.g. one per kernel) is checked independently.
    let mut group = family.to_string();
    for (k, v) in &sample.labels {
        if k != "le" {
            group.push_str(&format!("|{k}={v}"));
        }
    }
    let check = histograms.entry(group).or_default();
    match suffix {
        "_bucket" => {
            let le = sample
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("line {n}: histogram bucket without an `le` label"))?;
            if check.buckets_seen && sample.value < check.last_cumulative {
                return Err(format!(
                    "line {n}: histogram bucket le=\"{le}\" not cumulative \
                     ({} after {})",
                    sample.value, check.last_cumulative
                ));
            }
            check.buckets_seen = true;
            check.last_cumulative = sample.value;
            if le == "+Inf" {
                check.inf_bucket = Some(sample.value);
            }
        }
        "_count" => check.count = Some(sample.value),
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# HELP gko_events_total Events observed.\n\
# TYPE gko_events_total counter\n\
gko_events_total 12\n\
# TYPE gko_kernel_wall_ns histogram\n\
gko_kernel_wall_ns_bucket{op=\"csr\",le=\"127\"} 1\n\
gko_kernel_wall_ns_bucket{op=\"csr\",le=\"+Inf\"} 2\n\
gko_kernel_wall_ns_sum{op=\"csr\"} 300\n\
gko_kernel_wall_ns_count{op=\"csr\"} 2\n";
        assert_eq!(validate(text), Ok(()));
    }

    #[test]
    fn rejects_sample_without_type() {
        let err = validate("orphan_metric 1\n").unwrap_err();
        assert!(err.contains("no TYPE"), "{err}");
    }

    #[test]
    fn rejects_type_after_samples() {
        let text = "# TYPE a counter\na 1\n# TYPE a gauge\n";
        assert!(validate(text).unwrap_err().contains("duplicate TYPE"));
        let text = "# TYPE a counter\na 1\n# HELP a late\n";
        assert!(validate(text).unwrap_err().contains("after its samples"));
    }

    #[test]
    fn rejects_illegal_escape_and_negative_counter() {
        let bad_escape = "# TYPE a counter\na{l=\"x\\t\"} 1\n";
        assert!(validate(bad_escape).unwrap_err().contains("illegal escape"));
        let negative = "# TYPE a counter\na -4\n";
        assert!(validate(negative).unwrap_err().contains("negative"));
        let legal = "# TYPE a counter\na{l=\"x\\\\y\\\"z\\n\"} 4\n";
        assert_eq!(validate(legal), Ok(()));
    }

    #[test]
    fn rejects_torn_histograms() {
        let non_cumulative = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n\
h_bucket{le=\"+Inf\"} 3\n";
        assert!(validate(non_cumulative).unwrap_err().contains("not cumulative"));
        let inf_mismatch = "\
# TYPE h histogram\n\
h_bucket{le=\"+Inf\"} 3\n\
h_count 4\n";
        assert!(validate(inf_mismatch).unwrap_err().contains("!= _count"));
        let missing_inf = "\
# TYPE h histogram\n\
h_bucket{le=\"1\"} 5\n";
        assert!(validate(missing_inf).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn histogram_groups_are_per_labelset() {
        // Two kernels interleaved: cumulative within each, not across.
        let text = "\
# TYPE h histogram\n\
h_bucket{op=\"a\",le=\"1\"} 100\n\
h_bucket{op=\"a\",le=\"+Inf\"} 100\n\
h_bucket{op=\"b\",le=\"1\"} 2\n\
h_bucket{op=\"b\",le=\"+Inf\"} 2\n";
        assert_eq!(validate(text), Ok(()));
    }
}
