//! Std-only HTTP exporter for the telemetry plane.
//!
//! A [`TelemetryServer`] owns a `std::net::TcpListener` drained by a
//! blocking accept loop on a named thread (`gko-telemetry`). Seven
//! endpoints, all `GET` (with `HEAD` honored on every route: identical
//! status and headers, no body), all `Connection: close`:
//!
//! * `/metrics` — Prometheus text exposition (registry snapshot + per-lane
//!   pool utilization + flight-recorder, tracer, profiler, and build/uptime
//!   gauges);
//! * `/healthz` — executor/pool liveness and sanitizer/tracer/profiler arm
//!   state, as JSON;
//! * `/runs` — the flight recorder's retained reports, newest first, as
//!   JSON. `?limit=N` caps the count (default
//!   [`DEFAULT_RUNS_LIMIT`](super::DEFAULT_RUNS_LIMIT)); reports carry a
//!   `trace_id` linking to their span tree when tracing was armed;
//! * `/traces` — index of the tail-sampled trace store (trace_id,
//!   annotation, duration, anomaly kinds, retention reason);
//! * `/traces/<id>` — one full span tree as JSON, or as a Chrome-trace
//!   document with `?format=chrome`;
//! * `/profile` — the continuous profiler's live flame aggregate as a
//!   nested JSON tree, or as `flamegraph.pl`-compatible folded stacks with
//!   `?format=folded` (one `path;path;... <self_wall_ns>` line per node);
//! * `/profile/diff?base=<name>` — differential profile of the live window
//!   against a baseline committed via
//!   [`Executor::profile_commit_baseline`], rows ranked by self-time
//!   regression.
//!
//! Requests are served sequentially — every response is a cheap immutable
//! snapshot, so there is nothing to win by handing connections to a pool —
//! and the server never touches solver threads: scraping is wait-free for
//! the engine. Shutdown (explicit or on drop) flips a flag and wakes the
//! accept loop with a loopback connection, then joins the thread.

use crate::base::error::{GkoError, Result};
use crate::executor::Executor;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest request head (request line + headers) the server reads.
const MAX_REQUEST_BYTES: usize = 8192;

/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Handle to a running telemetry exporter (see the module docs). Dropping
/// the handle stops the server.
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>, // atomic: flag
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9185"`, port `0` for an OS-assigned
    /// port) and starts serving `exec`'s telemetry.
    pub(crate) fn bind(exec: Executor, addr: &str) -> Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| GkoError::BadInput(format!("telemetry: cannot bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| GkoError::BadInput(format!("telemetry: no local addr: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("gko-telemetry".to_string())
            .spawn(move || accept_loop(listener, exec, flag))
            .map_err(|e| {
                GkoError::BadInput(format!("telemetry: cannot spawn server thread: {e}"))
            })?;
        Ok(TelemetryServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::Release);
            // Wake the blocking `accept` so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, exec: Executor, shutdown: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Ok(stream) = conn {
            // A misbehaving client only affects its own connection.
            let _ = handle_connection(stream, &exec);
        }
    }
}

fn handle_connection(mut stream: TcpStream, exec: &Executor) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = match read_request_head(&mut stream) {
        Some(head) => head,
        None => {
            let res = respond(
                &mut stream,
                "400 Bad Request",
                "application/json",
                "{\"error\": \"malformed request\"}\n",
                false,
            );
            // An oversized request may still be streaming in: drain it
            // (bounded) before closing, otherwise the kernel turns the
            // close into an RST that can discard the 400 response before
            // the client reads it.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let mut sink = [0u8; 1024];
            let mut drained = 0usize;
            while drained < (1 << 20) {
                match stream.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => drained += n,
                }
            }
            return res;
        }
    };
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    // Ignore any query string: `/metrics?x=y` scrapes `/metrics`.
    let path = target.split('?').next().unwrap_or(target);
    // HEAD is GET minus the body: same routing, same status and headers
    // (including the true Content-Length), body suppressed at write time.
    let head_only = method == "HEAD";
    if method != "GET" && !head_only {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "application/json",
            "{\"error\": \"only GET and HEAD are supported\"}\n",
            false,
        );
    }
    let query = target.split_once('?').map(|(_, q)| q).unwrap_or("");
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &super::render_prometheus(exec),
            head_only,
        ),
        "/healthz" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &super::health_json(exec),
            head_only,
        ),
        "/runs" => {
            let limit = query_param(query, "limit")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(super::DEFAULT_RUNS_LIMIT);
            let body = exec
                .flight_recorder()
                .map(|r| r.runs_json(limit))
                .unwrap_or_else(|| {
                    "{\"reports\": [], \"total\": 0, \"returned\": 0}\n".to_string()
                });
            respond(&mut stream, "200 OK", "application/json", &body, head_only)
        }
        "/traces" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &exec.tracer().index_json(),
            head_only,
        ),
        "/profile" => {
            let snap = exec.profile().snapshot();
            if query_param(query, "format") == Some("folded") {
                respond(
                    &mut stream,
                    "200 OK",
                    "text/plain; charset=utf-8",
                    &snap.folded(),
                    head_only,
                )
            } else {
                let body = crate::config::json::to_string_pretty(&snap.to_config());
                respond(&mut stream, "200 OK", "application/json", &body, head_only)
            }
        }
        "/profile/diff" => serve_profile_diff(&mut stream, exec, query, head_only),
        _ => match path.strip_prefix("/traces/") {
            Some(id) => serve_trace(&mut stream, exec, id, query, head_only),
            None => respond(
                &mut stream,
                "404 Not Found",
                "application/json",
                "{\"error\": \"unknown path; try /metrics, /healthz, /runs, /traces, /profile\"}\n",
                head_only,
            ),
        },
    }
}

/// `GET /profile/diff?base=<name>`: per-path self-time and call-count
/// deltas of the live profiling window against a committed baseline,
/// ranked by regression.
fn serve_profile_diff(
    stream: &mut TcpStream,
    exec: &Executor,
    query: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let Some(base_name) = query_param(query, "base") else {
        return respond(
            stream,
            "400 Bad Request",
            "application/json",
            "{\"error\": \"missing base parameter; use /profile/diff?base=<name>\"}\n",
            head_only,
        );
    };
    let Some(base) = exec.profile().baseline(base_name) else {
        let names = exec
            .profile()
            .baseline_names()
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ");
        return respond(
            stream,
            "404 Not Found",
            "application/json",
            &format!("{{\"error\": \"unknown baseline\", \"known\": [{names}]}}\n"),
            head_only,
        );
    };
    let current = exec.profile().snapshot();
    let diff = crate::profile::diff(&base, &current);
    let body = crate::config::json::to_string_pretty(&diff.to_config(base_name));
    respond(stream, "200 OK", "application/json", &body, head_only)
}

/// `GET /traces/<id>`: the full span tree of one retained trace, as JSON or
/// (with `?format=chrome`) as a Chrome-trace document.
fn serve_trace(
    stream: &mut TcpStream,
    exec: &Executor,
    id: &str,
    query: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let report = id.parse::<u64>().ok().and_then(|id| exec.tracer().report(id));
    let Some(report) = report else {
        return respond(
            stream,
            "404 Not Found",
            "application/json",
            "{\"error\": \"unknown trace id (dropped by sampling, evicted, or never assigned)\"}\n",
            head_only,
        );
    };
    if query_param(query, "format") == Some("chrome") {
        return respond(
            stream,
            "200 OK",
            "application/json",
            &report.to_chrome_trace(),
            head_only,
        );
    }
    let body = crate::config::json::to_string_pretty(&report.to_config());
    respond(stream, "200 OK", "application/json", &body, head_only)
}

/// Extracts `name`'s value from a raw query string (`a=1&b=2`).
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

/// Reads until the end of the request head (`\r\n\r\n`) or the size cap and
/// returns the request line, or `None` when the request is malformed.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    // A head that hit the size cap without ever terminating is rejected
    // outright — a truncated request line must not be served as if it were
    // a (shorter) valid one.
    if !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        return None;
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?.trim().to_string();
    // A request line has exactly "METHOD TARGET VERSION".
    (line.split_whitespace().count() == 3).then_some(line)
}

/// Writes one response. `head_only` (a `HEAD` request) sends the exact
/// headers a `GET` would — including the true `Content-Length` — and
/// suppresses the body; every response carries `Connection: close`.
fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}
