//! Std-only HTTP exporter for the telemetry plane.
//!
//! A [`TelemetryServer`] owns a `std::net::TcpListener` drained by a
//! blocking accept loop on a named thread (`gko-telemetry`). Three
//! endpoints, all `GET`, all `Connection: close`:
//!
//! * `/metrics` — Prometheus text exposition (registry snapshot + per-lane
//!   pool utilization + flight-recorder gauges);
//! * `/healthz` — executor/pool liveness and sanitizer arm state, as JSON;
//! * `/runs` — the flight recorder's retained reports, as JSON.
//!
//! Requests are served sequentially — every response is a cheap immutable
//! snapshot, so there is nothing to win by handing connections to a pool —
//! and the server never touches solver threads: scraping is wait-free for
//! the engine. Shutdown (explicit or on drop) flips a flag and wakes the
//! accept loop with a loopback connection, then joins the thread.

use crate::base::error::{GkoError, Result};
use crate::executor::Executor;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest request head (request line + headers) the server reads.
const MAX_REQUEST_BYTES: usize = 8192;

/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Handle to a running telemetry exporter (see the module docs). Dropping
/// the handle stops the server.
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9185"`, port `0` for an OS-assigned
    /// port) and starts serving `exec`'s telemetry.
    pub(crate) fn bind(exec: Executor, addr: &str) -> Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| GkoError::BadInput(format!("telemetry: cannot bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| GkoError::BadInput(format!("telemetry: no local addr: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("gko-telemetry".to_string())
            .spawn(move || accept_loop(listener, exec, flag))
            .map_err(|e| {
                GkoError::BadInput(format!("telemetry: cannot spawn server thread: {e}"))
            })?;
        Ok(TelemetryServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::Release);
            // Wake the blocking `accept` so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, exec: Executor, shutdown: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Ok(stream) = conn {
            // A misbehaving client only affects its own connection.
            let _ = handle_connection(stream, &exec);
        }
    }
}

fn handle_connection(mut stream: TcpStream, exec: &Executor) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = match read_request_head(&mut stream) {
        Some(head) => head,
        None => {
            return respond(
                &mut stream,
                "400 Bad Request",
                "application/json",
                "{\"error\": \"malformed request\"}\n",
            )
        }
    };
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    // Ignore any query string: `/metrics?x=y` scrapes `/metrics`.
    let path = target.split('?').next().unwrap_or(target);
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "application/json",
            "{\"error\": \"only GET is supported\"}\n",
        );
    }
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &super::render_prometheus(exec),
        ),
        "/healthz" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &super::health_json(exec),
        ),
        "/runs" => {
            let body = exec
                .flight_recorder()
                .map(|r| r.runs_json())
                .unwrap_or_else(|| "{\"reports\": []}\n".to_string());
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "application/json",
            "{\"error\": \"unknown path; try /metrics, /healthz, /runs\"}\n",
        ),
    }
}

/// Reads until the end of the request head (`\r\n\r\n`) or the size cap and
/// returns the request line, or `None` when the request is malformed.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?.trim().to_string();
    // A request line has exactly "METHOD TARGET VERSION".
    (line.split_whitespace().count() == 3).then_some(line)
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
