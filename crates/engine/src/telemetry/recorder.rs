//! Flight recorder: bounded ring of per-solve reports + anomaly detectors.
//!
//! A [`FlightRecorder`] is an ordinary [`Logger`]. While attached (see
//! [`crate::Executor::enable_flight_recorder`]) it folds the event stream of
//! each solve into one [`FlightReport`] — matrix context, iteration count,
//! a residual-trajectory summary, per-kernel latency quantiles, and the
//! per-lane pool utilization delta — then screens the report with three
//! detectors before pushing it into a bounded ring:
//!
//! * **convergence** — a solve that gave up is flagged [`Anomaly::Divergence`]
//!   when its final residual grew by `divergence_growth` over the initial
//!   one, or [`Anomaly::Stagnation`] when the last `stagnation_window`
//!   iterations made no meaningful progress;
//! * **lane imbalance** — [`Anomaly::LaneImbalance`] when one pool lane's
//!   busy time exceeds `imbalance_ratio` times the mean;
//! * **latency drift** — [`Anomaly::LatencyDrift`] when a kernel's p99 in
//!   this solve exceeds `drift_ratio` times its rolling (EWMA) baseline
//!   built from previous solves.
//!
//! Each flagged anomaly also increments the executor's
//! [`crate::metrics::MetricsRegistry`] (`gko_anomalies_total{kind=...}`),
//! so scrape-based alerting needs no extra wiring.

use crate::config::{json, Config};
use crate::executor::pool::{lane_stats_since, LaneStats};
use crate::executor::WeakExecutor;
use crate::log::{Event, Logger};
use crate::metrics::{bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::stop::StopReason;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Default cap on reports returned by a `/runs` scrape when the request
/// carries no explicit `?limit=N`.
pub const DEFAULT_RUNS_LIMIT: usize = 32;

/// Thresholds for the flight recorder's anomaly detectors.
///
/// The defaults are deliberately conservative — they are tuned to stay
/// silent on the healthy reference solves in this repository's test suite
/// and benchmark harness (see `DESIGN.md` §13 for the rationale behind each
/// value), so a flagged report means something is genuinely off.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectorConfig {
    /// Iterations the stagnation check looks back over.
    pub stagnation_window: usize,
    /// A non-converged solve is stagnating when the newest residual is at
    /// least `stagnation_ratio` times the residual `stagnation_window`
    /// iterations ago (1.0 = exactly no progress; 0.99 tolerates 1%).
    pub stagnation_ratio: f64,
    /// A non-converged solve is diverging when its final residual is at
    /// least this factor above the initial one.
    pub divergence_growth: f64,
    /// A solve is imbalanced when the busiest lane's busy-ns is at least
    /// this multiple of the mean over all lanes.
    pub imbalance_ratio: f64,
    /// Imbalance is only assessed when the mean per-lane busy time is at
    /// least this many nanoseconds — tiny jobs always look skewed.
    pub imbalance_min_busy_ns: u64,
    /// A kernel drifted when its p99 this solve is at least this multiple
    /// of its rolling baseline.
    pub drift_ratio: f64,
    /// Solves a kernel must appear in before its baseline is trusted.
    pub drift_min_solves: u64,
    /// Drift is only assessed when this solve's p99 is at least this many
    /// nanoseconds — micro-kernel tails are dominated by scheduler noise,
    /// especially on oversubscribed hosts.
    pub drift_min_p99_ns: u64,
    /// Consecutive drifting solves required before [`Anomaly::LatencyDrift`]
    /// is reported. A single slow solve on a noisy host (CPU steal, cold
    /// caches) looks exactly like a regression; a real regression persists.
    pub drift_min_streak: u64,
    /// Reports retained in the ring (oldest evicted first).
    pub capacity: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            stagnation_window: 8,
            stagnation_ratio: 0.99,
            divergence_growth: 1.0e3,
            imbalance_ratio: 4.0,
            imbalance_min_busy_ns: 1_000_000,
            drift_ratio: 3.0,
            drift_min_solves: 3,
            drift_min_p99_ns: 100_000,
            drift_min_streak: 2,
            capacity: 64,
        }
    }
}

/// One misbehaviour detected in a solve.
#[derive(Clone, Debug, PartialEq)]
pub enum Anomaly {
    /// The solve stopped without converging and the residual made no
    /// meaningful progress over the detector window.
    Stagnation {
        /// Iterations the check looked back over.
        window: usize,
        /// Residual at the start of the window.
        from: f64,
        /// Residual at the end of the window.
        to: f64,
    },
    /// The solve stopped without converging and the residual grew far past
    /// its initial value.
    Divergence {
        /// First recorded residual norm.
        initial: f64,
        /// Final residual norm.
        last: f64,
    },
    /// One pool lane did a disproportionate share of the work.
    LaneImbalance {
        /// The busiest lane's id.
        lane: usize,
        /// That lane's busy nanoseconds during the solve.
        busy_ns: u64,
        /// Mean busy nanoseconds over all lanes.
        mean_busy_ns: u64,
        /// `busy_ns / mean_busy_ns`.
        ratio: f64,
    },
    /// A kernel's tail latency moved away from its rolling baseline.
    LatencyDrift {
        /// Kernel / operator name.
        op: String,
        /// p99 wall latency in this solve, nanoseconds.
        p99_ns: u64,
        /// Rolling baseline p99, nanoseconds.
        baseline_ns: u64,
        /// `p99_ns / baseline_ns`.
        ratio: f64,
    },
}

impl Anomaly {
    /// Stable kind label, used for metric labels and report JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            Anomaly::Stagnation { .. } => "stagnation",
            Anomaly::Divergence { .. } => "divergence",
            Anomaly::LaneImbalance { .. } => "lane_imbalance",
            Anomaly::LatencyDrift { .. } => "latency_drift",
        }
    }

    fn to_config(&self) -> Config {
        let base = Config::map().with("kind", self.kind());
        match self {
            Anomaly::Stagnation { window, from, to } => base
                .with("window", *window)
                .with("from", *from)
                .with("to", *to),
            Anomaly::Divergence { initial, last } => {
                base.with("initial", *initial).with("last", *last)
            }
            Anomaly::LaneImbalance {
                lane,
                busy_ns,
                mean_busy_ns,
                ratio,
            } => base
                .with("lane", *lane)
                .with("busy_ns", *busy_ns as i64)
                .with("mean_busy_ns", *mean_busy_ns as i64)
                .with("ratio", *ratio),
            Anomaly::LatencyDrift {
                op,
                p99_ns,
                baseline_ns,
                ratio,
            } => base
                .with("op", op.as_str())
                .with("p99_ns", *p99_ns as i64)
                .with("baseline_ns", *baseline_ns as i64)
                .with("ratio", *ratio),
        }
    }
}

/// The system matrix a recorded solve ran against (set by the facade via
/// [`FlightRecorder::annotate`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SystemContext {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Storage format name, e.g. `"csr"`.
    pub format: String,
}

/// Compressed residual trajectory of one solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResidualSummary {
    /// First recorded residual norm (0.0 when no iteration ran).
    pub initial: f64,
    /// Smallest recorded residual norm.
    pub minimum: f64,
    /// Last recorded residual norm.
    pub last: f64,
    /// Residual norms recorded.
    pub count: usize,
}

/// Wall-latency quantiles of one kernel within one solve.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelLatency {
    /// Kernel / operator name.
    pub op: String,
    /// Completed invocations during the solve.
    pub calls: u64,
    /// Median wall latency, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile wall latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile wall latency, nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum wall latency, nanoseconds.
    pub max_ns: u64,
}

/// Per-system outcome counts of one batched solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Systems in the batch.
    pub systems: usize,
    /// Systems whose stop reason indicates convergence.
    pub converged: usize,
    /// Systems that stopped with `Breakdown`.
    pub breakdowns: usize,
}

/// Structured record of one completed solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlightReport {
    /// Monotonic sequence number (1-based, over the recorder's lifetime).
    pub seq: u64,
    /// Solver name, e.g. `"solver::Cg"`.
    pub solver: String,
    /// The system matrix, when the facade annotated it.
    pub context: Option<SystemContext>,
    /// Fully completed iterations.
    pub iterations: usize,
    /// Why the solve stopped (`None` only for the `Default` value).
    pub stop_reason: Option<StopReason>,
    /// Whether the stop reason indicates convergence.
    pub converged: bool,
    /// Residual trajectory summary.
    pub residuals: ResidualSummary,
    /// Per-kernel latency quantiles, sorted by kernel name.
    pub kernels: Vec<KernelLatency>,
    /// Per-lane pool utilization delta attributed to this solve.
    pub lanes: Vec<LaneStats>,
    /// Anomalies the detectors flagged (empty for a healthy solve).
    pub anomalies: Vec<Anomaly>,
    /// Per-system outcome counts when the solve was batched.
    pub batch: Option<BatchOutcome>,
    /// The solve's trace id when span tracing was armed (links this run —
    /// anomalous or not — to its `/traces/<id>` span tree).
    pub trace_id: Option<u64>,
}

impl FlightReport {
    /// Renders the report as a [`Config`] tree (for JSON export).
    pub fn to_config(&self) -> Config {
        let mut cfg = Config::map()
            .with("seq", self.seq as i64)
            .with("solver", self.solver.as_str())
            .with("iterations", self.iterations)
            .with(
                "stop_reason",
                self.stop_reason.map(reason_name).unwrap_or("unknown"),
            )
            .with("converged", self.converged)
            .with(
                "residuals",
                Config::map()
                    .with("initial", self.residuals.initial)
                    .with("minimum", self.residuals.minimum)
                    .with("last", self.residuals.last)
                    .with("count", self.residuals.count),
            );
        if let Some(ctx) = &self.context {
            cfg = cfg.with(
                "matrix",
                Config::map()
                    .with("rows", ctx.rows)
                    .with("cols", ctx.cols)
                    .with("nnz", ctx.nnz)
                    .with("format", ctx.format.as_str()),
            );
        }
        if let Some(b) = &self.batch {
            cfg = cfg.with(
                "batch",
                Config::map()
                    .with("systems", b.systems)
                    .with("converged", b.converged)
                    .with("breakdowns", b.breakdowns),
            );
        }
        let kernels: Vec<Config> = self
            .kernels
            .iter()
            .map(|k| {
                Config::map()
                    .with("op", k.op.as_str())
                    .with("calls", k.calls as i64)
                    .with("p50_ns", k.p50_ns as i64)
                    .with("p95_ns", k.p95_ns as i64)
                    .with("p99_ns", k.p99_ns as i64)
                    .with("max_ns", k.max_ns as i64)
            })
            .collect();
        let lanes: Vec<Config> = self
            .lanes
            .iter()
            .enumerate()
            .map(|(i, l)| {
                Config::map()
                    .with("lane", i)
                    .with("chunks", l.chunks as i64)
                    .with("steals", l.steals as i64)
                    .with("busy_ns", l.busy_ns as i64)
            })
            .collect();
        if let Some(id) = self.trace_id {
            cfg = cfg.with("trace_id", id as i64);
        }
        let anomalies: Vec<Config> = self.anomalies.iter().map(Anomaly::to_config).collect();
        cfg.with("kernels", kernels)
            .with("lanes", lanes)
            .with("anomalies", anomalies)
    }
}

fn reason_name(reason: StopReason) -> &'static str {
    match reason {
        StopReason::MaxIterations => "max_iterations",
        StopReason::ResidualReduction => "residual_reduction",
        StopReason::AbsoluteResidual => "absolute_residual",
        StopReason::Breakdown => "breakdown",
    }
}

// ---------------------------------------------------------------------------
// Detectors (pure functions, unit-testable in isolation)
// ---------------------------------------------------------------------------

/// Convergence detector: given the first recorded residual, the trailing
/// residual window (oldest first, at most `stagnation_window + 1` entries),
/// and whether the solve converged, decides between [`Anomaly::Divergence`],
/// [`Anomaly::Stagnation`], and a clean bill (`None`). Converged solves are
/// never flagged.
pub fn detect_convergence(
    initial: f64,
    window: &[f64],
    converged: bool,
    cfg: &DetectorConfig,
) -> Option<Anomaly> {
    if converged {
        return None;
    }
    let last = *window.last()?;
    if initial > 0.0 && initial.is_finite() && last >= cfg.divergence_growth * initial {
        return Some(Anomaly::Divergence { initial, last });
    }
    if window.len() > cfg.stagnation_window {
        let from = window[window.len() - 1 - cfg.stagnation_window];
        if from > 0.0 && from.is_finite() && last >= cfg.stagnation_ratio * from {
            return Some(Anomaly::Stagnation {
                window: cfg.stagnation_window,
                from,
                to: last,
            });
        }
    }
    None
}

/// Lane-imbalance detector over a per-lane utilization delta: flags when the
/// busiest lane carried at least `imbalance_ratio` times the mean busy time.
/// Skips pools with fewer than two lanes and jobs too small to judge
/// (`imbalance_min_busy_ns`).
pub fn detect_lane_imbalance(lanes: &[LaneStats], cfg: &DetectorConfig) -> Option<Anomaly> {
    if lanes.len() < 2 {
        return None;
    }
    let total: u64 = lanes.iter().map(|l| l.busy_ns).sum();
    let mean = total / lanes.len() as u64;
    if mean < cfg.imbalance_min_busy_ns.max(1) {
        return None;
    }
    let (lane, busy_ns) = lanes
        .iter()
        .map(|l| l.busy_ns)
        .enumerate()
        .max_by_key(|&(_, b)| b)?;
    let ratio = busy_ns as f64 / mean as f64;
    (ratio >= cfg.imbalance_ratio).then_some(Anomaly::LaneImbalance {
        lane,
        busy_ns,
        mean_busy_ns: mean,
        ratio,
    })
}

/// Latency-drift detector for one kernel: flags when this solve's p99 is at
/// least `drift_ratio` times the rolling p99 baseline **and** the median
/// moved with it. A genuine kernel regression shifts the whole latency
/// distribution; a preempted sample on a busy host inflates only the tail,
/// so the median corroboration keeps the detector quiet on oversubscribed
/// machines. Baselines are only trusted after `drift_min_solves` solves
/// contributed, and tails below `drift_min_p99_ns` are never judged.
pub fn detect_latency_drift(
    op: &str,
    p99_ns: u64,
    p50_ns: u64,
    baseline_p99: f64,
    baseline_p50: f64,
    baseline_solves: u64,
    cfg: &DetectorConfig,
) -> Option<Anomaly> {
    if baseline_solves < cfg.drift_min_solves
        || baseline_p99 <= 0.0
        || p99_ns < cfg.drift_min_p99_ns
    {
        return None;
    }
    let ratio = p99_ns as f64 / baseline_p99;
    let median_moved = baseline_p50 <= 0.0 || p50_ns as f64 >= cfg.drift_ratio * baseline_p50;
    (ratio >= cfg.drift_ratio && median_moved).then_some(Anomaly::LatencyDrift {
        op: op.to_string(),
        p99_ns,
        baseline_ns: baseline_p99 as u64,
        ratio,
    })
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// Residuals and kernel latencies accumulated for the solve in flight.
#[derive(Default)]
struct CurrentSolve {
    initial: Option<f64>,
    minimum: f64,
    last: f64,
    count: usize,
    /// Trailing residuals, oldest first, at most `stagnation_window + 1`.
    window: VecDeque<f64>,
    kernels: BTreeMap<&'static str, HistogramSnapshot>,
}

impl CurrentSolve {
    fn observe_residual(&mut self, r: f64, window: usize) {
        if self.initial.is_none() {
            self.initial = Some(r);
            self.minimum = r;
        }
        self.minimum = self.minimum.min(r);
        self.last = r;
        self.count += 1;
        self.window.push_back(r);
        while self.window.len() > window + 1 {
            self.window.pop_front();
        }
    }

    fn observe_kernel(&mut self, op: &'static str, wall_ns: u64) {
        let h = self.kernels.entry(op).or_default();
        if h.buckets.is_empty() {
            h.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        if let Some(b) = h.buckets.get_mut(bucket_index(wall_ns)) {
            *b += 1;
        }
        h.count += 1;
        h.sum = h.sum.saturating_add(wall_ns);
        h.max = h.max.max(wall_ns);
    }
}

/// Rolling per-kernel latency baseline: EWMA p99 and p50, solves folded in,
/// and the current run of consecutive drifting solves.
struct Baseline {
    ewma_p99: f64,
    ewma_p50: f64,
    solves: u64,
    streak: u64,
}

#[derive(Default)]
struct RecorderState {
    current: CurrentSolve,
    /// Per-lane counters at the end of the previous report, so each report
    /// carries only its own delta.
    lane_mark: Vec<LaneStats>,
    baselines: BTreeMap<String, Baseline>,
    reports: VecDeque<FlightReport>,
    seq: u64,
    context: Option<SystemContext>,
    anomaly_counts: BTreeMap<&'static str, u64>,
}

impl Default for Baseline {
    fn default() -> Self {
        Baseline {
            ewma_p99: 0.0,
            ewma_p50: 0.0,
            solves: 0,
            streak: 0,
        }
    }
}

/// The flight recorder (see the module docs).
///
/// Create one through [`crate::Executor::enable_flight_recorder`] (which
/// also attaches it), or [`FlightRecorder::detached`] for feeding events
/// manually in tests.
pub struct FlightRecorder {
    exec: WeakExecutor,
    config: DetectorConfig,
    /// Events observed, for inert-path regression tests.
    events: AtomicU64, // atomic: counter
    state: Mutex<RecorderState>, // lock: recorder.state
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("events", &self.events_observed())
            .field("reports", &self.reports_len())
            .finish()
    }
}

impl FlightRecorder {
    /// Recorder bound to an executor (lane utilization and anomaly counters
    /// flow into that executor's pool stats / metrics registry).
    pub(crate) fn new(exec: WeakExecutor, config: DetectorConfig) -> Self {
        FlightRecorder {
            exec,
            config,
            events: AtomicU64::new(0),
            state: Mutex::new(RecorderState::default()),
        }
    }

    /// Standalone recorder with no executor: lane utilization stays empty
    /// and anomalies are counted locally only. Intended for detector tests
    /// that synthesize the event stream.
    pub fn detached(config: DetectorConfig) -> Self {
        FlightRecorder::new(WeakExecutor::default(), config)
    }

    /// The detector thresholds this recorder screens with.
    pub fn detector_config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Total events this recorder has observed.
    pub fn events_observed(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Records the system matrix subsequent reports describe (typically
    /// called by the facade when a solver is built).
    pub fn annotate(&self, rows: usize, cols: usize, nnz: usize, format: &str) {
        self.state().context = Some(SystemContext {
            rows,
            cols,
            nnz,
            format: format.to_string(),
        });
    }

    /// Reports retained in the ring, oldest first.
    pub fn reports(&self) -> Vec<FlightReport> {
        self.state().reports.iter().cloned().collect()
    }

    /// The most recent report, if any solve completed.
    pub fn latest(&self) -> Option<FlightReport> {
        self.state().reports.back().cloned()
    }

    /// Number of reports currently retained.
    pub fn reports_len(&self) -> usize {
        self.state().reports.len()
    }

    /// Anomalies flagged so far, per kind (sorted by kind).
    pub fn anomaly_counts(&self) -> Vec<(String, u64)> {
        self.state()
            .anomaly_counts
            .iter()
            .map(|(k, n)| (k.to_string(), *n))
            .collect()
    }

    /// Total anomalies flagged so far.
    pub fn anomalies_total(&self) -> u64 {
        self.state().anomaly_counts.values().sum()
    }

    /// Renders the `limit` most recent retained reports, newest first, as
    /// the `/runs` JSON document. `total` carries the retained count so a
    /// truncated response is recognizable; `returned` the length of
    /// `reports`. HTTP callers default `limit` to
    /// [`DEFAULT_RUNS_LIMIT`](crate::telemetry::DEFAULT_RUNS_LIMIT).
    pub fn runs_json(&self, limit: usize) -> String {
        let state = self.state();
        let total = state.reports.len();
        let reports: Vec<Config> = state
            .reports
            .iter()
            .rev()
            .take(limit.max(1))
            .map(FlightReport::to_config)
            .collect();
        let returned = reports.len();
        json::to_string_pretty(
            &Config::map()
                .with("reports", reports)
                .with("total", total)
                .with("returned", returned),
        )
    }

    fn state(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn finalize(
        &self,
        solver: &'static str,
        iterations: usize,
        reason: StopReason,
        batch: Option<BatchOutcome>,
    ) {
        let exec = self.exec.upgrade();
        let lanes_now = exec
            .as_ref()
            .map(|e| e.pool_lane_stats())
            .unwrap_or_default();
        // Read before taking our own lock: the tracer queries this recorder
        // (lock-free of ours) when it judges the finished trace, so neither
        // side may hold both locks at once.
        let trace_id = exec.as_ref().and_then(|e| e.tracer().active_trace_id());
        // Same rule for the metrics registry: `Executor::metrics` takes the
        // executor's `exec.metrics` slot lock, and enabling/disabling locks
        // that slot around logger-registry traffic that ends up back here —
        // so fetch the handle before taking `recorder.state`.
        let registry = exec.as_ref().and_then(|e| e.metrics());
        let mut state = self.state();
        let current = std::mem::take(&mut state.current);
        let lanes = lane_stats_since(&lanes_now, &state.lane_mark);
        state.lane_mark = lanes_now;

        let converged = reason.is_converged();
        let mut anomalies = Vec::new();
        let window: Vec<f64> = current.window.iter().copied().collect();
        if let Some(a) = detect_convergence(
            current.initial.unwrap_or(0.0),
            &window,
            converged,
            &self.config,
        ) {
            anomalies.push(a);
        }
        if let Some(a) = detect_lane_imbalance(&lanes, &self.config) {
            anomalies.push(a);
        }

        let mut kernels = Vec::with_capacity(current.kernels.len());
        for (op, hist) in &current.kernels {
            let p99 = hist.p99();
            let p50 = hist.p50();
            let drifted = {
                let baseline = state.baselines.entry(op.to_string()).or_default();
                let raw = detect_latency_drift(
                    op,
                    p99,
                    p50,
                    baseline.ewma_p99,
                    baseline.ewma_p50,
                    baseline.solves,
                    &self.config,
                );
                // A drifting sample is kept out of the baseline so a
                // persistent regression keeps firing instead of normalizing
                // itself away — but it is only *reported* once the drift has
                // held for `drift_min_streak` consecutive solves (one slow
                // solve on a noisy host is not a regression).
                if raw.is_none() {
                    baseline.streak = 0;
                    if baseline.solves == 0 {
                        baseline.ewma_p99 = p99 as f64;
                        baseline.ewma_p50 = p50 as f64;
                    } else {
                        baseline.ewma_p99 = 0.7 * baseline.ewma_p99 + 0.3 * p99 as f64;
                        baseline.ewma_p50 = 0.7 * baseline.ewma_p50 + 0.3 * p50 as f64;
                    }
                    baseline.solves += 1;
                }
                let streak = if raw.is_some() {
                    baseline.streak += 1;
                    baseline.streak
                } else {
                    0
                };
                raw.filter(|_| streak >= self.config.drift_min_streak.max(1))
            };
            if let Some(a) = drifted {
                anomalies.push(a);
            }
            kernels.push(KernelLatency {
                op: op.to_string(),
                calls: hist.count,
                p50_ns: hist.p50(),
                p95_ns: hist.p95(),
                p99_ns: p99,
                max_ns: hist.max,
            });
        }

        for a in &anomalies {
            *state.anomaly_counts.entry(a.kind()).or_insert(0) += 1;
        }
        state.seq += 1;
        let report = FlightReport {
            seq: state.seq,
            solver: solver.to_string(),
            context: state.context.clone(),
            iterations,
            stop_reason: Some(reason),
            converged,
            residuals: ResidualSummary {
                initial: current.initial.unwrap_or(0.0),
                minimum: current.minimum,
                last: current.last,
                count: current.count,
            },
            kernels,
            lanes,
            anomalies,
            batch,
            trace_id,
        };
        let capacity = self.config.capacity.max(1);
        while state.reports.len() >= capacity {
            state.reports.pop_front();
        }
        // Forward anomaly counts into the executor's metrics registry.
        // The registry's counters are lock-free, so recording under our own
        // lock is fine — only the slot-lock *lookup* had to happen earlier.
        if let Some(registry) = registry {
            for a in &report.anomalies {
                registry.record_anomaly(a.kind());
            }
        }
        state.reports.push_back(report);
    }
}

impl Logger for FlightRecorder {
    fn on_event(&self, event: &Event) {
        self.events.fetch_add(1, Ordering::Relaxed);
        match *event {
            Event::IterationComplete { residual, .. } => {
                let window = self.config.stagnation_window;
                self.state().current.observe_residual(residual, window);
            }
            Event::LinOpApplyCompleted { op, wall_ns, .. } => {
                self.state().current.observe_kernel(op, wall_ns);
            }
            Event::SolveCompleted {
                solver,
                iterations,
                reason,
                ..
            } => self.finalize(solver, iterations, reason, None),
            Event::BatchSolveCompleted {
                solver,
                systems,
                converged,
                breakdowns,
                iterations,
            } => {
                // Synthesize a batch-level stop reason for the report: any
                // breakdown taints the batch, full convergence is a
                // converged batch, anything else stalled at the limit.
                let reason = if breakdowns > 0 {
                    StopReason::Breakdown
                } else if converged == systems {
                    StopReason::ResidualReduction
                } else {
                    StopReason::MaxIterations
                };
                self.finalize(
                    solver,
                    iterations,
                    reason,
                    Some(BatchOutcome {
                        systems,
                        converged,
                        breakdowns,
                    }),
                );
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "flight"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_solves_are_never_flagged() {
        let cfg = DetectorConfig::default();
        let window = [1.0, 10.0, 100.0, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];
        assert_eq!(detect_convergence(1.0, &window, true, &cfg), None);
    }

    #[test]
    fn divergence_beats_stagnation_on_large_growth() {
        let cfg = DetectorConfig::default();
        let window: Vec<f64> = (0..=cfg.stagnation_window).map(|i| 2.0f64.powi(i as i32)).collect();
        // Growth 2^8 = 256x over the window but only vs initial 1e-3 -> 2e5x.
        let got = detect_convergence(1.0e-3, &window, false, &cfg);
        assert!(matches!(got, Some(Anomaly::Divergence { .. })), "{got:?}");
    }

    #[test]
    fn plateau_without_convergence_is_stagnation() {
        let cfg = DetectorConfig::default();
        let window = vec![1.0; cfg.stagnation_window + 1];
        let got = detect_convergence(1.0, &window, false, &cfg);
        match got {
            Some(Anomaly::Stagnation { window: w, from, to }) => {
                assert_eq!(w, cfg.stagnation_window);
                assert_eq!(from, 1.0);
                assert_eq!(to, 1.0);
            }
            other => panic!("expected Stagnation, got {other:?}"),
        }
        // A steadily improving (if slow) solve is not stagnating.
        let improving: Vec<f64> = (0..=cfg.stagnation_window)
            .map(|i| 0.9f64.powi(i as i32))
            .collect();
        assert_eq!(detect_convergence(1.0, &improving, false, &cfg), None);
        // Too few residuals to judge: stay silent.
        assert_eq!(detect_convergence(1.0, &[1.0, 1.0], false, &cfg), None);
    }

    #[test]
    fn lane_imbalance_needs_scale_and_skew() {
        let cfg = DetectorConfig::default();
        let lane = |busy_ns| LaneStats {
            chunks: 1,
            steals: 0,
            busy_ns,
        };
        // Balanced: silent.
        assert_eq!(detect_lane_imbalance(&[lane(5_000_000); 4], &cfg), None);
        // Skewed but tiny (mean below the floor): silent.
        assert_eq!(
            detect_lane_imbalance(&[lane(800_000), lane(0), lane(0), lane(0)], &cfg),
            None
        );
        // Skewed at scale: flagged, on the right lane.
        let got = detect_lane_imbalance(
            &[lane(0), lane(40_000_000), lane(0), lane(0)],
            &cfg,
        );
        match got {
            Some(Anomaly::LaneImbalance { lane, ratio, .. }) => {
                assert_eq!(lane, 1);
                assert!(ratio >= cfg.imbalance_ratio);
            }
            other => panic!("expected LaneImbalance, got {other:?}"),
        }
        // A single lane (reference executor) can never be imbalanced.
        assert_eq!(detect_lane_imbalance(&[lane(1_000_000_000)], &cfg), None);
    }

    #[test]
    fn latency_drift_requires_trusted_baseline_and_moved_median() {
        let cfg = DetectorConfig::default();
        // Baseline not yet trusted.
        assert_eq!(
            detect_latency_drift("csr", 10_000_000, 10_000_000, 1_000.0, 1_000.0, 2, &cfg),
            None
        );
        // Whole distribution moved: flagged.
        let got =
            detect_latency_drift("csr", 10_000_000, 10_000_000, 1_000.0, 1_000.0, 3, &cfg);
        assert!(matches!(got, Some(Anomaly::LatencyDrift { .. })), "{got:?}");
        // Tail-only spike (median unchanged): scheduler noise, silent.
        assert_eq!(
            detect_latency_drift("csr", 10_000_000, 1_000, 1_000.0, 1_000.0, 3, &cfg),
            None
        );
        // Below the absolute p99 floor: silent even at a huge ratio.
        assert_eq!(
            detect_latency_drift("csr", 50_000, 50_000, 100.0, 100.0, 3, &cfg),
            None
        );
    }
}
