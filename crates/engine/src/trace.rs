//! Causal span tracing: per-solve trace trees through the worker pool.
//!
//! Where [`crate::log`] answers *what happened* (a flat event stream) and
//! [`crate::metrics`] answers *how long things usually take* (aggregates),
//! this module answers *why was this particular solve slow*: every solve —
//! single or batched — acquires a [`TraceId`] and assembles a hierarchical
//! span tree
//!
//! ```text
//! solve -> iteration -> kernel apply -> plan build
//!                                    -> pool dispatch -> per-lane chunk
//! ```
//!
//! The owner-thread layers (solve, iteration, kernel, plan build) are
//! reconstructed from the §10 event stream: [`crate::log::OpTimer`] emits
//! `LinOpApplyStarted`/`Completed` strictly nested on the solving thread, so
//! a per-trace stack of open spans recovers the tree without any changes to
//! the kernels themselves. The pool layers cannot be event-reconstructed —
//! chunks run concurrently on other threads — so they are propagated
//! *explicitly*: `parallel_chunks` asks the tracer for a dispatch handle
//! carrying a [`SpanContext`] `{trace_id, parent_span_id}`, the chunk
//! closures record begin/end/steal against cache-padded per-lane buffers,
//! and the handle folds them back into the tree when the dispatch ends.
//! A stolen chunk's span is owned by the lane that *executed* it (`lane`),
//! with `steal = true` recording that its home queue was elsewhere.
//!
//! # Inert fast path
//!
//! Like §10 logging, a disarmed (or armed-but-idle) tracer costs one relaxed
//! atomic load per probe: [`Tracer::begin_dispatch`] checks the `active`
//! flag before touching any lock, and the event hook is only attached to the
//! logger registry while tracing is enabled, so solves on an untraced
//! executor never even reach [`Tracer::observe`]. `bench_gate` holds the
//! inert path inside a tolerance band (see `trace_overhead`).
//!
//! # Tail-based sampling
//!
//! Retaining every trace of every solve would be unbounded; head-sampling
//! alone would miss exactly the solves worth keeping. The bounded
//! [`TraceStore`] ring therefore decides *at completion* (tail-based):
//!
//! * traces whose solve tripped a flight-recorder anomaly detector
//!   (stagnation, divergence, lane imbalance, latency drift) are always
//!   retained (`retained = "anomaly"`),
//! * traces exceeding [`TraceConfig::latency_threshold_ns`] are always
//!   retained (`retained = "latency"`),
//! * healthy traces are head-sampled 1-in-`sample_n`
//!   (`retained = "sampled"`), and
//! * everything else is dropped, counted in `gko_trace_drops_total`.
//!
//! The flight-recorder linkage is two-way: `FlightReport.trace_id` lets
//! `/runs` anomaly entries link their trace, and the tracer reads the
//! recorder's verdict for the just-finished solve to make the retention
//! decision (enabling tracing enables the recorder).
//!
//! Serving: `GET /traces` (index) and `GET /traces/<id>` (full span tree
//! JSON; `?format=chrome` re-uses the §11 Chrome-trace emitter).

use crate::config::Config;
use crate::executor::Executor;
use crate::log::Event;
use crate::metrics;
use crate::stop::StopReason;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Identifiers and span records
// ---------------------------------------------------------------------------

/// Identifier of one traced solve. Unique per executor for the lifetime of
/// its tracer (ids are never reused, even across disarm/re-arm).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// Identifier of one span inside a trace. `SpanId(0)` is reserved as "no
/// parent" (the root's parent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// The context a chunk closure carries through `WorkerPool` dispatch: which
/// trace it belongs to and which span (the dispatch span) parents the chunk
/// spans it records.
#[derive(Clone, Copy, Debug)]
pub struct SpanContext {
    /// Trace the dispatch belongs to.
    pub trace_id: TraceId,
    /// Span id the recorded chunk spans are parented under.
    pub parent_span_id: SpanId,
}

/// Layer of the solve tree a span belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A solver apply (the root, or a nested solver such as an inner
    /// preconditioner solve).
    Solve,
    /// One solver iteration (synthesized; closed by `IterationComplete`).
    Iteration,
    /// An instrumented operator/kernel apply.
    Kernel,
    /// An SpMV inspector run (`*::plan` kernels); `index` carries the chunk
    /// count the plan resolved to once `PlanBuilt` is observed.
    PlanBuild,
    /// One worker-pool dispatch; `index` carries the chunk count.
    Dispatch,
    /// One chunk closure executed by a pool lane; `index` is the chunk
    /// index, `lane` the executing lane, `steal` whether the executing lane
    /// differed from the chunk's home queue.
    Chunk,
}

impl SpanKind {
    /// Stable lowercase name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Solve => "solve",
            SpanKind::Iteration => "iteration",
            SpanKind::Kernel => "kernel_apply",
            SpanKind::PlanBuild => "plan_build",
            SpanKind::Dispatch => "pool_dispatch",
            SpanKind::Chunk => "chunk",
        }
    }
}

/// Sentinel `lane` for spans recorded on the solve (owner) thread rather
/// than by a pool lane.
pub const OWNER_LANE: u32 = u32::MAX;

/// One completed span. Times are nanoseconds since the tracer's epoch (the
/// first arm), so spans from one trace — and across traces — share a single
/// monotonic timebase.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Unique (per tracer) span id.
    pub id: u64,
    /// Parent span id; `0` for the root.
    pub parent: u64,
    /// Tree layer.
    pub kind: SpanKind,
    /// Operator / synthetic name (`"solver::Cg"`, `"csr"`, `"iteration"`,
    /// `"pool_dispatch"`, `"chunk"`, ...).
    pub name: &'static str,
    /// Executing pool lane for chunk spans, [`OWNER_LANE`] otherwise.
    pub lane: u32,
    /// Chunk spans: executed off the home queue (work stealing).
    pub steal: bool,
    /// Kind-specific payload: iteration number, chunk index, or dispatch /
    /// plan chunk count.
    pub index: u64,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

// ---------------------------------------------------------------------------
// Completed traces
// ---------------------------------------------------------------------------

/// One retained trace: the span tree plus the solve-level verdicts that
/// drove the retention decision.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Trace identifier (the `/traces/<id>` key).
    pub trace_id: u64,
    /// 1-based ordinal of this solve among all traced solves (drives the
    /// 1-in-N head sample).
    pub seq: u64,
    /// Root operator name, e.g. `"solver::Cg"`.
    pub annotation: String,
    /// Span id of the root solve span.
    pub root: u64,
    /// Wall-clock duration of the root span, nanoseconds.
    pub duration_ns: u64,
    /// Why the trace survived tail sampling: `"anomaly"`, `"latency"`, or
    /// `"sampled"`.
    pub retained: &'static str,
    /// Anomaly kinds the flight recorder flagged for this solve.
    pub anomalies: Vec<String>,
    /// Completed iterations (0 when the solver emits none, e.g. batches).
    pub iterations: u64,
    /// Whether the solve converged.
    pub converged: bool,
    /// Stop reason name (or a batch outcome summary).
    pub stop_reason: String,
    /// Spans discarded because the per-trace cap was hit.
    pub truncated_spans: u64,
    /// The completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl TraceReport {
    /// Index entry served by `GET /traces`.
    pub fn summary_config(&self) -> Config {
        let anomalies: Vec<Config> = self
            .anomalies
            .iter()
            .map(|k| Config::from(k.clone()))
            .collect();
        Config::map()
            .with("trace_id", self.trace_id as i64)
            .with("annotation", self.annotation.clone())
            .with("duration_ns", self.duration_ns as i64)
            .with("retained", self.retained)
            .with("anomalies", anomalies)
            .with("iterations", self.iterations as i64)
            .with("spans", self.spans.len())
    }

    /// Full span-tree document served by `GET /traces/<id>`.
    pub fn to_config(&self) -> Config {
        let spans: Vec<Config> = self
            .spans
            .iter()
            .map(|s| {
                let mut c = Config::map()
                    .with("id", s.id as i64)
                    .with("parent", s.parent as i64)
                    .with("kind", s.kind.name())
                    .with("name", s.name)
                    .with("index", s.index as i64)
                    .with("start_ns", s.start_ns as i64)
                    .with("dur_ns", s.dur_ns as i64);
                if s.lane != OWNER_LANE {
                    c = c.with("lane", s.lane as i64).with("steal", s.steal);
                }
                c
            })
            .collect();
        self.summary_config()
            .with("seq", self.seq as i64)
            .with("root", self.root as i64)
            .with("converged", self.converged)
            .with("stop_reason", self.stop_reason.clone())
            .with("truncated_spans", self.truncated_spans as i64)
            .with("spans", spans)
    }

    /// Renders the trace for `chrome://tracing` / Perfetto by re-using the
    /// §11 metrics emitter: owner-thread spans land on lane 0 ("solve"),
    /// chunk spans on one named lane per executing pool lane.
    pub fn to_chrome_trace(&self) -> String {
        let mut lanes: Vec<(u32, String)> = vec![(0, format!("solve {}", self.annotation))];
        let mut spans: Vec<metrics::TraceSpan> = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            let lane = if s.lane == OWNER_LANE { 0 } else { s.lane + 1 };
            if s.lane != OWNER_LANE && !lanes.iter().any(|(l, _)| *l == lane) {
                lanes.push((lane, format!("lane-{}", s.lane)));
            }
            spans.push(metrics::TraceSpan {
                name: s.name,
                lane,
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
            });
        }
        lanes.sort_by_key(|(l, _)| *l);
        metrics::chrome_trace_json(&lanes, &spans)
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tracing policy knobs (see the module docs for the sampling model).
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Head-sample 1 healthy trace in every `sample_n` (clamped to >= 1;
    /// `1` retains every trace).
    pub sample_n: u64,
    /// Traces slower than this are always retained regardless of sampling.
    pub latency_threshold_ns: u64,
    /// Retained traces kept in the [`TraceStore`] ring (oldest evicted).
    pub capacity: usize,
    /// Per-trace span cap; spans beyond it are counted in
    /// `truncated_spans`, keeping pathological solves bounded.
    pub max_spans: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_n: 16,
            latency_threshold_ns: 500_000_000,
            capacity: 16,
            max_spans: 200_000,
        }
    }
}

impl TraceConfig {
    fn normalized(mut self) -> Self {
        self.sample_n = self.sample_n.max(1);
        self.capacity = self.capacity.max(1);
        self.max_spans = self.max_spans.max(64);
        self
    }
}

// ---------------------------------------------------------------------------
// Tracer internals
// ---------------------------------------------------------------------------

/// An open (not yet completed) span on the owner thread's stack.
struct OpenSpan {
    id: u64,
    kind: SpanKind,
    name: &'static str,
    index: u64,
    start_ns: u64,
}

/// The trace currently being assembled. At most one solve per executor is
/// traced at a time; concurrent solves from other threads run untraced (and
/// unperturbed — their events fail the owner check and return immediately).
struct ActiveTrace {
    trace_id: u64,
    seq: u64,
    owner: ThreadId,
    root: u64,
    /// Batched solvers emit no `IterationComplete`, so no iteration layer
    /// is synthesized for them (kernels parent directly under the root).
    batch: bool,
    annotation: String,
    head_keep: bool,
    start_ns: u64,
    spans: Vec<SpanRecord>,
    open: Vec<OpenSpan>,
    iterations: u64,
    converged: bool,
    stop_reason: String,
    truncated: u64,
}

/// Bounded ring of retained [`TraceReport`]s (the tail-sampled store).
#[derive(Default)]
pub struct TraceStore {
    ring: VecDeque<TraceReport>,
}

#[derive(Default)]
struct TracerState {
    config: TraceConfig,
    epoch: Option<Instant>,
    seq: u64,
    next_id: u64,
    current: Option<ActiveTrace>,
    store: TraceStore,
    truncated_total: u64,
}

/// A finished trace awaiting its retention verdict (built under the state
/// lock, judged outside it so the flight-recorder query cannot deadlock
/// against a recorder that is querying the tracer).
struct FinishedTrace {
    report: TraceReport,
    head_keep: bool,
}

/// Per-executor trace collector. Embedded directly in the executor (like
/// the sanitizer): probing it costs one relaxed atomic load when inert.
pub struct Tracer {
    /// Tracing enabled (armed) at all.
    armed: AtomicBool, // atomic: flag
    /// A trace is currently assembling — the only flag the pool fast path
    /// reads.
    active: AtomicBool, // atomic: flag
    /// Healthy traces dropped by tail sampling (`gko_trace_drops_total`).
    drops: AtomicU64, // atomic: counter
    state: Mutex<TracerState>, // lock: tracer.state
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("armed", &self.is_armed())
            .field("drops", &self.drops())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for TraceHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHook").finish_non_exhaustive()
    }
}

fn elapsed_ns(epoch: &Option<Instant>) -> u64 {
    match epoch {
        Some(e) => e.elapsed().as_nanos() as u64,
        None => 0,
    }
}

fn stop_reason_name(reason: StopReason) -> &'static str {
    match reason {
        StopReason::MaxIterations => "max_iterations",
        StopReason::ResidualReduction => "residual_reduction",
        StopReason::AbsoluteResidual => "absolute_residual",
        StopReason::Breakdown => "breakdown",
    }
}

/// Appends a span unless the per-trace cap is hit (then counts it).
fn push_span(t: &mut ActiveTrace, max_spans: usize, rec: SpanRecord) {
    if t.spans.len() < max_spans {
        t.spans.push(rec);
    } else {
        t.truncated += 1;
    }
}

impl Tracer {
    pub(crate) fn new() -> Self {
        Tracer {
            armed: AtomicBool::new(false),
            active: AtomicBool::new(false),
            drops: AtomicU64::new(0),
            state: Mutex::new(TracerState::default()),
        }
    }

    fn state(&self) -> MutexGuard<'_, TracerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms tracing with `config`. Idempotent; re-arming updates the policy
    /// but keeps the epoch, id sequence, and retained traces.
    pub(crate) fn arm(&self, config: TraceConfig) {
        let mut s = self.state();
        s.config = config.normalized();
        if s.epoch.is_none() {
            s.epoch = Some(Instant::now());
        }
        let cap = s.config.capacity;
        while s.store.ring.len() > cap {
            s.store.ring.pop_front();
        }
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms tracing; an in-flight trace is abandoned (not counted as a
    /// sampling drop). Retained traces stay readable.
    pub(crate) fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
        self.active.store(false, Ordering::Release);
        self.state().current = None;
    }

    /// Whether tracing is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Healthy traces dropped by tail sampling.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Spans discarded across all traces by the per-trace cap.
    pub fn truncated_spans(&self) -> u64 {
        self.state().truncated_total
    }

    /// Trace id of the solve currently being assembled, if any.
    pub fn active_trace_id(&self) -> Option<u64> {
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        self.state().current.as_ref().map(|t| t.trace_id)
    }

    /// Retained traces, oldest first.
    pub fn reports(&self) -> Vec<TraceReport> {
        self.state().store.ring.iter().cloned().collect()
    }

    /// Number of retained traces.
    pub fn retained(&self) -> usize {
        self.state().store.ring.len()
    }

    /// The most recently retained trace.
    pub fn latest(&self) -> Option<TraceReport> {
        self.state().store.ring.back().cloned()
    }

    /// Looks up a retained trace by id.
    pub fn report(&self, trace_id: u64) -> Option<TraceReport> {
        self.state()
            .store
            .ring
            .iter()
            .find(|r| r.trace_id == trace_id)
            .cloned()
    }

    /// `GET /traces` index: newest first, plus store/drop counters.
    pub fn index_json(&self) -> String {
        let s = self.state();
        let traces: Vec<Config> = s
            .store
            .ring
            .iter()
            .rev()
            .map(TraceReport::summary_config)
            .collect();
        let doc = Config::map()
            .with("traces", traces)
            .with("drops_total", self.drops() as i64)
            .with("truncated_spans_total", s.truncated_total as i64)
            .with("armed", self.is_armed());
        crate::config::json::to_string_pretty(&doc)
    }

    // -- event-driven assembly (owner-thread layers) ------------------------

    /// Feeds one §10 event into the assembler. Called by the trace hook the
    /// executor attaches while tracing is armed; must never call back into
    /// the logger registry (the registry lock is held during delivery).
    pub(crate) fn observe(&self, event: &Event, exec: &Executor) {
        if !self.armed.load(Ordering::Relaxed) {
            return;
        }
        let tid = std::thread::current().id();
        match event {
            Event::LinOpApplyStarted { op } => self.on_started(op, tid),
            Event::LinOpApplyCompleted { op, .. } => {
                if let Some(done) = self.on_completed(op, tid) {
                    self.finish(done, exec);
                }
            }
            Event::IterationComplete { iteration, .. } => {
                self.on_iteration(*iteration as u64, tid)
            }
            Event::PlanBuilt { chunks, .. } => self.on_plan_built(*chunks, tid),
            Event::SolveCompleted {
                iterations, reason, ..
            } => self.on_solve_completed(
                tid,
                *iterations as u64,
                reason.is_converged(),
                stop_reason_name(*reason).to_string(),
            ),
            Event::BatchSolveCompleted {
                systems,
                converged,
                breakdowns,
                iterations,
                ..
            } => self.on_solve_completed(
                tid,
                *iterations as u64,
                *converged == *systems && *breakdowns == 0,
                format!(
                    "batch: {converged}/{systems} converged, {breakdowns} breakdowns"
                ),
            ),
            _ => {}
        }
    }

    fn on_started(&self, op: &'static str, tid: ThreadId) {
        let mut s = self.state();
        let st = &mut *s;
        let now = elapsed_ns(&st.epoch);
        match st.current.as_mut() {
            None => {
                // Only a solver apply roots a new trace; bare kernel applies
                // outside a solve stay untraced.
                if !op.starts_with("solver::") {
                    return;
                }
                st.seq += 1;
                st.next_id += 1;
                let trace_id = st.next_id;
                st.next_id += 1;
                let root = st.next_id;
                let head_keep = (st.seq - 1).is_multiple_of(st.config.sample_n);
                st.current = Some(ActiveTrace {
                    trace_id,
                    seq: st.seq,
                    owner: tid,
                    root,
                    batch: op.starts_with("solver::Batch"),
                    annotation: op.to_string(),
                    head_keep,
                    start_ns: now,
                    spans: Vec::new(),
                    open: vec![OpenSpan {
                        id: root,
                        kind: SpanKind::Solve,
                        name: op,
                        index: 0,
                        start_ns: now,
                    }],
                    iterations: 0,
                    converged: false,
                    stop_reason: String::new(),
                    truncated: 0,
                });
                self.active.store(true, Ordering::Release);
            }
            Some(t) => {
                if t.owner != tid {
                    return;
                }
                let kind = if op.ends_with("::plan") {
                    SpanKind::PlanBuild
                } else if op.starts_with("solver::") {
                    SpanKind::Solve
                } else {
                    SpanKind::Kernel
                };
                // Synthesize the iteration layer lazily: the first kernel
                // opened directly under the root starts iteration k+1 (it
                // closes on `IterationComplete`, which stamps the number).
                // The prologue (initial residual) thus lands in iteration 1.
                if !t.batch && t.open.len() == 1 {
                    st.next_id += 1;
                    t.open.push(OpenSpan {
                        id: st.next_id,
                        kind: SpanKind::Iteration,
                        name: "iteration",
                        index: t.iterations + 1,
                        start_ns: now,
                    });
                }
                st.next_id += 1;
                t.open.push(OpenSpan {
                    id: st.next_id,
                    kind,
                    name: op,
                    index: 0,
                    start_ns: now,
                });
            }
        }
    }

    /// Closes the innermost open span matching `op`; anything opened above
    /// it (a dangling iteration or dispatch span) is closed alongside.
    /// Returns the finished trace when the root itself closed.
    fn on_completed(&self, op: &'static str, tid: ThreadId) -> Option<FinishedTrace> {
        let mut s = self.state();
        let st = &mut *s;
        let now = elapsed_ns(&st.epoch);
        let max_spans = st.config.max_spans;
        let t = st.current.as_mut()?;
        if t.owner != tid || !t.open.iter().any(|o| o.name == op) {
            return None;
        }
        while let Some(top) = t.open.pop() {
            let matched = top.name == op;
            let parent = t.open.last().map(|o| o.id).unwrap_or(0);
            let rec = SpanRecord {
                id: top.id,
                parent,
                kind: top.kind,
                name: top.name,
                lane: OWNER_LANE,
                steal: false,
                index: top.index,
                start_ns: top.start_ns,
                dur_ns: now.saturating_sub(top.start_ns),
            };
            push_span(t, max_spans, rec);
            if matched {
                break;
            }
        }
        if !t.open.is_empty() {
            return None;
        }
        // Root closed: detach the trace and judge it outside the lock.
        let t = st.current.take()?;
        self.active.store(false, Ordering::Release);
        st.truncated_total += t.truncated;
        let duration_ns = now.saturating_sub(t.start_ns);
        Some(FinishedTrace {
            head_keep: t.head_keep,
            report: TraceReport {
                trace_id: t.trace_id,
                seq: t.seq,
                annotation: t.annotation,
                root: t.root,
                duration_ns,
                retained: "",
                anomalies: Vec::new(),
                iterations: t.iterations,
                converged: t.converged,
                stop_reason: t.stop_reason,
                truncated_spans: t.truncated,
                spans: t.spans,
            },
        })
    }

    fn on_iteration(&self, iteration: u64, tid: ThreadId) {
        let mut s = self.state();
        let st = &mut *s;
        let now = elapsed_ns(&st.epoch);
        let max_spans = st.config.max_spans;
        let Some(t) = st.current.as_mut() else { return };
        if t.owner != tid {
            return;
        }
        t.iterations = t.iterations.max(iteration);
        if t.open.last().is_some_and(|o| o.kind == SpanKind::Iteration) {
            if let Some(top) = t.open.pop() {
                let parent = t.open.last().map(|o| o.id).unwrap_or(0);
                let rec = SpanRecord {
                    id: top.id,
                    parent,
                    kind: SpanKind::Iteration,
                    name: top.name,
                    lane: OWNER_LANE,
                    steal: false,
                    index: iteration,
                    start_ns: top.start_ns,
                    dur_ns: now.saturating_sub(top.start_ns),
                };
                push_span(t, max_spans, rec);
            }
        }
    }

    fn on_plan_built(&self, chunks: u64, tid: ThreadId) {
        let mut s = self.state();
        let Some(t) = s.current.as_mut() else { return };
        if t.owner != tid {
            return;
        }
        if let Some(top) = t.open.last_mut() {
            if top.kind == SpanKind::PlanBuild {
                top.index = chunks;
            }
        }
    }

    fn on_solve_completed(&self, tid: ThreadId, iterations: u64, converged: bool, reason: String) {
        let mut s = self.state();
        let Some(t) = s.current.as_mut() else { return };
        if t.owner != tid {
            return;
        }
        t.iterations = t.iterations.max(iterations);
        t.converged = converged;
        t.stop_reason = reason;
    }

    /// Tail-sampling verdict. Runs without the tracer lock held so reading
    /// the flight recorder cannot interleave with a recorder that is
    /// reading [`Tracer::active_trace_id`].
    fn finish(&self, done: FinishedTrace, exec: &Executor) {
        let mut report = done.report;
        // Continuous profiling folds every completed trace — including the
        // ones tail sampling is about to drop — into the flame aggregate.
        // One relaxed load while profiling is disarmed; no tracer lock is
        // held here, and the fold only takes the leaf `profile.state` lock.
        exec.profile().fold(&report);
        if let Some(recorder) = exec.flight_recorder() {
            if let Some(flight) = recorder.latest() {
                if flight.trace_id == Some(report.trace_id) {
                    report.anomalies = flight
                        .anomalies
                        .iter()
                        .map(|a| a.kind().to_string())
                        .collect();
                }
            }
        }
        let mut s = self.state();
        report.retained = if !report.anomalies.is_empty() {
            "anomaly"
        } else if report.duration_ns >= s.config.latency_threshold_ns {
            "latency"
        } else if done.head_keep {
            "sampled"
        } else {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let cap = s.config.capacity;
        if s.store.ring.len() >= cap {
            s.store.ring.pop_front();
        }
        s.store.ring.push_back(report);
    }

    // -- explicit pool propagation ------------------------------------------

    /// Opens a dispatch span and hands back the context chunk closures
    /// record against. Returns `None` — after exactly one relaxed load —
    /// unless a trace is active *and* owned by the calling thread (nested
    /// dispatches submitted by pool workers stay unattributed).
    pub(crate) fn begin_dispatch(&self, lanes: usize, chunks: usize) -> Option<DispatchTrace> {
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        let tid = std::thread::current().id();
        let mut s = self.state();
        let st = &mut *s;
        let epoch = st.epoch?;
        let now = elapsed_ns(&st.epoch);
        let t = st.current.as_mut()?;
        if t.owner != tid {
            return None;
        }
        st.next_id += 1;
        let span_id = st.next_id;
        t.open.push(OpenSpan {
            id: span_id,
            kind: SpanKind::Dispatch,
            name: "pool_dispatch",
            index: chunks as u64,
            start_ns: now,
        });
        Some(DispatchTrace {
            ctx: SpanContext {
                trace_id: TraceId(t.trace_id),
                parent_span_id: SpanId(span_id),
            },
            epoch,
            chunks,
            lanes: (0..lanes.max(1)).map(|_| LaneChunkBuf::default()).collect(),
        })
    }

    /// Folds a dispatch's per-lane chunk records into the tree and closes
    /// the dispatch span. Chunk spans parent under the dispatch span from
    /// the propagated [`SpanContext`].
    pub(crate) fn end_dispatch(&self, d: DispatchTrace) {
        let mut s = self.state();
        let st = &mut *s;
        let now = elapsed_ns(&st.epoch);
        let max_spans = st.config.max_spans;
        let Some(t) = st.current.as_mut() else { return };
        if t.trace_id != d.ctx.trace_id.0 {
            return;
        }
        let parent_chunks = d.ctx.parent_span_id.0;
        for buf in d.lanes.iter() {
            let mut recs = buf.recs.lock().unwrap_or_else(PoisonError::into_inner);
            for rec in recs.drain(..) {
                st.next_id += 1;
                let span = SpanRecord {
                    id: st.next_id,
                    parent: parent_chunks,
                    kind: SpanKind::Chunk,
                    name: "chunk",
                    lane: rec.lane,
                    steal: rec.steal,
                    index: rec.index as u64,
                    start_ns: rec.start_ns,
                    dur_ns: rec.dur_ns,
                };
                push_span(t, max_spans, span);
            }
        }
        if t.open.last().is_some_and(|o| o.id == parent_chunks) {
            if let Some(top) = t.open.pop() {
                let parent = t.open.last().map(|o| o.id).unwrap_or(0);
                let rec = SpanRecord {
                    id: top.id,
                    parent,
                    kind: SpanKind::Dispatch,
                    name: top.name,
                    lane: OWNER_LANE,
                    steal: false,
                    index: d.chunks as u64,
                    start_ns: top.start_ns,
                    dur_ns: now.saturating_sub(top.start_ns),
                };
                push_span(t, max_spans, rec);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Event hook
// ---------------------------------------------------------------------------

/// Logger that forwards the executor's §10 event stream into its embedded
/// tracer. Attached by `Executor::enable_tracing` and detached by
/// `disable_tracing`/`clear_loggers`, so solves on an untraced executor pay
/// only the registry's own relaxed-load fast path.
pub(crate) struct TraceHook {
    exec: crate::executor::WeakExecutor,
}

impl TraceHook {
    pub(crate) fn new(exec: crate::executor::WeakExecutor) -> Self {
        TraceHook { exec }
    }
}

impl crate::log::Logger for TraceHook {
    fn on_event(&self, event: &Event) {
        if let Some(exec) = self.exec.upgrade() {
            exec.tracer().observe(event, &exec);
        }
    }

    fn name(&self) -> &'static str {
        "trace"
    }
}

// ---------------------------------------------------------------------------
// Dispatch-scoped chunk recording
// ---------------------------------------------------------------------------

/// One chunk execution recorded by a lane.
struct ChunkRec {
    index: usize,
    lane: u32,
    steal: bool,
    start_ns: u64,
    dur_ns: u64,
}

/// Cache-line-padded per-lane buffer: each lane appends its own chunk
/// records without contending with (or false-sharing against) its
/// neighbours.
#[repr(align(64))]
#[derive(Default)]
struct LaneChunkBuf {
    recs: Mutex<Vec<ChunkRec>>, // lock: trace.chunkbuf.recs
}

/// Live handle for one traced pool dispatch: carries the propagated
/// [`SpanContext`] and the per-lane chunk buffers. Created by
/// [`Tracer::begin_dispatch`], consumed by [`Tracer::end_dispatch`].
pub(crate) struct DispatchTrace {
    ctx: SpanContext,
    epoch: Instant,
    chunks: usize,
    lanes: Box<[LaneChunkBuf]>,
}

impl DispatchTrace {
    /// Nanoseconds since the tracer epoch (chunk closures sample this at
    /// begin and end).
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The context chunk closures carry: `{trace_id, parent_span_id}`.
    pub(crate) fn context(&self) -> SpanContext {
        self.ctx
    }

    /// Records one executed chunk against the executing lane's buffer.
    /// `ctx` is the span context the chunk closure carried across the
    /// dispatch boundary; a record whose context does not match this
    /// dispatch is discarded rather than attributed to the wrong tree.
    pub(crate) fn record(
        &self,
        ctx: SpanContext,
        index: usize,
        lane: usize,
        steal: bool,
        start_ns: u64,
        end_ns: u64,
    ) {
        if ctx.trace_id != self.ctx.trace_id || ctx.parent_span_id != self.ctx.parent_span_id {
            return;
        }
        let Some(buf) = self.lanes.get(lane.min(self.lanes.len().saturating_sub(1))) else {
            return;
        };
        let mut recs = buf.recs.lock().unwrap_or_else(PoisonError::into_inner);
        recs.push(ChunkRec {
            index,
            lane: lane as u32,
            steal,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        });
    }
}
