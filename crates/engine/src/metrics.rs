//! Always-on aggregated metrics: counters, latency histograms, trace spans.
//!
//! [`crate::log`] gives the engine a raw event stream; this module gives it
//! the layer a production deployment actually watches. A
//! [`MetricsRegistry`] is an ordinary [`Logger`] — attach it to an
//! executor's [`crate::log::LoggerRegistry`] and every instrumented kernel,
//! solver iteration, allocation, and pool dispatch is folded into
//!
//! * **sharded relaxed-atomic counters** (one cache line per shard, so
//!   concurrent lanes never bounce a counter line between cores),
//! * **log2-bucketed latency histograms** per kernel kind (SpMV per format,
//!   dense BLAS, solver applies), for pool-dispatch latency, and for
//!   allocation sizes — each answering p50/p95/p99/max queries, and
//! * an optional bounded **trace buffer** of completed spans rebuilt from
//!   `LinOpApplyStarted`/`Completed` pairs, exportable as a
//!   `chrome://tracing` / Perfetto-loadable JSON document.
//!
//! Reading happens through an immutable [`MetricsSnapshot`], which renders
//! itself as Prometheus text exposition ([`MetricsSnapshot::to_prometheus`])
//! or a Chrome trace ([`MetricsSnapshot::to_chrome_trace`]).
//!
//! The fast path is unchanged: when no registry (or any other logger) is
//! attached, instrumented sites still pay exactly one relaxed atomic load
//! (see [`crate::log::LoggerRegistry::is_active`]); a registry that exists
//! but is not attached records nothing.

use crate::log::{Event, Logger};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::ThreadId;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

/// Number of independent shards behind every [`ShardedCounter`] and
/// [`LatencyHistogram`]. Each thread hashes to one shard, so up to this many
/// lanes update metrics without sharing a cache line.
pub const METRIC_SHARDS: usize = 8;

/// One cache line holding one shard's counter.
#[repr(align(64))]
#[derive(Default)]
// atomic: counter
struct PaddedU64(AtomicU64);

thread_local! {
    /// Stable per-thread shard assignment, handed out round-robin on first
    /// metric touch so lanes spread evenly over the shards.
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn thread_shard() -> usize {
    // atomic: counter
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    THREAD_SHARD.with(|cell| {
        let mut v = cell.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            cell.set(v);
        }
        v % METRIC_SHARDS
    })
}

/// A monotonically increasing counter sharded over [`METRIC_SHARDS`] cache
/// lines. Increments are relaxed atomics on the calling thread's home
/// shard; reads sum all shards (and may race with concurrent increments,
/// which is fine for monitoring).
#[derive(Default)]
pub struct ShardedCounter {
    shards: [PaddedU64; METRIC_SHARDS],
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        ShardedCounter::default()
    }

    /// Adds `v` to the calling thread's shard.
    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[thread_shard()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum over all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ShardedCounter").field(&self.get()).finish()
    }
}

// ---------------------------------------------------------------------------
// Log2-bucketed histogram
// ---------------------------------------------------------------------------

/// Number of buckets in a [`LatencyHistogram`]: bucket 0 holds the value 0,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`, and the last bucket
/// absorbs everything above `2^(HISTOGRAM_BUCKETS-2)`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index for a recorded value (log2 bucketing).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the largest value it can hold).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

struct HistShard {
    counts: [AtomicU64; HISTOGRAM_BUCKETS], // atomic: counter
    sum: AtomicU64,                         // atomic: counter
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed histogram with sharded relaxed-atomic buckets.
///
/// Designed for nanosecond latencies and byte sizes: 64 power-of-two
/// buckets cover the full `u64` range with a worst-case quantile error of
/// 2x, which is plenty to tell a 1 µs kernel from a 1 ms one. The exact
/// maximum is tracked separately so tail queries never under-report.
#[derive(Default)]
pub struct LatencyHistogram {
    shards: [HistShard; METRIC_SHARDS],
    max: AtomicU64, // atomic: counter
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[thread_shard()];
        shard.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merges the shards into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            for (b, c) in buckets.iter_mut().zip(&shard.counts) {
                *b += c.load(Ordering::Relaxed);
            }
            sum += shard.sum.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum,
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.count)
            .field("max", &s.max)
            .finish()
    }
}

/// Immutable view of a [`LatencyHistogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Exact largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`: the inclusive upper bound of the
    /// bucket containing the rank-`ceil(q * count)` observation, clamped to
    /// the exact maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Trace buffer
// ---------------------------------------------------------------------------

/// One completed span in the trace buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Operation name (`"csr"`, `"dense::dot"`, `"pool::dispatch"`, ...).
    pub name: &'static str,
    /// Lane (rendered as the Chrome-trace `tid`), one per emitting thread.
    pub lane: u32,
    /// Start offset from registry creation, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

struct OpenSpan {
    op: &'static str,
    start_ns: u64,
}

#[derive(Default)]
struct TraceState {
    /// Lane id and thread name per emitting thread, assigned on first span.
    lanes: HashMap<ThreadId, (u32, String)>,
    /// Per-thread stack of spans opened by `LinOpApplyStarted`.
    open: HashMap<ThreadId, Vec<OpenSpan>>,
    spans: Vec<TraceSpan>,
    dropped: u64,
}

struct Trace {
    epoch: Instant,
    capacity: usize,
    state: Mutex<TraceState>, // lock: metrics.trace.state
}

impl Trace {
    fn new(capacity: usize) -> Self {
        Trace {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            state: Mutex::new(TraceState::default()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn state(&self) -> std::sync::MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lane_of(state: &mut TraceState, tid: ThreadId) -> u32 {
        let next = state.lanes.len() as u32;
        state
            .lanes
            .entry(tid)
            .or_insert_with(|| {
                let name = std::thread::current()
                    .name()
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("thread-{next}"));
                (next, name)
            })
            .0
    }

    fn begin(&self, op: &'static str) {
        let start_ns = self.now_ns();
        let tid = std::thread::current().id();
        let mut state = self.state();
        state.open.entry(tid).or_default().push(OpenSpan { op, start_ns });
    }

    fn push_span(state: &mut TraceState, capacity: usize, span: TraceSpan) {
        if state.spans.len() >= capacity {
            state.dropped += 1;
        } else {
            state.spans.push(span);
        }
    }

    fn complete(&self, op: &'static str, wall_ns: u64) {
        let now = self.now_ns();
        let tid = std::thread::current().id();
        let mut state = self.state();
        let start_ns = match state.open.get_mut(&tid) {
            // Defensive: only pop a frame that matches; an unpaired
            // completion synthesizes its start from the event's duration.
            Some(stack) if stack.last().is_some_and(|f| f.op == op) => {
                // lint: allow(panic): guarded by the `last()` check in the
                // match arm — the stack is non-empty here.
                stack.pop().expect("frame present").start_ns
            }
            _ => now.saturating_sub(wall_ns),
        };
        let lane = Trace::lane_of(&mut state, tid);
        let dur_ns = now.saturating_sub(start_ns);
        Trace::push_span(
            &mut state,
            self.capacity,
            TraceSpan {
                name: op,
                lane,
                start_ns,
                dur_ns,
            },
        );
    }

    /// Records a span retroactively: it ends now and lasted `wall_ns`
    /// (used for events reported only on completion, like pool dispatches).
    fn retro_span(&self, name: &'static str, wall_ns: u64) {
        let now = self.now_ns();
        let tid = std::thread::current().id();
        let mut state = self.state();
        let lane = Trace::lane_of(&mut state, tid);
        Trace::push_span(
            &mut state,
            self.capacity,
            TraceSpan {
                name,
                lane,
                start_ns: now.saturating_sub(wall_ns),
                dur_ns: wall_ns,
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Per-kernel metric pair: wall-clock and virtual (cost-model) latencies.
#[derive(Default)]
struct KernelMetrics {
    wall_ns: LatencyHistogram,
    virtual_ns: LatencyHistogram,
}

/// The engine-wide metrics registry.
///
/// A registry is an ordinary [`Logger`]; attach it with
/// [`crate::Executor::add_logger`] — or let
/// [`crate::Executor::enable_metrics`] do both steps — and read it back with
/// [`MetricsRegistry::snapshot`]. All recording paths are lock-free sharded
/// atomics except the first observation of a new kernel name (which takes a
/// write lock once) and trace-span bookkeeping (a short mutex, only when
/// tracing is enabled).
pub struct MetricsRegistry {
    kernels: RwLock<BTreeMap<&'static str, Arc<KernelMetrics>>>, // lock: metrics.kernels
    solver_iterations: RwLock<BTreeMap<&'static str, Arc<ShardedCounter>>>, // lock: metrics.solver-iters
    pool_dispatch_ns: LatencyHistogram,
    alloc_bytes: LatencyHistogram,
    solves: ShardedCounter,
    criterion_checks: ShardedCounter,
    plan_builds: ShardedCounter,
    events: ShardedCounter,
    /// Anomalies reported by the flight recorder (or any other detector),
    /// keyed by anomaly kind.
    anomalies: RwLock<BTreeMap<&'static str, Arc<ShardedCounter>>>, // lock: metrics.anomalies
    trace: Option<Trace>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("events", &self.events.get())
            .field("tracing", &self.trace.is_some())
            .finish()
    }
}

impl MetricsRegistry {
    /// Default bound on retained trace spans.
    pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

    /// Registry with span tracing enabled at the default capacity.
    pub fn new() -> Self {
        MetricsRegistry::with_trace_capacity(MetricsRegistry::DEFAULT_TRACE_CAPACITY)
    }

    /// Registry with span tracing bounded at `capacity` spans; spans beyond
    /// the bound are counted as dropped, never silently lost.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            trace: Some(Trace::new(capacity)),
            ..MetricsRegistry::without_trace()
        }
    }

    /// Registry that aggregates histograms/counters only (no span buffer).
    pub fn without_trace() -> Self {
        MetricsRegistry {
            kernels: RwLock::new(BTreeMap::new()),
            solver_iterations: RwLock::new(BTreeMap::new()),
            pool_dispatch_ns: LatencyHistogram::new(),
            alloc_bytes: LatencyHistogram::new(),
            solves: ShardedCounter::new(),
            criterion_checks: ShardedCounter::new(),
            plan_builds: ShardedCounter::new(),
            events: ShardedCounter::new(),
            anomalies: RwLock::new(BTreeMap::new()),
            trace: None,
        }
    }

    /// Total events this registry has observed.
    pub fn events_observed(&self) -> u64 {
        self.events.get()
    }

    fn kernel(&self, op: &'static str) -> Arc<KernelMetrics> {
        if let Some(k) = self
            .kernels
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(op)
        {
            return k.clone();
        }
        self.kernels
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(op)
            .or_default()
            .clone()
    }

    fn iteration_counter(&self, solver: &'static str) -> Arc<ShardedCounter> {
        if let Some(c) = self
            .solver_iterations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(solver)
        {
            return c.clone();
        }
        self.solver_iterations
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(solver)
            .or_default()
            .clone()
    }

    /// Increments the counter for one detected anomaly of the given kind
    /// (`"stagnation"`, `"lane_imbalance"`, ...). Exported as the labelled
    /// `gko_anomalies_total` Prometheus series.
    pub fn record_anomaly(&self, kind: &'static str) {
        if let Some(c) = self
            .anomalies
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(kind)
        {
            c.incr();
            return;
        }
        self.anomalies
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(kind)
            .or_default()
            .incr();
    }

    /// Materializes everything recorded so far into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let kernels = self
            .kernels
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(op, k)| {
                let wall_ns = k.wall_ns.snapshot();
                KernelSnapshot {
                    op: op.to_string(),
                    calls: wall_ns.count,
                    wall_ns,
                    virtual_ns: k.virtual_ns.snapshot(),
                }
            })
            .collect();
        let solver_iterations = self
            .solver_iterations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(s, c)| (s.to_string(), c.get()))
            .collect();
        let anomalies = self
            .anomalies
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, c)| (k.to_string(), c.get()))
            .collect();
        let (spans, lanes, trace_dropped) = match &self.trace {
            None => (Vec::new(), Vec::new(), 0),
            Some(trace) => {
                let state = trace.state();
                let mut lanes: Vec<(u32, String)> =
                    state.lanes.values().cloned().collect();
                lanes.sort();
                (state.spans.clone(), lanes, state.dropped)
            }
        };
        MetricsSnapshot {
            kernels,
            solver_iterations,
            pool_dispatch_ns: self.pool_dispatch_ns.snapshot(),
            alloc_bytes: self.alloc_bytes.snapshot(),
            solves: self.solves.get(),
            criterion_checks: self.criterion_checks.get(),
            plan_builds: self.plan_builds.get(),
            events: self.events.get(),
            anomalies,
            spans,
            lanes,
            trace_dropped,
        }
    }
}

impl Logger for MetricsRegistry {
    fn on_event(&self, event: &Event) {
        self.events.incr();
        match *event {
            Event::LinOpApplyStarted { op } => {
                if let Some(trace) = &self.trace {
                    trace.begin(op);
                }
            }
            Event::LinOpApplyCompleted {
                op,
                wall_ns,
                virtual_ns,
            } => {
                let kernel = self.kernel(op);
                kernel.wall_ns.record(wall_ns);
                kernel.virtual_ns.record(virtual_ns);
                if let Some(trace) = &self.trace {
                    trace.complete(op, wall_ns);
                }
            }
            Event::IterationComplete { solver, .. } => {
                self.iteration_counter(solver).incr();
            }
            Event::CriterionChecked { .. } => self.criterion_checks.incr(),
            Event::SolveCompleted { .. } => self.solves.incr(),
            // A batch is one solve from the registry's point of view; the
            // flight recorder carries the per-system breakdown.
            Event::BatchSolveCompleted { .. } => self.solves.incr(),
            Event::PlanBuilt { .. } => self.plan_builds.incr(),
            Event::AllocationComplete { bytes } => self.alloc_bytes.record(bytes as u64),
            Event::PoolDispatch { wall_ns, .. } => {
                self.pool_dispatch_ns.record(wall_ns);
                if let Some(trace) = &self.trace {
                    trace.retro_span("pool::dispatch", wall_ns);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "metrics"
    }
}

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

/// Aggregates of one kernel kind inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelSnapshot {
    /// Kernel / operator name.
    pub op: String,
    /// Completed invocations.
    pub calls: u64,
    /// Wall-clock latency distribution.
    pub wall_ns: HistogramSnapshot,
    /// Virtual (cost-model) latency distribution.
    pub virtual_ns: HistogramSnapshot,
}

/// Immutable, exportable view of everything a [`MetricsRegistry`] recorded.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-kernel latency aggregates, sorted by kernel name.
    pub kernels: Vec<KernelSnapshot>,
    /// Completed iterations per solver name, sorted by name.
    pub solver_iterations: Vec<(String, u64)>,
    /// Worker-pool dispatch latency distribution (wall nanoseconds).
    pub pool_dispatch_ns: HistogramSnapshot,
    /// Allocation size distribution (bytes).
    pub alloc_bytes: HistogramSnapshot,
    /// Completed solves observed.
    pub solves: u64,
    /// Stopping-criterion evaluations observed.
    pub criterion_checks: u64,
    /// SpMV plan (inspector) builds observed.
    pub plan_builds: u64,
    /// Total events observed.
    pub events: u64,
    /// Detected anomalies per kind, sorted by kind.
    pub anomalies: Vec<(String, u64)>,
    /// Completed trace spans (empty when tracing is disabled).
    pub spans: Vec<TraceSpan>,
    /// Lane id / thread name pairs for the span lanes.
    pub lanes: Vec<(u32, String)>,
    /// Spans discarded because the trace buffer was full.
    pub trace_dropped: u64,
}

/// Escapes a label *value* per the Prometheus text-format spec: backslash,
/// double quote, and line feed.
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes `# HELP` text per the spec: backslash and line feed (quotes are
/// legal in help text).
fn prom_help_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Emits the `# HELP` / `# TYPE` header pair for one metric family.
fn prom_header(out: &mut String, metric: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {metric} {}", prom_help_escape(help));
    let _ = writeln!(out, "# TYPE {metric} {kind}");
}

fn prom_histogram(out: &mut String, metric: &str, labels: &str, h: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    let last = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .unwrap_or(0);
    for (i, c) in h.buckets.iter().enumerate().take(last + 1) {
        cumulative += c;
        let _ = writeln!(
            out,
            "{metric}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
            bucket_upper_bound(i)
        );
    }
    let _ = writeln!(out, "{metric}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    if labels.is_empty() {
        let _ = writeln!(out, "{metric}_sum {}", h.sum);
        let _ = writeln!(out, "{metric}_count {}", h.count);
    } else {
        let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", h.sum);
        let _ = writeln!(out, "{metric}_count{{{labels}}} {}", h.count);
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Aggregates for one kernel, if it was observed.
    pub fn kernel(&self, op: &str) -> Option<&KernelSnapshot> {
        self.kernels.iter().find(|k| k.op == op)
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `# HELP`/`# TYPE` headers for every family, escaped label values, and
    /// cumulative-`le` histograms, labeled by kernel/solver.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        prom_header(
            &mut out,
            "gko_events_total",
            "Events observed by the metrics registry.",
            "counter",
        );
        let _ = writeln!(out, "gko_events_total {}", self.events);
        prom_header(&mut out, "gko_solves_total", "Completed solves.", "counter");
        let _ = writeln!(out, "gko_solves_total {}", self.solves);
        prom_header(
            &mut out,
            "gko_criterion_checks_total",
            "Stopping-criterion evaluations.",
            "counter",
        );
        let _ = writeln!(out, "gko_criterion_checks_total {}", self.criterion_checks);
        prom_header(
            &mut out,
            "gko_plan_builds_total",
            "SpMV execution-plan (inspector) builds.",
            "counter",
        );
        let _ = writeln!(out, "gko_plan_builds_total {}", self.plan_builds);
        prom_header(
            &mut out,
            "gko_solver_iterations_total",
            "Completed iterations per solver.",
            "counter",
        );
        for (solver, n) in &self.solver_iterations {
            let _ = writeln!(
                out,
                "gko_solver_iterations_total{{solver=\"{}\"}} {n}",
                prom_escape(solver)
            );
        }
        prom_header(
            &mut out,
            "gko_anomalies_total",
            "Anomalies flagged by the flight-recorder detectors, per kind.",
            "counter",
        );
        for (kind, n) in &self.anomalies {
            let _ = writeln!(
                out,
                "gko_anomalies_total{{kind=\"{}\"}} {n}",
                prom_escape(kind)
            );
        }
        prom_header(
            &mut out,
            "gko_kernel_calls_total",
            "Completed kernel invocations per operator.",
            "counter",
        );
        for k in &self.kernels {
            let _ = writeln!(
                out,
                "gko_kernel_calls_total{{op=\"{}\"}} {}",
                prom_escape(&k.op),
                k.calls
            );
        }
        prom_header(
            &mut out,
            "gko_kernel_wall_ns",
            "Wall-clock kernel latency in nanoseconds.",
            "histogram",
        );
        for k in &self.kernels {
            let labels = format!("op=\"{}\"", prom_escape(&k.op));
            prom_histogram(&mut out, "gko_kernel_wall_ns", &labels, &k.wall_ns);
        }
        prom_header(
            &mut out,
            "gko_kernel_virtual_ns",
            "Virtual (cost-model) kernel latency in nanoseconds.",
            "histogram",
        );
        for k in &self.kernels {
            let labels = format!("op=\"{}\"", prom_escape(&k.op));
            prom_histogram(&mut out, "gko_kernel_virtual_ns", &labels, &k.virtual_ns);
        }
        prom_header(
            &mut out,
            "gko_pool_dispatch_ns",
            "Worker-pool dispatch latency in wall nanoseconds.",
            "histogram",
        );
        prom_histogram(&mut out, "gko_pool_dispatch_ns", "", &self.pool_dispatch_ns);
        prom_header(
            &mut out,
            "gko_alloc_bytes",
            "Allocation sizes in bytes.",
            "histogram",
        );
        prom_histogram(&mut out, "gko_alloc_bytes", "", &self.alloc_bytes);
        out
    }

    /// Renders the trace spans as a `chrome://tracing` / Perfetto-loadable
    /// JSON document with balanced `"B"`/`"E"` event pairs and one named
    /// lane (`tid`) per emitting thread.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace_json(&self.lanes, &self.spans)
    }
}

/// Shared Chrome-trace emitter: renders named lanes plus balanced `"B"`/`"E"`
/// event pairs. Used by [`MetricsSnapshot::to_chrome_trace`] and by the
/// span tracer's per-trace export (`crate::trace`), so both produce the
/// same viewer-compatible document shape.
pub(crate) fn chrome_trace_json(lanes: &[(u32, String)], spans: &[TraceSpan]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"gko\"}}",
    );
    for (lane, name) in lanes {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        );
    }
    // Emit B/E pairs sorted by begin time so viewers reconstruct the
    // nesting; each completed span contributes exactly one pair.
    let mut sorted: Vec<&TraceSpan> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns)));
    for s in sorted {
        let begin_us = s.start_ns as f64 / 1000.0;
        let end_us = (s.start_ns + s.dur_ns) as f64 / 1000.0;
        let name = json_escape(s.name);
        let _ = write!(
            out,
            ",\n{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{begin_us:.3},\
             \"pid\":1,\"tid\":{lane}}},\n\
             {{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{end_us:.3},\
             \"pid\":1,\"tid\":{lane}}}",
            lane = s.lane
        );
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's upper bound maps back into that bucket.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let h = LatencyHistogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1, "value 0");
        assert_eq!(s.buckets[1], 1, "value 1");
        assert_eq!(s.buckets[2], 2, "values 2, 3");
        assert_eq!(s.buckets[3], 1, "value 4");
        assert_eq!(s.buckets[10], 1, "value 1000 in [512, 1024)");
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= s.max);
        // log2 buckets answer within a factor of two.
        assert!((256..=1000).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 512, "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        let c = Arc::new(ShardedCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn registry_aggregates_the_event_stream() {
        let reg = MetricsRegistry::new();
        reg.on_event(&Event::LinOpApplyStarted { op: "csr" });
        reg.on_event(&Event::LinOpApplyCompleted {
            op: "csr",
            wall_ns: 1500,
            virtual_ns: 1000,
        });
        reg.on_event(&Event::IterationComplete {
            solver: "solver::Cg",
            iteration: 1,
            residual: 1.0,
        });
        reg.on_event(&Event::AllocationComplete { bytes: 4096 });
        reg.on_event(&Event::PoolDispatch {
            chunks: 8,
            steals: 1,
            threads: 4,
            wall_ns: 2500,
        });
        let snap = reg.snapshot();
        let csr = snap.kernel("csr").expect("csr kernel recorded");
        assert_eq!(csr.calls, 1);
        assert_eq!(csr.wall_ns.max, 1500);
        assert_eq!(csr.virtual_ns.max, 1000);
        assert_eq!(snap.solver_iterations, vec![("solver::Cg".to_string(), 1)]);
        assert_eq!(snap.alloc_bytes.count, 1);
        assert_eq!(snap.alloc_bytes.max, 4096);
        assert_eq!(snap.pool_dispatch_ns.max, 2500);
        assert_eq!(snap.events, 5);
        // Two spans: the completed csr apply plus the pool dispatch.
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.trace_dropped, 0);
    }

    #[test]
    fn trace_capacity_counts_drops() {
        let reg = MetricsRegistry::with_trace_capacity(1);
        for _ in 0..3 {
            reg.on_event(&Event::LinOpApplyStarted { op: "csr" });
            reg.on_event(&Event::LinOpApplyCompleted {
                op: "csr",
                wall_ns: 10,
                virtual_ns: 10,
            });
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.trace_dropped, 2);
        assert_eq!(snap.kernel("csr").unwrap().calls, 3, "histograms unaffected");
    }

    #[test]
    fn untraced_registry_keeps_histograms_only() {
        let reg = MetricsRegistry::without_trace();
        reg.on_event(&Event::LinOpApplyStarted { op: "coo" });
        reg.on_event(&Event::LinOpApplyCompleted {
            op: "coo",
            wall_ns: 7,
            virtual_ns: 7,
        });
        let snap = reg.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.kernel("coo").unwrap().calls, 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.on_event(&Event::LinOpApplyCompleted {
            op: "csr",
            wall_ns: 100,
            virtual_ns: 90,
        });
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("gko_kernel_calls_total{op=\"csr\"} 1"), "{text}");
        assert!(text.contains("gko_kernel_wall_ns_bucket{op=\"csr\",le=\"127\"} 1"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("gko_kernel_wall_ns_sum{op=\"csr\"} 100"), "{text}");
        assert!(text.contains("gko_pool_dispatch_ns_bucket{le=\"+Inf\"} 0"), "{text}");
    }

    #[test]
    fn exposition_has_help_and_type_for_every_family() {
        let text = MetricsRegistry::new().snapshot().to_prometheus();
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let family = line.split_whitespace().nth(2).unwrap();
            assert!(
                text.contains(&format!("# HELP {family} ")),
                "missing HELP for {family}"
            );
        }
        assert!(text.contains("# TYPE gko_anomalies_total counter"), "{text}");
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        assert_eq!(prom_escape(r"a\b"), r"a\\b");
        assert_eq!(prom_escape("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(prom_escape("two\nlines"), "two\\nlines");
        // End to end: a hostile label value never breaks the line framing.
        let snap = MetricsSnapshot {
            solver_iterations: vec![("evil\"s\\olver\nname".to_string(), 3)],
            ..MetricsSnapshot::default()
        };
        let text = snap.to_prometheus();
        assert!(
            text.contains("gko_solver_iterations_total{solver=\"evil\\\"s\\\\olver\\nname\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn anomaly_counters_aggregate_by_kind() {
        let reg = MetricsRegistry::new();
        reg.record_anomaly("stagnation");
        reg.record_anomaly("stagnation");
        reg.record_anomaly("latency_drift");
        let snap = reg.snapshot();
        assert_eq!(
            snap.anomalies,
            vec![
                ("latency_drift".to_string(), 1),
                ("stagnation".to_string(), 2)
            ]
        );
        let text = snap.to_prometheus();
        assert!(text.contains("gko_anomalies_total{kind=\"stagnation\"} 2"), "{text}");
    }

    #[test]
    fn chrome_trace_pairs_are_balanced() {
        let reg = MetricsRegistry::new();
        reg.on_event(&Event::LinOpApplyStarted { op: "outer" });
        reg.on_event(&Event::LinOpApplyStarted { op: "inner" });
        reg.on_event(&Event::LinOpApplyCompleted {
            op: "inner",
            wall_ns: 10,
            virtual_ns: 10,
        });
        reg.on_event(&Event::LinOpApplyCompleted {
            op: "outer",
            wall_ns: 30,
            virtual_ns: 30,
        });
        let trace = reg.snapshot().to_chrome_trace();
        let begins = trace.matches("\"ph\":\"B\"").count();
        let ends = trace.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 2);
        assert_eq!(begins, ends);
        assert!(trace.contains("\"thread_name\""));
    }
}
