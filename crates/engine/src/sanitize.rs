//! Runtime sanitizer: machine-checks for invariants the engine otherwise
//! only asserts in prose.
//!
//! Three independent facilities, all zero-cost until switched on:
//!
//! * **Chunk-overlap detection** ([`ClaimLog`]). The worker pool's
//!   `PieceTable` is `Send + Sync` on the strength of one SAFETY sentence —
//!   "each piece index is delivered to exactly one lane". With
//!   [`Executor::enable_sanitizer`] on, every pool dispatch records which
//!   lane claimed which piece index and, after the drain, verifies that the
//!   claims form an exact partition of `0..n_chunks`: no overlap, nothing
//!   missing, nothing out of range. A violation means the chunk planner or
//!   the queue protocol is broken — i.e. undefined behavior was about to be
//!   possible — so it fails loudly (panic) rather than returning an error a
//!   caller could ignore.
//! * **Structural validation** (`validate()` on every matrix format, plus
//!   [`check_finite`]). The formats trust their invariants (monotone
//!   `row_ptrs`, in-bounds columns, consistent slice layouts) after
//!   construction; `validate()` re-derives them from scratch so corrupted
//!   or hand-built data is caught before a kernel walks off a slice.
//! * **Schedule perturbation** ([`stress_schedules`]). Reruns a chunked
//!   kernel under seeded forced execution orders (and once on the real
//!   pool) and compares results bitwise against the in-order serial run —
//!   shaking out kernels whose output depends on scheduling order, which
//!   the determinism story forbids.
//!
//! # Overhead model
//!
//! The sanitizer is designed so that the *disabled* path costs exactly one
//! relaxed atomic load per pool dispatch (the [`Sanitizer::is_enabled`]
//! check in `parallel_chunks`) — the same budget as the logging fast path —
//! which is why `scripts/check_bench.sh` passes unchanged. When enabled,
//! each dispatch pays one mutex push per executed chunk plus an `O(chunks)`
//! verification sweep; validation sweeps are `O(nnz)` per call and only run
//! where explicitly requested.
//!
//! [`Executor::enable_sanitizer`]: crate::executor::Executor::enable_sanitizer

use crate::base::error::{GkoError, Result};
use crate::base::types::Value;
use crate::executor::pool::parallel_chunks;
use crate::executor::Executor;
use pygko_sim::rng::Xoshiro256pp;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Chunk-overlap detection
// ---------------------------------------------------------------------------

/// Records which pool lane claimed which piece index during one job.
///
/// Lanes only ever push to their own slot, so the per-lane mutexes are
/// uncontended; the cross-lane view is only assembled by [`ClaimLog::verify`]
/// after the drain, when all lanes are quiescent.
pub struct ClaimLog {
    lanes: Vec<Mutex<Vec<usize>>>, // lock: sanitize.lanes
}

/// The ways a recorded claim set can fail to partition `0..n_pieces`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClaimViolation {
    /// A piece index was claimed by two lanes (or twice by one) — the exact
    /// condition under which `PieceTable` would hand out aliasing `&mut`s.
    Overlap {
        /// The doubly-claimed piece index.
        piece: usize,
        /// Lane that claimed it first.
        first_lane: usize,
        /// Lane that claimed it again.
        second_lane: usize,
    },
    /// A claimed index lies outside `0..n_pieces`.
    OutOfRange {
        /// The offending piece index.
        piece: usize,
        /// Lane that claimed it.
        lane: usize,
        /// Number of pieces in the job.
        n_pieces: usize,
    },
    /// A piece was never executed by any lane.
    Missing {
        /// The unclaimed piece index.
        piece: usize,
    },
}

impl fmt::Display for ClaimViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaimViolation::Overlap {
                piece,
                first_lane,
                second_lane,
            } => write!(
                f,
                "piece {piece} claimed by lane {first_lane} and lane {second_lane} \
                 — disjointness of parallel chunks is violated"
            ),
            ClaimViolation::OutOfRange {
                piece,
                lane,
                n_pieces,
            } => write!(
                f,
                "lane {lane} claimed piece {piece}, outside the job's range 0..{n_pieces}"
            ),
            ClaimViolation::Missing { piece } => {
                write!(f, "piece {piece} was never claimed by any lane")
            }
        }
    }
}

/// Counters describing one verified job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClaimSummary {
    /// Pieces verified (equals the job's chunk count).
    pub pieces: usize,
    /// Lanes that executed at least one piece.
    pub lanes_used: usize,
}

impl ClaimLog {
    /// A log for a pool with `lanes` execution lanes.
    pub fn new(lanes: usize) -> Self {
        ClaimLog {
            lanes: (0..lanes.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Records that `lane` executed piece `piece`. Lanes outside the
    /// declared count are folded into the last slot so a miscounted lane id
    /// still surfaces as a verification failure rather than a panic here.
    pub fn record(&self, lane: usize, piece: usize) {
        let slot = lane.min(self.lanes.len() - 1);
        self.lanes[slot]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(piece);
    }

    /// Checks that the recorded claims are exactly a partition of
    /// `0..n_pieces`: every index claimed once, by one lane, in range.
    pub fn verify(&self, n_pieces: usize) -> std::result::Result<ClaimSummary, ClaimViolation> {
        const UNCLAIMED: usize = usize::MAX;
        let mut owner = vec![UNCLAIMED; n_pieces];
        let mut lanes_used = 0usize;
        for (lane, claims) in self.lanes.iter().enumerate() {
            let claims = claims.lock().unwrap_or_else(|e| e.into_inner());
            if !claims.is_empty() {
                lanes_used += 1;
            }
            for &piece in claims.iter() {
                if piece >= n_pieces {
                    return Err(ClaimViolation::OutOfRange {
                        piece,
                        lane,
                        n_pieces,
                    });
                }
                if owner[piece] != UNCLAIMED {
                    return Err(ClaimViolation::Overlap {
                        piece,
                        first_lane: owner[piece],
                        second_lane: lane,
                    });
                }
                owner[piece] = lane;
            }
        }
        if let Some(piece) = owner.iter().position(|&o| o == UNCLAIMED) {
            return Err(ClaimViolation::Missing { piece });
        }
        Ok(ClaimSummary {
            pieces: n_pieces,
            lanes_used,
        })
    }
}

/// Aborts the dispatch on a claim violation.
///
/// Called from `parallel_chunks` after the drain; a violated partition means
/// aliasing `&mut` slices were (or would have been) handed out, so
/// continuing is not an option and the error cannot be deferred to a
/// `Result` the kernel has no channel for.
pub(crate) fn report_claim_violation(v: &ClaimViolation) -> ! {
    // lint: allow(panic): a tripped overlap detector means aliasing `&mut`
    // slices; aborting the apply is the sanitizer's contract.
    panic!("sanitizer: chunk-overlap detector tripped: {v}");
}

// ---------------------------------------------------------------------------
// Merge-path segment validation
// ---------------------------------------------------------------------------

/// The ways a merge-path segment list can fail to partition the nonzeros.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeViolation {
    /// The segment list does not start at nonzero 0 or two neighbouring
    /// segments are not contiguous — some nonzeros would be skipped or
    /// accumulated twice.
    Gap {
        /// Segment whose `nnz_start` is wrong.
        segment: usize,
        /// Where the segment should have started.
        expected: usize,
        /// Where it actually starts.
        found: usize,
    },
    /// A segment owns no nonzeros; the planner promises to drop these.
    Empty {
        /// The offending segment index.
        segment: usize,
    },
    /// The last segment does not end exactly at the matrix's nonzero count.
    Tail {
        /// The matrix's total nonzero count.
        expected: usize,
        /// Where the last segment actually ends (0 if there are no
        /// segments at all).
        found: usize,
    },
    /// A segment's declared row span disagrees with the row pointers — the
    /// executing kernel would route partial sums to the wrong rows.
    RowSpan {
        /// The offending segment index.
        segment: usize,
        /// Rows the row pointers assign to the segment's nonzero range.
        expected: (usize, usize),
        /// Rows the segment declares.
        found: (usize, usize),
    },
}

impl fmt::Display for MergeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeViolation::Gap {
                segment,
                expected,
                found,
            } => write!(
                f,
                "segment {segment} starts at nonzero {found}, expected {expected} \
                 — the nonzero range is not claimed exactly once"
            ),
            MergeViolation::Empty { segment } => {
                write!(f, "segment {segment} owns no nonzeros")
            }
            MergeViolation::Tail { expected, found } => write!(
                f,
                "segments end at nonzero {found}, expected {expected} \
                 — trailing nonzeros would never be accumulated"
            ),
            MergeViolation::RowSpan {
                segment,
                expected,
                found,
            } => write!(
                f,
                "segment {segment} declares rows {}..={} but its nonzeros lie in \
                 rows {}..={}",
                found.0, found.1, expected.0, expected.1
            ),
        }
    }
}

/// Checks that a merge-path segment list is an exact, ordered partition of
/// the matrix's nonzeros and that every declared row span matches the row
/// pointers.
///
/// This is the structural guarantee the merge-path kernel's `unsafe`
/// direct writes rest on: contiguous non-overlapping nonzero ranges imply
/// every interior row belongs to exactly one segment.
pub fn verify_merge_segments<I: crate::base::types::Index>(
    row_ptrs: &[I],
    segments: &[crate::matrix::plan::MergeSegment],
) -> std::result::Result<(), MergeViolation> {
    let rows = row_ptrs.len().saturating_sub(1);
    let nnz = if rows == 0 {
        0
    } else {
        row_ptrs[rows].to_usize()
    };
    let row_of = |e: usize| row_ptrs.partition_point(|&p| p.to_usize() <= e) - 1;
    let mut cursor = 0usize;
    for (i, seg) in segments.iter().enumerate() {
        if seg.nnz_start != cursor {
            return Err(MergeViolation::Gap {
                segment: i,
                expected: cursor,
                found: seg.nnz_start,
            });
        }
        if seg.nnz_end <= seg.nnz_start {
            return Err(MergeViolation::Empty { segment: i });
        }
        let expected = (row_of(seg.nnz_start), row_of(seg.nnz_end - 1));
        if expected != (seg.row_first, seg.row_last) {
            return Err(MergeViolation::RowSpan {
                segment: i,
                expected,
                found: (seg.row_first, seg.row_last),
            });
        }
        cursor = seg.nnz_end;
    }
    if cursor != nnz {
        return Err(MergeViolation::Tail {
            expected: nnz,
            found: cursor,
        });
    }
    Ok(())
}

/// Aborts the apply on a merge-segment violation.
///
/// A broken segment partition means the merge-path kernel's direct interior
/// writes could alias (or nonzeros could be dropped/double-counted), so the
/// failure is a panic for the same reason [`report_claim_violation`] is.
pub(crate) fn report_merge_violation(v: &MergeViolation) -> ! {
    // lint: allow(panic): a broken segment partition would alias interior
    // writes; aborting the apply is the sanitizer's contract.
    panic!("sanitizer: merge-path segment validator tripped: {v}");
}

// ---------------------------------------------------------------------------
// Per-executor sanitizer state
// ---------------------------------------------------------------------------

/// Per-executor sanitizer switch and counters.
///
/// Embedded directly in the executor (no allocation, no indirection) so the
/// disabled fast path is a single relaxed load — mirroring how the logging
/// registry keeps instrumented kernels free when nobody listens.
#[derive(Debug, Default)]
pub struct Sanitizer {
    enabled: AtomicBool,       // atomic: flag
    jobs_checked: AtomicU64,   // atomic: counter
    pieces_checked: AtomicU64, // atomic: counter
}

/// Snapshot of a [`Sanitizer`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Pool dispatches whose claim partition was verified.
    pub jobs_checked: u64,
    /// Total piece indices covered by those verifications.
    pub pieces_checked: u64,
}

impl Sanitizer {
    /// A disabled sanitizer (the executor's initial state).
    pub(crate) fn new() -> Self {
        Sanitizer::default()
    }

    /// Whether claim verification is currently on (one relaxed load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Credits one verified job.
    pub(crate) fn note_job(&self, pieces: usize) {
        self.jobs_checked.fetch_add(1, Ordering::Relaxed);
        self.pieces_checked
            .fetch_add(pieces as u64, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn report(&self) -> SanitizerReport {
        SanitizerReport {
            jobs_checked: self.jobs_checked.load(Ordering::Relaxed),
            pieces_checked: self.pieces_checked.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Value poisoning checks
// ---------------------------------------------------------------------------

/// Rejects NaN/Inf entries: returns `GkoError::BadInput` naming the first
/// poisoned index. `what` labels the buffer in the error message (e.g.
/// `"solution"`, `"rhs"`).
pub fn check_finite<V: Value>(what: &str, values: &[V]) -> Result<()> {
    for (i, v) in values.iter().enumerate() {
        let x = v.to_f64();
        if !x.is_finite() {
            return Err(GkoError::BadInput(format!(
                "sanitizer: {what}[{i}] is {x} (non-finite)"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Schedule-perturbation stress harness
// ---------------------------------------------------------------------------

/// Where a schedule-perturbed rerun diverged from the in-order serial run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleDivergence {
    /// The schedule that produced the divergent result.
    pub schedule: Schedule,
    /// First element index whose value differs from the reference.
    pub index: usize,
}

/// The execution schedule of one stress-harness rerun.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Chunks executed serially in a seeded random permutation.
    Permuted {
        /// Perturbation round (0-based).
        round: usize,
        /// The PRNG seed that generated the permutation.
        seed: u64,
    },
    /// Chunks executed concurrently on the executor's real worker pool.
    Pool,
}

impl fmt::Display for ScheduleDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.schedule {
            Schedule::Permuted { round, seed } => write!(
                f,
                "output[{}] diverged under permuted chunk order (round {round}, seed {seed})",
                self.index
            ),
            Schedule::Pool => write!(
                f,
                "output[{}] diverged between serial and pool execution",
                self.index
            ),
        }
    }
}

/// Reruns a chunked kernel under perturbed schedules and compares results
/// bitwise against the in-order serial execution.
///
/// The kernel `f(chunk_index, chunk_slice)` is applied to `init` split at
/// `bounds` (the same contract as `parallel_chunks`):
///
/// 1. once serially in order `0, 1, 2, …` — the reference;
/// 2. `rounds` times serially in seeded random chunk orders (each round
///    reseeds with `seed + round`, so failures name a reproducing seed);
/// 3. once on `exec`'s real worker pool, with stealing.
///
/// Any mismatch is reported as a [`ScheduleDivergence`]; a kernel that
/// writes only its own chunk and reads only immutable state cannot diverge,
/// so a failure localizes a scheduling-order dependence.
pub fn stress_schedules<T, F>(
    exec: &Executor,
    init: &[T],
    bounds: &[usize],
    rounds: usize,
    seed: u64,
    f: F,
) -> std::result::Result<(), ScheduleDivergence>
where
    T: Clone + PartialEq + Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunks = bounds.len().saturating_sub(1);
    let run_in_order = |order: &[usize]| -> Vec<T> {
        let mut data = init.to_vec();
        for &i in order {
            f(i, &mut data[bounds[i]..bounds[i + 1]]);
        }
        data
    };
    let in_order: Vec<usize> = (0..chunks).collect();
    let reference = run_in_order(&in_order);

    for round in 0..rounds {
        let round_seed = seed.wrapping_add(round as u64);
        let mut rng = Xoshiro256pp::seed_from_u64(round_seed);
        let mut order = in_order.clone();
        rng.shuffle(&mut order);
        let got = run_in_order(&order);
        if let Some(index) = first_mismatch(&reference, &got) {
            return Err(ScheduleDivergence {
                schedule: Schedule::Permuted {
                    round,
                    seed: round_seed,
                },
                index,
            });
        }
    }

    let mut pooled = init.to_vec();
    parallel_chunks(exec, &mut pooled, bounds, &f);
    if let Some(index) = first_mismatch(&reference, &pooled) {
        return Err(ScheduleDivergence {
            schedule: Schedule::Pool,
            index,
        });
    }
    Ok(())
}

fn first_mismatch<T: PartialEq>(a: &[T], b: &[T]) -> Option<usize> {
    a.iter().zip(b.iter()).position(|(x, y)| x != y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_partition_verifies() {
        let log = ClaimLog::new(3);
        log.record(0, 0);
        log.record(0, 1);
        log.record(1, 2);
        log.record(2, 3);
        let summary = log.verify(4).expect("disjoint partition");
        assert_eq!(summary.pieces, 4);
        assert_eq!(summary.lanes_used, 3);
    }

    #[test]
    fn overlap_is_detected() {
        let log = ClaimLog::new(2);
        log.record(0, 0);
        log.record(0, 1);
        log.record(1, 1); // lane 1 re-claims piece 1
        log.record(1, 2);
        match log.verify(3) {
            Err(ClaimViolation::Overlap {
                piece,
                first_lane,
                second_lane,
            }) => {
                assert_eq!(piece, 1);
                assert_eq!(first_lane, 0);
                assert_eq!(second_lane, 1);
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn same_lane_double_execution_is_an_overlap() {
        let log = ClaimLog::new(2);
        log.record(0, 0);
        log.record(0, 0);
        assert!(matches!(
            log.verify(1),
            Err(ClaimViolation::Overlap { piece: 0, .. })
        ));
    }

    #[test]
    fn missing_piece_is_detected() {
        let log = ClaimLog::new(2);
        log.record(0, 0);
        log.record(1, 2);
        assert_eq!(log.verify(3), Err(ClaimViolation::Missing { piece: 1 }));
    }

    #[test]
    fn out_of_range_claim_is_detected() {
        let log = ClaimLog::new(2);
        log.record(0, 0);
        log.record(1, 7);
        assert_eq!(
            log.verify(2),
            Err(ClaimViolation::OutOfRange {
                piece: 7,
                lane: 1,
                n_pieces: 2
            })
        );
    }

    #[test]
    fn violations_render_diagnostics() {
        let v = ClaimViolation::Overlap {
            piece: 3,
            first_lane: 0,
            second_lane: 2,
        };
        let msg = v.to_string();
        assert!(msg.contains("piece 3"));
        assert!(msg.contains("lane 0"));
        assert!(msg.contains("lane 2"));
    }

    #[test]
    fn check_finite_accepts_and_rejects() {
        assert!(check_finite("x", &[1.0f64, -2.5, 0.0]).is_ok());
        let err = check_finite("solution", &[1.0f64, f64::NAN]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("solution[1]"), "got {msg}");
        assert!(check_finite("x", &[f64::INFINITY]).is_err());
    }

    #[test]
    fn stress_passes_for_disjoint_kernel() {
        let init = vec![0u64; 100];
        let bounds: Vec<usize> = (0..=10).map(|i| i * 10).collect();
        let result = stress_schedules(&Executor::omp(4), &init, &bounds, 5, 42, |i, s| {
            for (k, v) in s.iter_mut().enumerate() {
                *v = (i * 1000 + k) as u64;
            }
        });
        assert_eq!(result, Ok(()));
    }

    #[test]
    fn stress_catches_order_dependent_kernel() {
        use std::sync::atomic::AtomicU64;
        // A kernel that (wrongly) depends on global execution order: each
        // chunk writes a global ticket number instead of a pure function of
        // its index.
        let ticket = AtomicU64::new(0);
        let init = vec![0u64; 8];
        let bounds: Vec<usize> = (0..=8).collect();
        let result = stress_schedules(&Executor::reference(), &init, &bounds, 4, 7, |_, s| {
            s[0] = ticket.fetch_add(1, Ordering::Relaxed);
        });
        let err = result.expect_err("order dependence must be caught");
        assert!(matches!(err.schedule, Schedule::Permuted { .. }));
    }

    #[test]
    fn merge_segments_from_planner_verify() {
        use crate::matrix::plan::merge_segments;
        // Skewed matrix: one row holds most of the nonzeros.
        let mut rp = vec![0i32];
        let mut acc = 0i32;
        for r in 0..12 {
            acc += if r == 5 { 200 } else { 2 };
            rp.push(acc);
        }
        for chunks in [1usize, 2, 3, 7, 16] {
            let segs = merge_segments(12, &rp, chunks);
            assert_eq!(verify_merge_segments(&rp, &segs), Ok(()), "chunks={chunks}");
        }
        // Empty matrix: no segments, zero nonzeros, still a valid partition.
        assert_eq!(verify_merge_segments(&[0i32], &[]), Ok(()));
    }

    #[test]
    fn merge_violations_are_detected_and_render() {
        use crate::matrix::plan::MergeSegment;
        let rp = [0i32, 2, 4, 6];
        let seg = |s: usize, e: usize, rf: usize, rl: usize| MergeSegment {
            nnz_start: s,
            nnz_end: e,
            row_first: rf,
            row_last: rl,
        };
        // Gap between segments.
        let v = verify_merge_segments(&rp, &[seg(0, 2, 0, 0), seg(3, 6, 1, 2)]).unwrap_err();
        assert_eq!(
            v,
            MergeViolation::Gap {
                segment: 1,
                expected: 2,
                found: 3
            }
        );
        assert!(v.to_string().contains("segment 1"));
        // Overlap is also a Gap (cursor already past the claimed start).
        assert!(matches!(
            verify_merge_segments(&rp, &[seg(0, 3, 0, 1), seg(2, 6, 1, 2)]),
            Err(MergeViolation::Gap { segment: 1, .. })
        ));
        // Empty segment.
        assert!(matches!(
            verify_merge_segments(&rp, &[seg(0, 0, 0, 0)]),
            Err(MergeViolation::Empty { segment: 0 })
        ));
        // Missing tail.
        let v = verify_merge_segments(&rp, &[seg(0, 4, 0, 1)]).unwrap_err();
        assert_eq!(
            v,
            MergeViolation::Tail {
                expected: 6,
                found: 4
            }
        );
        assert!(v.to_string().contains("expected 6"));
        // Wrong row span.
        let v = verify_merge_segments(&rp, &[seg(0, 6, 0, 1)]).unwrap_err();
        assert_eq!(
            v,
            MergeViolation::RowSpan {
                segment: 0,
                expected: (0, 2),
                found: (0, 1)
            }
        );
        assert!(v.to_string().contains("rows 0..=2"));
    }

    #[test]
    fn merge_scratch_kernel_is_schedule_independent() {
        use crate::matrix::plan::merge_segments;
        // The merge-path kernel's scratch accumulation — each segment sums
        // its own nonzero range into its own scratch slot — must be
        // schedule-independent by construction. Model it over the stress
        // harness with a synthetic skewed matrix.
        let mut rp = vec![0i32];
        let mut acc = 0i32;
        for r in 0..20 {
            acc += if r == 7 { 111 } else { 3 };
            rp.push(acc);
        }
        let nnz = acc as usize;
        let vals: Vec<f64> = (0..nnz).map(|e| (e % 13) as f64 - 6.0).collect();
        let segs = merge_segments(20, &rp, 8);
        assert_eq!(verify_merge_segments(&rp, &segs), Ok(()));
        let init = vec![0.0f64; segs.len()];
        let bounds: Vec<usize> = (0..=segs.len()).collect();
        let result = stress_schedules(&Executor::omp(4), &init, &bounds, 6, 99, |s, sc| {
            let seg = segs[s];
            sc[0] = vals[seg.nnz_start..seg.nnz_end].iter().sum();
        });
        assert_eq!(result, Ok(()));
    }

    #[test]
    fn sanitizer_counters_start_zero() {
        let s = Sanitizer::new();
        assert!(!s.is_enabled());
        assert_eq!(s.report(), SanitizerReport::default());
        s.set_enabled(true);
        assert!(s.is_enabled());
        s.note_job(16);
        assert_eq!(
            s.report(),
            SanitizerReport {
                jobs_checked: 1,
                pieces_checked: 16
            }
        );
    }
}
