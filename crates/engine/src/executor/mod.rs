//! Executors: where data lives and where kernels run (paper §4.1).
//!
//! Ginkgo's executor is the first object every program creates; it manages
//! memory, runs kernels, synchronizes, and copies data between devices. This
//! module reproduces that contract with four backends:
//!
//! * [`Executor::reference`] — single-threaded host execution, the
//!   correctness baseline;
//! * [`Executor::omp`] — multi-threaded host execution;
//! * [`Executor::cuda`] / [`Executor::hip`] — simulated NVIDIA A100 and AMD
//!   MI100 devices (see `DESIGN.md` for the substitution rationale).
//!
//! Kernels execute real numerics; their duration is charged to the
//! executor's [`Timeline`] using the `pygko-sim` cost model, which is how the
//! benchmark harness measures "time" reproducibly on any host.

pub mod pool;

use crate::base::error::Result;
use crate::log::{Event, Logger, LoggerRegistry};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::profile::{ProfileConfig, ProfileSnapshot, ProfileStore};
use crate::sanitize::{Sanitizer, SanitizerReport};
use crate::telemetry::{DetectorConfig, FlightRecorder, TelemetryServer};
use crate::trace::{TraceConfig, TraceHook, Tracer};
use pool::{LaneStats, PoolStats, WorkerPool};
use pygko_sim::{ChunkWork, DeviceKind, DeviceSpec, Timeline};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};

/// Upper bound on OS threads an executor will drive, regardless of how many
/// workers the device model has. GPU specs model hundreds of schedulable
/// workers; running that many host threads would only add context-switch
/// overhead without changing results (chunking is spec-derived, not
/// thread-derived).
const MAX_FUNCTIONAL_THREADS: usize = 32;

/// Which hardware backend an executor drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Sequential host execution (Ginkgo's `ReferenceExecutor`).
    Reference,
    /// Multi-threaded host execution (Ginkgo's `OmpExecutor`).
    Omp,
    /// Simulated NVIDIA GPU (Ginkgo's `CudaExecutor`).
    Cuda,
    /// Simulated AMD GPU (Ginkgo's `HipExecutor`).
    Hip,
}

impl Backend {
    /// Lower-case name as used by `pyginkgo.device(...)` strings.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Omp => "omp",
            Backend::Cuda => "cuda",
            Backend::Hip => "hip",
        }
    }
}

#[derive(Debug)]
struct Inner {
    backend: Backend,
    device_id: usize,
    spec: DeviceSpec,
    timeline: Timeline,
    bytes_allocated: AtomicI64, // atomic: counter
    peak_bytes: AtomicU64, // atomic: counter
    /// Lazily-spawned persistent worker pool; `None` once initialized means
    /// the executor is functionally single-threaded.
    pool: OnceLock<Option<WorkerPool>>,
    /// Loggers attached to this executor (shared by all handle clones).
    loggers: LoggerRegistry,
    /// The metrics registry enabled via [`Executor::enable_metrics`], if
    /// any. Kept here (in addition to its logger attachment) so snapshots
    /// can be read back without holding onto the `Arc` at the call site.
    metrics: Mutex<Option<Arc<MetricsRegistry>>>, // lock: exec.metrics
    /// The flight recorder enabled via [`Executor::enable_flight_recorder`],
    /// if any (kept here, like `metrics`, so reports can be read back).
    flight: Mutex<Option<Arc<FlightRecorder>>>, // lock: exec.flight
    /// Runtime sanitizer switch + counters, embedded (not boxed) so the
    /// disabled check in `parallel_chunks` is a single relaxed load.
    sanitizer: Sanitizer,
    /// Causal span tracer, embedded like the sanitizer so the pool's
    /// per-dispatch probe is a single relaxed load while no trace is live.
    tracer: Tracer,
    /// The event hook attached while tracing is enabled (kept, like
    /// `metrics`, so disable/clear can detach it from the registry).
    trace_hook: Mutex<Option<Arc<TraceHook>>>, // lock: exec.trace_hook
    /// Continuous profiler folding finished span trees into flame
    /// aggregates, embedded like the sanitizer so the per-trace probe is a
    /// single relaxed load while profiling is disarmed.
    profile: ProfileStore,
    /// Construction instant, the epoch for the `gko_uptime_seconds` gauge.
    start: std::time::Instant,
}

/// Non-owning executor handle held by the flight recorder, so the
/// `executor -> recorder -> executor` reference pair cannot leak.
#[derive(Clone, Debug, Default)]
pub(crate) struct WeakExecutor(Weak<Inner>);

impl WeakExecutor {
    /// The executor, if any strong handle to it still exists.
    pub(crate) fn upgrade(&self) -> Option<Executor> {
        self.0.upgrade().map(Executor)
    }
}

/// A cheaply-cloneable handle to an execution resource.
///
/// Equality of memory spaces follows Ginkgo: all host executors share the
/// host memory space; each (backend, device id) pair of device executors is
/// its own space, and moving data across spaces costs simulated transfer
/// time.
#[derive(Clone, Debug)]
pub struct Executor(Arc<Inner>);

impl Executor {
    fn make(backend: Backend, device_id: usize, spec: DeviceSpec) -> Self {
        Executor(Arc::new(Inner {
            backend,
            device_id,
            spec,
            timeline: Timeline::new(),
            bytes_allocated: AtomicI64::new(0),
            peak_bytes: AtomicU64::new(0),
            pool: OnceLock::new(),
            loggers: LoggerRegistry::new(),
            metrics: Mutex::new(None),
            flight: Mutex::new(None),
            sanitizer: Sanitizer::new(),
            tracer: Tracer::new(),
            trace_hook: Mutex::new(None),
            profile: ProfileStore::new(),
            // lint: allow(forbidden-api): uptime gauge epoch — wall-clock
            // construction instant, not simulated kernel time.
            start: std::time::Instant::now(),
        }))
    }

    /// Non-owning handle to this executor (see [`WeakExecutor`]).
    pub(crate) fn downgrade(&self) -> WeakExecutor {
        WeakExecutor(Arc::downgrade(&self.0))
    }

    /// Sequential host executor (the correctness reference).
    pub fn reference() -> Self {
        Executor::make(Backend::Reference, 0, DeviceSpec::single_core())
    }

    /// Multi-threaded host executor with `threads` worker threads, modeled
    /// as a Xeon Platinum 8368 socket (the paper's CPU platform).
    pub fn omp(threads: usize) -> Self {
        Executor::make(Backend::Omp, 0, DeviceSpec::xeon_8368(threads))
    }

    /// Simulated NVIDIA A100 with the given device id.
    pub fn cuda(device_id: usize) -> Self {
        Executor::make(Backend::Cuda, device_id, DeviceSpec::a100())
    }

    /// Simulated AMD Instinct MI100 with the given device id.
    pub fn hip(device_id: usize) -> Self {
        Executor::make(Backend::Hip, device_id, DeviceSpec::mi100())
    }

    /// Executor with a custom device model (for experiments).
    pub fn with_spec(backend: Backend, device_id: usize, spec: DeviceSpec) -> Self {
        Executor::make(backend, device_id, spec)
    }

    /// The backend this executor drives.
    pub fn backend(&self) -> Backend {
        self.0.backend
    }

    /// Device id (only meaningful for device backends).
    pub fn device_id(&self) -> usize {
        self.0.device_id
    }

    /// The simulated device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.0.spec
    }

    /// Device name, e.g. `"NVIDIA A100"`.
    pub fn name(&self) -> &str {
        &self.0.spec.name
    }

    /// True for host executors.
    pub fn is_host(&self) -> bool {
        self.0.spec.kind == DeviceKind::Cpu
    }

    /// The virtual clock all kernels on this executor charge into.
    pub fn timeline(&self) -> &Timeline {
        &self.0.timeline
    }

    /// Blocks until all queued device work completes.
    ///
    /// Kernels in this simulation complete synchronously, so this only
    /// mirrors the API shape (benchmarks call it before reading the clock,
    /// exactly as the paper does around its timers).
    pub fn synchronize(&self) {}

    /// Whether `self` and `other` address the same memory space.
    pub fn same_memory_space(&self, other: &Executor) -> bool {
        match (self.is_host(), other.is_host()) {
            (true, true) => true,
            (false, false) => {
                self.0.backend == other.0.backend && self.0.device_id == other.0.device_id
            }
            _ => false,
        }
    }

    /// Number of worker threads used for *functional* execution of chunked
    /// kernels (modeled parallelism is `spec().workers` and can be much
    /// larger).
    ///
    /// For `omp` executors this follows the *requested* thread count (capped
    /// at [`MAX_FUNCTIONAL_THREADS`]) rather than the physical core count:
    /// the persistent pool makes extra threads cheap (they park between
    /// kernels and the OS timeslices during them), and it means
    /// `Executor::omp(n)` exercises genuinely concurrent n-lane execution on
    /// any host — which is what the cross-thread-count parity tests rely on.
    pub fn functional_threads(&self) -> usize {
        match self.0.backend {
            Backend::Reference => 1,
            Backend::Omp => self.0.spec.workers.clamp(1, MAX_FUNCTIONAL_THREADS),
            // GPU backends model hundreds of workers; functionally we use
            // the host cores that exist. Results don't depend on this —
            // chunking derives from the spec, never the thread count.
            Backend::Cuda | Backend::Hip => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.0.spec.workers)
                .min(MAX_FUNCTIONAL_THREADS),
        }
    }

    /// The executor's persistent worker pool, spawned on first use; `None`
    /// when the executor is functionally single-threaded (reference, or a
    /// one-worker spec), in which case chunked kernels run inline.
    pub fn worker_pool(&self) -> Option<&WorkerPool> {
        self.0
            .pool
            .get_or_init(|| {
                let threads = self.functional_threads();
                (threads > 1).then(|| WorkerPool::new(threads))
            })
            .as_ref()
    }

    /// Activity counters of the worker pool (all zeros when the executor has
    /// no pool or never dispatched).
    pub fn pool_stats(&self) -> PoolStats {
        // Read without forcing pool creation: an executor that never ran a
        // parallel kernel reports zeros.
        self.0
            .pool
            .get()
            .and_then(|p| p.as_ref())
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// Per-lane activity counters of the worker pool, indexed by lane id
    /// (empty when the executor has no pool or never dispatched).
    pub fn pool_lane_stats(&self) -> Vec<LaneStats> {
        self.0
            .pool
            .get()
            .and_then(|p| p.as_ref())
            .map(|p| p.lane_stats())
            .unwrap_or_default()
    }

    /// Charges one kernel launch that performed the given chunks of work.
    pub fn launch(&self, chunks: &[ChunkWork]) {
        let t = self.0.spec.kernel_time_ns(chunks);
        let flops: f64 = chunks.iter().map(|c| c.flops).sum();
        self.0.timeline.charge_kernel(t, flops);
    }

    /// Charges a host-to-device upload (no cost on host executors).
    pub fn charge_upload(&self, bytes: usize) {
        if !self.is_host() {
            let t = self.0.spec.copy_time_ns(bytes);
            self.0.timeline.charge_copy(t, bytes);
        }
    }

    /// Charges a device-to-host download (no cost on host executors).
    pub fn charge_download(&self, bytes: usize) {
        if !self.is_host() {
            let t = self.0.spec.copy_time_ns(bytes);
            self.0.timeline.charge_copy(t, bytes);
        }
    }

    /// The registry of loggers observing this executor's events.
    ///
    /// Kernels instrumented with [`crate::log::OpTimer`] emit
    /// `LinOpApplyStarted`/`Completed` here; the memory accountant emits
    /// `AllocationComplete`; parallel kernel dispatches emit `PoolDispatch`;
    /// and solvers forward their iteration/solve events to their system
    /// operator's executor, so an executor-attached [`crate::log::Profiler`]
    /// sees the whole picture.
    pub fn loggers(&self) -> &LoggerRegistry {
        &self.0.loggers
    }

    /// Attaches a logger to this executor (convenience for
    /// `loggers().add(..)`).
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.0.loggers.add(logger);
    }

    /// Detaches every logger from this executor (including a metrics
    /// registry enabled via [`Executor::enable_metrics`], a flight
    /// recorder enabled via [`Executor::enable_flight_recorder`], and the
    /// trace hook attached by [`Executor::enable_tracing`] — tracing is
    /// disarmed, though already-retained traces stay readable).
    pub fn clear_loggers(&self) {
        self.0.loggers.clear();
        *self
            .0
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        *self
            .0
            .flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        self.0.tracer.disarm();
        *self
            .0
            .trace_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Enables the engine-wide metrics registry on this executor: creates a
    /// [`MetricsRegistry`] (with span tracing), attaches it to the logger
    /// registry, and returns it. Idempotent — repeated calls return the
    /// already-enabled registry. While enabled, every instrumented kernel,
    /// solver iteration, allocation, and pool dispatch on this executor is
    /// aggregated; when no registry (or other logger) is attached the
    /// instrumented fast path still costs a single relaxed atomic load.
    pub fn enable_metrics(&self) -> Arc<MetricsRegistry> {
        let registry = {
            let mut slot = self
                .0
                .metrics
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(existing) = slot.as_ref() {
                return existing.clone();
            }
            let registry = Arc::new(MetricsRegistry::new());
            *slot = Some(registry.clone());
            registry
        };
        // Attach outside the slot lock: event delivery holds `log.loggers`
        // and can call back into `Executor::metrics`, so holding the slot
        // across `add` inverts the `log.loggers -> exec.metrics` order.
        self.0.loggers.add(registry.clone());
        registry
    }

    /// Detaches and drops the metrics registry, if one was enabled.
    pub fn disable_metrics(&self) {
        let taken = self
            .0
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(registry) = taken {
            let as_logger: Arc<dyn Logger> = registry;
            // Detach outside the slot lock (same inversion as
            // `enable_metrics`).
            self.0.loggers.remove(&as_logger);
        }
    }

    /// The metrics registry enabled on this executor, if any.
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.0
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Immutable snapshot of this executor's metrics ([`None`] until
    /// [`Executor::enable_metrics`] is called).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics().map(|m| m.snapshot())
    }

    /// Enables the flight recorder on this executor with default detector
    /// thresholds: attaches a [`FlightRecorder`] to the logger registry so
    /// every subsequent solve is summarized into a bounded ring of
    /// structured reports and screened by the anomaly detectors. Idempotent
    /// — repeated calls return the already-enabled recorder. The inert path
    /// (no recorder, no other logger) stays one relaxed atomic load.
    pub fn enable_flight_recorder(&self) -> Arc<FlightRecorder> {
        self.enable_flight_recorder_with(DetectorConfig::default())
    }

    /// Like [`Executor::enable_flight_recorder`] with explicit detector
    /// thresholds (ignored if a recorder is already enabled).
    pub fn enable_flight_recorder_with(&self, config: DetectorConfig) -> Arc<FlightRecorder> {
        let recorder = {
            let mut slot = self
                .0
                .flight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(existing) = slot.as_ref() {
                return existing.clone();
            }
            let recorder = Arc::new(FlightRecorder::new(self.downgrade(), config));
            *slot = Some(recorder.clone());
            recorder
        };
        // Attach outside the slot lock: delivery holds `log.loggers` and
        // the recorder's detectors read back through the executor.
        self.0.loggers.add(recorder.clone());
        recorder
    }

    /// Detaches and drops the flight recorder, if one was enabled.
    pub fn disable_flight_recorder(&self) {
        let taken = self
            .0
            .flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(recorder) = taken {
            let as_logger: Arc<dyn Logger> = recorder;
            // Detach outside the slot lock (same inversion as
            // `enable_flight_recorder_with`).
            self.0.loggers.remove(&as_logger);
        }
    }

    /// The flight recorder enabled on this executor, if any.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.0
            .flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Enables causal span tracing on this executor: every subsequent solve
    /// (single or batched) acquires a trace id and assembles a span tree
    /// down to the individual pool-lane chunks, tail-sampled into a bounded
    /// store (healthy solves 1-in-`sample_n`; anomalous or slow solves
    /// always retained — see [`crate::trace`]). Enables the flight recorder
    /// too: its anomaly detectors drive the retention decision, and its
    /// `/runs` reports link their `trace_id`. Idempotent; re-enabling
    /// updates the sampling policy.
    pub fn enable_tracing(&self, sample_n: u64) {
        self.enable_tracing_with(TraceConfig {
            sample_n,
            ..TraceConfig::default()
        });
    }

    /// Like [`Executor::enable_tracing`] with the full policy knobs.
    pub fn enable_tracing_with(&self, config: TraceConfig) {
        self.enable_flight_recorder();
        let hook = {
            let mut slot = self
                .0
                .trace_hook
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                let hook = Arc::new(TraceHook::new(self.downgrade()));
                *slot = Some(hook.clone());
                Some(hook)
            } else {
                None
            }
        };
        if let Some(hook) = hook {
            // Attach outside the slot lock (same inversion as
            // `enable_metrics`).
            self.0.loggers.add(hook);
        }
        self.0.tracer.arm(config);
    }

    /// Disarms tracing and detaches the event hook; an in-flight trace is
    /// abandoned, retained traces stay readable via [`Executor::tracer`].
    pub fn disable_tracing(&self) {
        self.0.tracer.disarm();
        let taken = self
            .0
            .trace_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(hook) = taken {
            let as_logger: Arc<dyn Logger> = hook;
            // Detach outside the slot lock (same inversion as
            // `enable_metrics`).
            self.0.loggers.remove(&as_logger);
        }
    }

    /// The executor's span tracer (switch, store, and counters).
    pub fn tracer(&self) -> &Tracer {
        &self.0.tracer
    }

    /// Enables continuous profiling with the default window and node cap:
    /// every finished span tree (sampled out or not) is folded into an
    /// aggregated flame profile keyed by span path, readable via
    /// [`Executor::profile_snapshot`] and the `/profile` endpoints. Tracing
    /// must be live for spans to exist, so this arms the tracer with
    /// [`TraceConfig::default`] if it is not armed already. Idempotent;
    /// re-enabling updates the profiler policy without clearing aggregates.
    pub fn enable_profiling(&self) {
        self.enable_profiling_with(ProfileConfig::default());
    }

    /// Like [`Executor::enable_profiling`] with explicit policy knobs.
    pub fn enable_profiling_with(&self, config: ProfileConfig) {
        if !self.0.tracer.is_armed() {
            self.enable_tracing_with(TraceConfig::default());
        }
        self.0.profile.arm(config);
    }

    /// Disarms the profiler; aggregated windows stay readable and tracing
    /// (if it was armed) stays armed.
    pub fn disable_profiling(&self) {
        self.0.profile.disarm();
    }

    /// The executor's continuous profiler (switch, flame store, counters).
    pub fn profile(&self) -> &ProfileStore {
        &self.0.profile
    }

    /// Flattened snapshot of the live profiling window (empty while nothing
    /// has been folded).
    pub fn profile_snapshot(&self) -> ProfileSnapshot {
        self.0.profile.snapshot()
    }

    /// Commits the current live window as a named baseline for
    /// `/profile/diff?base=<name>` comparisons, returning the committed
    /// snapshot.
    pub fn profile_commit_baseline(&self, name: &str) -> ProfileSnapshot {
        self.0.profile.commit_baseline(name)
    }

    /// Real seconds since this executor was constructed (the
    /// `gko_uptime_seconds` gauge). Wall clock, not the virtual timeline.
    pub fn uptime_seconds(&self) -> f64 {
        self.0.start.elapsed().as_secs_f64()
    }

    /// Starts the telemetry HTTP exporter for this executor on `addr`
    /// (e.g. `"127.0.0.1:9185"`, or port `0` to let the OS pick), enabling
    /// the metrics registry and flight recorder first so `/metrics` and
    /// `/runs` have content. Returns the server handle; dropping it (or
    /// calling [`TelemetryServer::shutdown`]) stops the exporter.
    pub fn serve_telemetry(&self, addr: &str) -> Result<TelemetryServer> {
        self.enable_metrics();
        self.enable_flight_recorder();
        TelemetryServer::bind(self.clone(), addr)
    }

    /// Enables the runtime sanitizer on this executor (shared by all handle
    /// clones): every subsequent pool dispatch records which lane claimed
    /// which chunk and verifies, after the drain, that the claims exactly
    /// partition the chunk range — machine-checking the disjointness claim
    /// the pool's `PieceTable` safety rests on. A violated partition
    /// panics with a diagnostic naming the piece and lanes involved.
    ///
    /// While disabled (the default) the cost is one relaxed atomic load per
    /// dispatch, mirroring [`Executor::enable_metrics`]'s off path.
    pub fn enable_sanitizer(&self) {
        self.0.sanitizer.set_enabled(true);
    }

    /// Turns the runtime sanitizer back off (counters are retained).
    pub fn disable_sanitizer(&self) {
        self.0.sanitizer.set_enabled(false);
    }

    /// The executor's sanitizer state (switch + counters).
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.0.sanitizer
    }

    /// Snapshot of the sanitizer's verification counters.
    pub fn sanitizer_report(&self) -> SanitizerReport {
        self.0.sanitizer.report()
    }

    /// Records an allocation in the memory accountant.
    pub fn track_alloc(&self, bytes: usize) {
        let now = self.0.bytes_allocated.fetch_add(bytes as i64, Ordering::Relaxed)
            + bytes as i64;
        self.0.peak_bytes.fetch_max(now.max(0) as u64, Ordering::Relaxed);
        self.0.loggers.log(&Event::AllocationComplete { bytes });
    }

    /// Records a deallocation.
    pub fn track_dealloc(&self, bytes: usize) {
        self.0.bytes_allocated.fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// Bytes currently allocated on this executor.
    pub fn bytes_allocated(&self) -> i64 {
        self.0.bytes_allocated.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.0.peak_bytes.load(Ordering::Relaxed)
    }
}

impl PartialEq for Executor {
    /// Handle identity: two handles are equal iff they refer to the same
    /// executor instance.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_report_names() {
        assert_eq!(Executor::reference().backend().name(), "reference");
        assert_eq!(Executor::omp(4).backend().name(), "omp");
        assert_eq!(Executor::cuda(0).backend().name(), "cuda");
        assert_eq!(Executor::hip(0).backend().name(), "hip");
    }

    #[test]
    fn memory_spaces() {
        let r = Executor::reference();
        let o = Executor::omp(8);
        let c0 = Executor::cuda(0);
        let c1 = Executor::cuda(1);
        let h0 = Executor::hip(0);
        assert!(r.same_memory_space(&o), "host executors share memory");
        assert!(!r.same_memory_space(&c0));
        assert!(!c0.same_memory_space(&c1), "different devices differ");
        assert!(!c0.same_memory_space(&h0), "different vendors differ");
        assert!(c0.same_memory_space(&Executor::cuda(0)));
    }

    #[test]
    fn launches_charge_the_timeline() {
        let exec = Executor::cuda(0);
        let before = exec.timeline().snapshot();
        exec.launch(&[ChunkWork::new(1.0e6, 0.0, 2.0e5)]);
        let d = exec.timeline().snapshot().since(&before);
        assert_eq!(d.kernels, 1);
        assert!(d.ns > 0);
        assert_eq!(d.flops, 200_000);
    }

    #[test]
    fn host_copies_are_free() {
        let exec = Executor::reference();
        let before = exec.timeline().snapshot();
        exec.charge_upload(1 << 20);
        exec.charge_download(1 << 20);
        assert_eq!(exec.timeline().snapshot().since(&before).copies, 0);
    }

    #[test]
    fn allocation_accounting_tracks_peak() {
        let exec = Executor::reference();
        exec.track_alloc(1000);
        exec.track_alloc(500);
        exec.track_dealloc(1000);
        assert_eq!(exec.bytes_allocated(), 500);
        assert!(exec.peak_bytes() >= 1500);
        exec.track_dealloc(500);
        assert_eq!(exec.bytes_allocated(), 0);
    }

    #[test]
    fn clone_shares_identity() {
        let a = Executor::cuda(0);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(a != Executor::cuda(0), "fresh instance is a new handle");
        b.track_alloc(64);
        assert_eq!(a.bytes_allocated(), 64);
    }

    #[test]
    fn omp_thread_count_flows_into_spec() {
        let e = Executor::omp(16);
        assert_eq!(e.spec().workers, 16);
        assert_eq!(e.functional_threads(), 16);
        assert!(Executor::omp(1000).functional_threads() <= MAX_FUNCTIONAL_THREADS);
    }

    #[test]
    fn reference_has_no_pool_and_zero_stats() {
        let e = Executor::reference();
        assert_eq!(e.pool_stats(), pool::PoolStats::default());
        assert!(e.worker_pool().is_none());
        assert_eq!(e.functional_threads(), 1);
    }

    #[test]
    fn pool_is_lazy_and_shared_across_clones() {
        let e = Executor::omp(3);
        assert_eq!(e.pool_stats().dispatches, 0, "no pool before first use");
        let p1 = e.worker_pool().unwrap() as *const _;
        let p2 = e.clone().worker_pool().unwrap() as *const _;
        assert_eq!(p1, p2, "clones share one pool");
        assert_eq!(e.worker_pool().unwrap().threads(), 3);
    }
}
