//! Minimal structured data-parallel helpers.
//!
//! Row-partitioned kernels execute their chunks through [`parallel_chunks`],
//! which splits the output into disjoint mutable sub-slices and distributes
//! them over scoped worker threads pulling from a shared queue. Safety comes
//! entirely from `split_at_mut` — no `unsafe`, no data races by construction.
//!
//! On hosts with a single core (like the machine this reproduction was built
//! on) the scheduler timeslices the workers; the *modeled* execution time is
//! computed from the work partition by `pygko-sim`, so correctness of the
//! timing does not depend on physical parallelism.

use std::sync::Mutex;

/// Splits `out` at the given chunk boundaries and applies
/// `f(chunk_index, chunk_slice)` to every chunk, using up to `threads`
/// worker threads.
///
/// `bounds` must be non-decreasing, start at 0, and end at `out.len()`;
/// chunk `i` receives `out[bounds[i]..bounds[i+1]]`.
///
/// # Panics
///
/// Panics if the bounds are malformed or if any worker panics.
pub fn parallel_chunks<T, F>(threads: usize, out: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(!bounds.is_empty(), "bounds must contain at least [0]");
    assert_eq!(bounds[0], 0, "bounds must start at 0");
    assert_eq!(
        *bounds.last().unwrap(),
        out.len(),
        "bounds must end at the slice length"
    );
    let chunks = bounds.len() - 1;
    if chunks == 0 {
        return;
    }

    if threads <= 1 || chunks == 1 {
        let mut rest = out;
        for i in 0..chunks {
            let len = bounds[i + 1] - bounds[i];
            let (head, tail) = rest.split_at_mut(len);
            f(i, head);
            rest = tail;
        }
        return;
    }

    // Pre-split the output into disjoint sub-slices, then let workers pop
    // (index, slice) pairs from a shared queue.
    let mut pieces: Vec<(usize, &mut [T])> = Vec::with_capacity(chunks);
    let mut rest = out;
    for i in 0..chunks {
        let len = bounds[i + 1] - bounds[i];
        let (head, tail) = rest.split_at_mut(len);
        pieces.push((i, head));
        rest = tail;
    }
    let queue = Mutex::new(pieces);
    let workers = threads.min(chunks);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue poisoned").pop();
                match item {
                    Some((idx, slice)) => f(idx, slice),
                    None => break,
                }
            });
        }
    });
}

/// Computes one `f64` partial result per chunk in parallel and returns the
/// partials in chunk order (so reductions are deterministic regardless of
/// scheduling).
pub fn parallel_partials<F>(threads: usize, chunks: usize, f: F) -> Vec<f64>
where
    F: Fn(usize) -> f64 + Sync,
{
    let mut partials = vec![0.0f64; chunks];
    let bounds: Vec<usize> = (0..=chunks).collect();
    parallel_chunks(threads, &mut partials, &bounds, |i, slot| {
        slot[0] = f(i);
    });
    partials
}

/// Builds chunk boundaries that split `n` items into at most `max_chunks`
/// nearly equal ranges (the classical row-block partition).
pub fn uniform_bounds(n: usize, max_chunks: usize) -> Vec<usize> {
    let chunks = max_chunks.max(1).min(n.max(1));
    let mut bounds = Vec::with_capacity(chunks + 1);
    for i in 0..=chunks {
        bounds.push(i * n / chunks);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_path_applies_all_chunks() {
        let mut data = vec![0u32; 10];
        parallel_chunks(1, &mut data, &[0, 3, 7, 10], |i, s| {
            s.fill(i as u32 + 1);
        });
        assert_eq!(data, [1, 1, 1, 2, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let mut serial = vec![0u64; 1000];
        let mut parallel = vec![0u64; 1000];
        let bounds = uniform_bounds(1000, 16);
        let kernel = |i: usize, s: &mut [u64]| {
            for (k, v) in s.iter_mut().enumerate() {
                *v = (i * 31 + k) as u64;
            }
        };
        parallel_chunks(1, &mut serial, &bounds, kernel);
        parallel_chunks(4, &mut parallel, &bounds, kernel);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_chunks_are_allowed() {
        let mut data = vec![7u8; 4];
        parallel_chunks(2, &mut data, &[0, 0, 4, 4], |i, s| {
            if i == 1 {
                s.fill(9);
            } else {
                assert!(s.is_empty());
            }
        });
        assert_eq!(data, [9, 9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "bounds must end")]
    fn bad_bounds_panic() {
        let mut data = vec![0u8; 4];
        parallel_chunks(1, &mut data, &[0, 2], |_, _| {});
    }

    #[test]
    fn partials_are_in_chunk_order() {
        let p = parallel_partials(4, 8, |i| i as f64 * 2.0);
        assert_eq!(p, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn uniform_bounds_cover_exactly() {
        let b = uniform_bounds(10, 3);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&10));
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        // More chunks than items degrades to one item per chunk.
        let b = uniform_bounds(2, 100);
        assert_eq!(b, vec![0, 1, 2]);
        // Zero items yields a single empty chunk.
        let b = uniform_bounds(0, 4);
        assert_eq!(b, vec![0, 0]);
    }
}
