//! Persistent worker pool and structured data-parallel helpers.
//!
//! Every parallel kernel in the engine dispatches through the executor-owned
//! [`WorkerPool`]: a set of long-lived OS threads that park on a condition
//! variable between kernels and wake when a job is published. This replaces
//! the previous scheme of spawning fresh scoped threads inside every
//! `parallel_chunks` call — a CG solve running 1000 iterations used to pay
//! thread-spawn latency ~3000 times; it now pays it once per executor.
//!
//! Scheduling is load balanced in two layers:
//!
//! * kernels choose *chunk boundaries* from the work distribution (e.g. CSR's
//!   nnz-balanced row blocks), and
//! * the pool distributes chunk indices over per-worker queues; a worker that
//!   drains its own queue **steals** chunk indices from its neighbours, so a
//!   mis-predicted chunk cost cannot idle the other workers.
//!
//! Chunk partitions are derived from the executor's [`DeviceSpec`] (never
//! from the physical core count), so functional results are bitwise
//! reproducible across hosts; on machines with fewer cores than workers the
//! OS timeslices. The *modeled* execution time likewise comes from the
//! `pygko-sim` cost model (which charges `chunk_overhead_ns` per scheduled
//! chunk), while the pool separately measures the *real* host-side dispatch
//! overhead in [`PoolStats`] for the overhead benchmarks.
//!
//! [`DeviceSpec`]: pygko_sim::DeviceSpec

use crate::executor::Executor;
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Counters describing everything a [`WorkerPool`] has done since creation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs submitted (one per parallel kernel execution).
    pub dispatches: u64,
    /// Chunk closures executed across all jobs.
    pub chunks: u64,
    /// Chunks executed by a thread other than the queue's home worker.
    pub steals: u64,
    /// Times a worker went to sleep waiting for work.
    pub parks: u64,
    /// Times a sleeping worker was woken for a job.
    pub unparks: u64,
    /// Cumulative wall-clock nanoseconds spent inside [`WorkerPool::run`]
    /// (dispatch overhead plus chunk execution).
    pub dispatch_ns: u64,
}

impl PoolStats {
    /// Counter-wise difference `self - earlier`.
    ///
    /// Saturating on every field, so two snapshots passed in the wrong
    /// order clamp to zero instead of underflowing. Note what saturation
    /// does *not* promise: a baseline taken before the pool was torn down
    /// and re-armed diffs against stale counters — fields where the new
    /// pool has already passed the old totals yield ordinary (mis-
    /// attributed) differences, not zeros. Take a fresh baseline after
    /// re-arming; `since` only guarantees the arithmetic never panics.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            dispatches: self.dispatches.saturating_sub(earlier.dispatches),
            chunks: self.chunks.saturating_sub(earlier.chunks),
            steals: self.steals.saturating_sub(earlier.steals),
            parks: self.parks.saturating_sub(earlier.parks),
            unparks: self.unparks.saturating_sub(earlier.unparks),
            dispatch_ns: self.dispatch_ns.saturating_sub(earlier.dispatch_ns),
        }
    }
}

/// Activity counters for one pool lane (execution slot). Lane `threads - 1`
/// is drained by the submitting thread; every other lane is a parked OS
/// worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Chunk closures this lane executed.
    pub chunks: u64,
    /// Of those, chunks taken from another lane's queue.
    pub steals: u64,
    /// Wall-clock nanoseconds this lane spent draining chunks.
    pub busy_ns: u64,
}

impl LaneStats {
    /// Counter-wise difference `self - earlier` (saturating, like
    /// [`PoolStats::since`]).
    pub fn since(&self, earlier: &LaneStats) -> LaneStats {
        LaneStats {
            chunks: self.chunks.saturating_sub(earlier.chunks),
            steals: self.steals.saturating_sub(earlier.steals),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
        }
    }
}

/// Lane-wise saturating difference of two per-lane snapshots.
///
/// Tolerates length mismatches (a pool re-armed with a different lane count
/// between the two snapshots): lanes added after the baseline snapshot
/// (present in `now`, missing from `earlier`) diff against a zero baseline
/// and so can never underflow, while lanes absent from `now` are dropped
/// (the result always has `now.len()` entries, positionally aligned with
/// `now`). Per-lane fields saturate exactly like [`LaneStats::since`].
pub fn lane_stats_since(now: &[LaneStats], earlier: &[LaneStats]) -> Vec<LaneStats> {
    now.iter()
        .enumerate()
        .map(|(i, lane)| lane.since(earlier.get(i).unwrap_or(&LaneStats::default())))
        .collect()
}

/// Per-lane counters, padded to a cache line so lanes never false-share.
#[repr(align(64))]
#[derive(Default)]
struct LaneCounters {
    chunks: AtomicU64,   // atomic: counter
    steals: AtomicU64,   // atomic: counter
    busy_ns: AtomicU64,  // atomic: counter
}

/// Lifetime-erased pointer to the job closure. Validity is guaranteed by
/// [`WorkerPool::run`], which blocks until every worker is done with it.
type TaskPtr = *const (dyn Fn(usize) + Sync);

/// One worker's range of chunk indices. `next` is bumped with `fetch_add` by
/// the owner *and* by thieves; an index is executed iff the fetched value is
/// still below `end`, so every index in `[start, end)` runs exactly once.
struct ChunkQueue {
    next: AtomicUsize, // atomic: counter
    end: usize,
}

/// The job currently published to the workers.
struct Job {
    task: TaskPtr,
    queues: Vec<ChunkQueue>,
}

/// Worker-visible pool state.
struct Shared {
    control: Mutex<Epoch>, // lock: pool.control
    work_ready: Condvar,
    work_done: Condvar,
    /// Written by the submitter strictly before the epoch bump, read by
    /// workers strictly after observing it (both under `control`), cleared
    /// only after `active` hits zero.
    job: UnsafeCell<Option<Job>>,
    /// Workers still executing the current job.
    active: AtomicUsize, // atomic: flag
    shutdown: AtomicBool, // atomic: flag
    /// First panic payload raised inside a chunk closure, re-raised on the
    /// submitting thread.
    panic_slot: Mutex<Option<Box<dyn Any + Send>>>, // lock: pool.panic_slot
    dispatches: AtomicU64,  // atomic: counter
    chunks: AtomicU64,      // atomic: counter
    steals: AtomicU64,      // atomic: counter
    parks: AtomicU64,       // atomic: counter
    unparks: AtomicU64,     // atomic: counter
    dispatch_ns: AtomicU64, // atomic: counter
    /// One padded counter block per lane, indexed by lane id.
    lanes: Vec<LaneCounters>,
}

struct Epoch(u64);

// SAFETY: `job` is only mutated by the submitting thread while no worker is
// active (enforced by the `active` counter + `submit` lock), and the epoch
// handshake through `control` orders those accesses.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

thread_local! {
    /// True while the current thread is executing chunks for some pool, used
    /// to run nested dispatches inline instead of deadlocking on `submit`.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// The pool lane this thread drains as: worker threads carry their fixed
    /// id, the submitting thread takes the last lane for the duration of a
    /// `run`. Read by the sanitizer's claim recording.
    static POOL_LANE: Cell<usize> = const { Cell::new(0) };
}

/// The pool lane the current thread is executing chunks for (0 outside any
/// dispatch). Used by the sanitizer to attribute chunk claims to lanes.
pub(crate) fn current_lane() -> usize {
    POOL_LANE.with(|l| l.get())
}

/// The lane whose queue chunk `chunk` was seeded into: mirrors the queue
/// bounds in [`WorkerPool::run`] (lane `w` owns `[w*chunks/lanes,
/// (w+1)*chunks/lanes)`), i.e. the smallest `w` whose range still contains
/// `chunk`. A chunk executed by any other lane was stolen; trace chunk
/// spans use this to label steals.
pub(crate) fn home_lane(chunk: usize, chunks: usize, lanes: usize) -> usize {
    ((chunk + 1) * lanes).saturating_sub(1) / chunks.max(1)
}

/// A persistent, work-stealing pool of `threads` execution lanes.
///
/// `threads - 1` OS threads are spawned lazily at construction and parked
/// between jobs; the thread calling [`WorkerPool::run`] acts as the final
/// lane, so a pool for `n` functional threads occupies exactly `n` cores
/// while a kernel runs and zero while idle.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: usize,
    submit: Mutex<()>, // lock: pool.submit
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` lanes (`threads - 1` parked OS workers).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            control: Mutex::new(Epoch(0)),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            job: UnsafeCell::new(None),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic_slot: Mutex::new(None),
            dispatches: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            dispatch_ns: AtomicU64::new(0),
            lanes: (0..threads).map(|_| LaneCounters::default()).collect(),
        });
        let handles = (0..threads - 1)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gko-pool-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    // lint: allow(panic): pool construction, not a kernel
                    // path — if the OS cannot spawn threads there is no
                    // meaningful recovery, and callers get a pool-less
                    // executor only by configuration, never by fallback.
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            submit: Mutex::new(()),
            handles,
        }
    }

    /// Number of execution lanes (including the submitting thread's).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared;
        PoolStats {
            dispatches: s.dispatches.load(Ordering::Relaxed),
            chunks: s.chunks.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
            parks: s.parks.load(Ordering::Relaxed),
            unparks: s.unparks.load(Ordering::Relaxed),
            dispatch_ns: s.dispatch_ns.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the per-lane activity counters, indexed by lane id.
    ///
    /// The vector always has [`WorkerPool::threads`] entries; a lane that
    /// never executed a chunk reports zeros.
    pub fn lane_stats(&self) -> Vec<LaneStats> {
        self.shared
            .lanes
            .iter()
            .map(|l| LaneStats {
                chunks: l.chunks.load(Ordering::Relaxed),
                steals: l.steals.load(Ordering::Relaxed),
                busy_ns: l.busy_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Executes `task(i)` for every `i in 0..n_chunks`, distributing indices
    /// over the pool's lanes with work stealing. Blocks until all chunks
    /// completed; panics from chunk closures are forwarded.
    pub fn run(&self, n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        // A chunk closure that itself dispatches (nested parallelism) would
        // deadlock waiting on its own pool; run such jobs inline instead.
        if IN_POOL_WORKER.with(|w| w.get()) {
            for i in 0..n_chunks {
                task(i);
            }
            return;
        }
        // lint: allow(forbidden-api): measures real dispatch overhead for
        // `PoolStats` diagnostics only; the value never feeds the virtual
        // timeline or any kernel result.
        let start = Instant::now();
        let _submission = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        let lanes = self.threads;
        let queues: Vec<ChunkQueue> = (0..lanes)
            .map(|w| ChunkQueue {
                next: AtomicUsize::new(w * n_chunks / lanes),
                end: (w + 1) * n_chunks / lanes,
            })
            .collect();
        let workers = self.handles.len();
        let task: TaskPtr =
            // SAFETY: the transmute erases the borrow's lifetime into the
            // `'static`-defaulted raw trait-object pointer; `run` blocks
            // until every lane finished and clears the slot before
            // returning, so the pointer never outlives the borrow.
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), TaskPtr>(task) };
        // SAFETY: no worker is active (previous run drained them and this
        // thread holds `submit`), so the slot is exclusively ours.
        unsafe {
            *self.shared.job.get() = Some(Job { task, queues });
        }
        self.shared.active.store(workers, Ordering::Release);
        if workers > 0 {
            let mut epoch = self.shared.control.lock().unwrap_or_else(|e| e.into_inner());
            epoch.0 += 1;
            self.shared.work_ready.notify_all();
        }
        // The submitting thread is the last lane: drain its own queue, then
        // steal leftovers, in parallel with the woken workers.
        {
            // SAFETY: published above; workers only read it.
            // lint: allow(panic): the slot was set to `Some` a few lines up
            // while holding `submit`, so `as_ref()` cannot be `None`.
            let job = unsafe { (*self.shared.job.get()).as_ref().unwrap() };
            IN_POOL_WORKER.with(|w| w.set(true));
            POOL_LANE.with(|l| l.set(lanes - 1));
            let drained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drain(&self.shared, job, lanes - 1);
            }));
            IN_POOL_WORKER.with(|w| w.set(false));
            if let Err(payload) = drained {
                store_panic(&self.shared, payload);
            }
        }
        if workers > 0 {
            let mut epoch = self.shared.control.lock().unwrap_or_else(|e| e.into_inner());
            while self.shared.active.load(Ordering::Acquire) != 0 {
                epoch = self
                    .shared
                    .work_done
                    .wait(epoch)
                    .unwrap_or_else(|e| e.into_inner());
            }
            drop(epoch);
        }
        // SAFETY: all lanes are done; drop the job (and the erased pointer)
        // before `task`'s borrow ends.
        unsafe {
            *self.shared.job.get() = None;
        }
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        self.shared
            .dispatch_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let payload = self.shared.panic_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _epoch = self.shared.control.lock();
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn store_panic(shared: &Shared, payload: Box<dyn Any + Send>) {
    let mut slot = shared.panic_slot.lock().unwrap_or_else(|e| e.into_inner());
    if slot.is_none() {
        *slot = Some(payload);
    }
}

/// Executes chunks for lane `me`: first its own queue, then round-robin
/// stealing from the other lanes' queues.
fn drain(shared: &Shared, job: &Job, me: usize) {
    let lanes = job.queues.len();
    let mut ran = 0u64;
    let mut stolen = 0u64;
    // lint: allow(forbidden-api): real busy time per lane feeds the
    // utilization-skew telemetry only; it never enters the virtual timeline
    // or any kernel result.
    let start = Instant::now();
    for offset in 0..lanes {
        let victim = (me + offset) % lanes;
        let queue = &job.queues[victim];
        loop {
            let index = queue.next.fetch_add(1, Ordering::Relaxed);
            if index >= queue.end {
                break;
            }
            // SAFETY: `run` keeps the closure alive until every lane exits.
            unsafe { (*job.task)(index) };
            ran += 1;
            if offset != 0 {
                stolen += 1;
            }
        }
    }
    shared.chunks.fetch_add(ran, Ordering::Relaxed);
    shared.steals.fetch_add(stolen, Ordering::Relaxed);
    if let Some(lane) = shared.lanes.get(me) {
        lane.chunks.fetch_add(ran, Ordering::Relaxed);
        lane.steals.fetch_add(stolen, Ordering::Relaxed);
        lane.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Body of one parked OS worker.
fn worker_loop(shared: Arc<Shared>, id: usize) {
    POOL_LANE.with(|l| l.set(id));
    let mut seen = 0u64;
    loop {
        {
            let mut epoch = shared.control.lock().unwrap_or_else(|e| e.into_inner());
            if epoch.0 == seen && !shared.shutdown.load(Ordering::Relaxed) {
                shared.parks.fetch_add(1, Ordering::Relaxed);
                while epoch.0 == seen && !shared.shutdown.load(Ordering::Relaxed) {
                    epoch = shared.work_ready.wait(epoch).unwrap_or_else(|e| e.into_inner());
                }
                shared.unparks.fetch_add(1, Ordering::Relaxed);
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            seen = epoch.0;
        }
        {
            // SAFETY: the epoch handshake guarantees the job was fully
            // published before we observed the bump.
            // lint: allow(panic): same handshake — a bumped epoch implies
            // the submitter stored `Some` before notifying.
            let job = unsafe { (*shared.job.get()).as_ref().unwrap() };
            IN_POOL_WORKER.with(|w| w.set(true));
            let drained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drain(&shared, job, id);
            }));
            IN_POOL_WORKER.with(|w| w.set(false));
            if let Err(payload) = drained {
                store_panic(&shared, payload);
            }
        }
        let _epoch = shared.control.lock().unwrap_or_else(|e| e.into_inner());
        if shared.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.work_done.notify_all();
        }
    }
}

/// Shared view of the pre-split output pieces, indexable from any lane.
struct PieceTable<'a, T>(*mut &'a mut [T]);

// SAFETY: each piece index is delivered to exactly one lane per job (see
// `ChunkQueue`), so concurrent `&mut` access is disjoint.
unsafe impl<T: Send> Send for PieceTable<'_, T> {}
unsafe impl<T: Send> Sync for PieceTable<'_, T> {}

impl<'a, T> PieceTable<'a, T> {
    /// # Safety
    ///
    /// `i` must be in bounds and held by at most one lane at a time.
    #[allow(clippy::mut_from_ref)] // exclusivity is the caller's contract above
    unsafe fn piece(&self, i: usize) -> &mut &'a mut [T] {
        &mut *self.0.add(i)
    }
}

/// Splits `out` at the given chunk boundaries and applies
/// `f(chunk_index, chunk_slice)` to every chunk on `exec`'s worker pool
/// (serially when the executor has a single functional thread).
///
/// `bounds` must be non-decreasing, start at 0, and end at `out.len()`;
/// chunk `i` receives `out[bounds[i]..bounds[i+1]]`.
///
/// # Panics
///
/// Panics if the bounds are malformed or if any chunk closure panics.
pub fn parallel_chunks<T, F>(exec: &Executor, out: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(!bounds.is_empty(), "bounds must contain at least [0]");
    assert_eq!(bounds[0], 0, "bounds must start at 0");
    assert_eq!(
        // lint: allow(panic): non-empty asserted two lines above.
        *bounds.last().unwrap(),
        out.len(),
        "bounds must end at the slice length"
    );
    let chunks = bounds.len() - 1;
    if chunks == 0 {
        return;
    }

    let pool = exec.worker_pool();
    if pool.is_none() || chunks == 1 {
        let mut rest = out;
        for i in 0..chunks {
            let len = bounds[i + 1] - bounds[i];
            let (head, tail) = rest.split_at_mut(len);
            f(i, head);
            rest = tail;
        }
        return;
    }

    // Pre-split the output into disjoint sub-slices; lanes fetch chunk
    // indices from the pool queues and look their slice up by index.
    let mut pieces: Vec<&mut [T]> = Vec::with_capacity(chunks);
    let mut rest = out;
    for i in 0..chunks {
        let len = bounds[i + 1] - bounds[i];
        let (head, tail) = rest.split_at_mut(len);
        pieces.push(head);
        rest = tail;
    }
    let table = PieceTable(pieces.as_mut_ptr());
    // lint: allow(panic): the `pool.is_none()` case returned above.
    let pool = pool.unwrap();
    // Only pay for counter snapshots when someone is listening.
    let stats_before = exec
        .loggers()
        .is_active()
        .then(|| pool.stats());
    let body = |i: usize| {
        // SAFETY: index `i` is delivered exactly once, so this `&mut` is the
        // only live reference to piece `i`.
        let piece = unsafe { table.piece(i) };
        f(i, piece);
    };
    // With the sanitizer on, record which lane claimed which piece and
    // verify after the drain that the claims exactly partition the chunk
    // range — the machine check behind `PieceTable`'s SAFETY argument.
    // Off path: one relaxed load.
    let claims = exec
        .sanitizer()
        .is_enabled()
        .then(|| crate::sanitize::ClaimLog::new(pool.threads()));
    // With a trace live on this thread, open a dispatch span and have every
    // chunk closure record begin/end/steal against the propagated
    // SpanContext into cache-padded per-lane buffers. Off path (no trace,
    // or a trace owned by another thread): one relaxed load.
    let dispatch = exec.tracer().begin_dispatch(pool.threads(), chunks);
    let lanes_total = pool.threads();
    match (&claims, &dispatch) {
        (Some(log), Some(d)) => {
            let ctx = d.context();
            pool.run(chunks, &move |i| {
                let lane = current_lane();
                log.record(lane, i);
                let t0 = d.now_ns();
                body(i);
                let steal = lane != home_lane(i, chunks, lanes_total);
                d.record(ctx, i, lane, steal, t0, d.now_ns());
            })
        }
        (Some(log), None) => pool.run(chunks, &|i| {
            log.record(current_lane(), i);
            body(i);
        }),
        (None, Some(d)) => {
            let ctx = d.context();
            pool.run(chunks, &move |i| {
                let lane = current_lane();
                let t0 = d.now_ns();
                body(i);
                let steal = lane != home_lane(i, chunks, lanes_total);
                d.record(ctx, i, lane, steal, t0, d.now_ns());
            })
        }
        (None, None) => pool.run(chunks, &body),
    }
    if let Some(log) = &claims {
        match log.verify(chunks) {
            Ok(summary) => exec.sanitizer().note_job(summary.pieces),
            Err(violation) => crate::sanitize::report_claim_violation(&violation),
        }
    }
    if let Some(d) = dispatch {
        exec.tracer().end_dispatch(d);
    }
    if let Some(before) = stats_before {
        let delta = pool.stats().since(&before);
        exec.loggers().log(&crate::log::Event::PoolDispatch {
            chunks: delta.chunks,
            steals: delta.steals,
            threads: pool.threads(),
            wall_ns: delta.dispatch_ns,
        });
    }
}

/// Computes one `f64` partial result per chunk in parallel and returns the
/// partials in chunk order (so reductions are deterministic regardless of
/// scheduling).
pub fn parallel_partials<F>(exec: &Executor, chunks: usize, f: F) -> Vec<f64>
where
    F: Fn(usize) -> f64 + Sync,
{
    let mut partials = vec![0.0f64; chunks];
    let bounds: Vec<usize> = (0..=chunks).collect();
    parallel_chunks(exec, &mut partials, &bounds, |i, slot| {
        slot[0] = f(i);
    });
    partials
}

/// Pairwise (tree) reduction of partial sums.
///
/// Unlike a left-to-right fold, the tree shape keeps rounding error growth
/// logarithmic in the chunk count and matches how device reductions combine
/// partials, while staying fully deterministic for a given partial order.
pub fn tree_reduce(partials: &[f64]) -> f64 {
    match partials.len() {
        0 => 0.0,
        1 => partials[0],
        n => {
            let mid = n.div_ceil(2);
            tree_reduce(&partials[..mid]) + tree_reduce(&partials[mid..])
        }
    }
}

/// Builds chunk boundaries that split `n` items into at most `max_chunks`
/// nearly equal ranges (the classical row-block partition).
pub fn uniform_bounds(n: usize, max_chunks: usize) -> Vec<usize> {
    let chunks = max_chunks.max(1).min(n.max(1));
    let mut bounds = Vec::with_capacity(chunks + 1);
    for i in 0..=chunks {
        bounds.push(i * n / chunks);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn omp(threads: usize) -> Executor {
        Executor::omp(threads)
    }

    #[test]
    fn serial_path_applies_all_chunks() {
        let mut data = vec![0u32; 10];
        parallel_chunks(&Executor::reference(), &mut data, &[0, 3, 7, 10], |i, s| {
            s.fill(i as u32 + 1);
        });
        assert_eq!(data, [1, 1, 1, 2, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let mut serial = vec![0u64; 1000];
        let mut parallel = vec![0u64; 1000];
        let bounds = uniform_bounds(1000, 16);
        let kernel = |i: usize, s: &mut [u64]| {
            for (k, v) in s.iter_mut().enumerate() {
                *v = (i * 31 + k) as u64;
            }
        };
        parallel_chunks(&Executor::reference(), &mut serial, &bounds, kernel);
        parallel_chunks(&omp(4), &mut parallel, &bounds, kernel);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_chunks_are_allowed() {
        let mut data = vec![7u8; 4];
        parallel_chunks(&omp(2), &mut data, &[0, 0, 4, 4], |i, s| {
            if i == 1 {
                s.fill(9);
            } else {
                assert!(s.is_empty());
            }
        });
        assert_eq!(data, [9, 9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "bounds must end")]
    fn bad_bounds_panic() {
        let mut data = vec![0u8; 4];
        parallel_chunks(&Executor::reference(), &mut data, &[0, 2], |_, _| {});
    }

    #[test]
    fn partials_are_in_chunk_order() {
        let p = parallel_partials(&omp(4), 8, |i| i as f64 * 2.0);
        assert_eq!(p, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn uniform_bounds_cover_exactly() {
        let b = uniform_bounds(10, 3);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&10));
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        // More chunks than items degrades to one item per chunk.
        let b = uniform_bounds(2, 100);
        assert_eq!(b, vec![0, 1, 2]);
        // Zero items yields a single empty chunk.
        let b = uniform_bounds(0, 4);
        assert_eq!(b, vec![0, 0]);
    }

    #[test]
    fn pool_is_persistent_across_dispatches() {
        let exec = omp(4);
        let mut data = vec![0u32; 64];
        let bounds = uniform_bounds(64, 8);
        for round in 0..10 {
            parallel_chunks(&exec, &mut data, &bounds, |i, s| {
                s.fill((round * 100 + i) as u32);
            });
        }
        let stats = exec.pool_stats();
        assert_eq!(stats.dispatches, 10, "one dispatch per kernel");
        assert_eq!(stats.chunks, 80, "8 chunks per kernel");
        // The workers were spawned once and parked between jobs, never
        // respawned: parks can exceed dispatches (initial park) but the pool
        // object itself persisted, which `threads()` pins down.
        assert_eq!(exec.worker_pool().unwrap().threads(), 4);
    }

    #[test]
    fn worker_panics_propagate_to_the_submitter() {
        let exec = omp(2);
        let mut data = vec![0u8; 8];
        let bounds = uniform_bounds(8, 8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_chunks(&exec, &mut data, &bounds, |i, _| {
                if i == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool survives the panic and keeps working.
        parallel_chunks(&exec, &mut data, &bounds, |i, s| s.fill(i as u8));
        assert_eq!(data, [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let exec = omp(2);
        let exec2 = exec.clone();
        let mut outer = vec![0u32; 4];
        parallel_chunks(&exec, &mut outer, &[0, 2, 4], |_, s| {
            // A nested job on the same executor must not deadlock.
            let mut inner = vec![0u32; 4];
            parallel_chunks(&exec2, &mut inner, &[0, 2, 4], |i, t| {
                t.fill(i as u32 + 1);
            });
            s[0] = inner.iter().sum();
        });
        assert_eq!(outer[0], 6);
    }

    #[test]
    fn stats_track_steals_on_skewed_chunks() {
        let pool = WorkerPool::new(4);
        let before = pool.stats();
        // 64 chunks, one lane's queue is made artificially slow so others
        // finish and steal. We can't control the scheduler, but we can check
        // the books balance: every chunk ran exactly once.
        let counter = AtomicU64::new(0);
        pool.run(64, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let d = pool.stats().since(&before);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(d.chunks, 64);
        assert_eq!(d.dispatches, 1);
        assert!(d.steals <= 64);
    }

    #[test]
    fn lane_stats_account_for_every_chunk() {
        let pool = WorkerPool::new(4);
        pool.run(64, &|_| {});
        let lanes = pool.lane_stats();
        assert_eq!(lanes.len(), 4, "one entry per lane");
        let total: u64 = lanes.iter().map(|l| l.chunks).sum();
        assert_eq!(total, 64, "per-lane chunks sum to the pool total");
        let steals: u64 = lanes.iter().map(|l| l.steals).sum();
        assert_eq!(steals, pool.stats().steals, "per-lane steals sum too");
        // The submitting thread (last lane) always participates.
        assert!(lanes[3].chunks > 0);
    }

    #[test]
    fn stats_since_never_underflows_across_rearm() {
        // Snapshots taken across a pool teardown + re-arm (or simply passed
        // in the wrong order) must yield zeros, never panic.
        let old_pool = WorkerPool::new(2);
        old_pool.run(32, &|_| {});
        let before = old_pool.stats();
        let before_lanes = old_pool.lane_stats();
        drop(old_pool);
        let fresh = WorkerPool::new(3);
        fresh.run(2, &|_| {});
        let d = fresh.stats().since(&before);
        assert!(d.chunks <= 2, "saturated, not wrapped: {d:?}");
        // Inverted order outright: every field saturates to zero.
        let inverted = PoolStats::default().since(&before);
        assert_eq!(inverted, PoolStats::default());
        // Per-lane diffs tolerate both inversion and lane-count mismatch.
        let lane_d = lane_stats_since(&fresh.lane_stats(), &before_lanes);
        assert_eq!(lane_d.len(), 3, "diff follows the newer snapshot");
        let zero = lane_stats_since(&[LaneStats::default()], &before_lanes);
        assert_eq!(zero, vec![LaneStats::default()]);
    }

    #[test]
    fn lane_stats_since_lanes_added_after_baseline_diff_against_zero() {
        // Regression: a baseline snapshot taken from a smaller pool must
        // not underflow (or misalign) when the pool is re-armed with more
        // lanes — new lanes diff against zero, pre-existing lane slots
        // saturate per field, and the result stays positionally aligned
        // with the newer snapshot.
        let earlier = vec![LaneStats {
            chunks: 10,
            steals: 4,
            busy_ns: 1_000,
        }];
        let now = vec![
            LaneStats {
                chunks: 5, // below the stale baseline: saturates, no wrap
                steals: 9,
                busy_ns: 500,
            },
            LaneStats {
                chunks: 7,
                steals: 2,
                busy_ns: 300,
            },
            LaneStats {
                chunks: 9,
                steals: 0,
                busy_ns: 800,
            },
        ];
        let d = lane_stats_since(&now, &earlier);
        assert_eq!(d.len(), now.len(), "aligned with the newer snapshot");
        assert_eq!(d[0], LaneStats { chunks: 0, steals: 5, busy_ns: 0 });
        // Lanes added after the baseline: full current values, no underflow.
        assert_eq!(d[1], now[1]);
        assert_eq!(d[2], now[2]);
        // Shrunk pool: extra baseline lanes are dropped, not diffed.
        let shrunk = lane_stats_since(&now[..1], &now);
        assert_eq!(shrunk, vec![LaneStats::default()]);
    }

    #[test]
    fn home_lane_matches_queue_seeding() {
        // `home_lane` must agree with the queue bounds `run` seeds
        // (lane w owns [w*chunks/lanes, (w+1)*chunks/lanes)).
        for &lanes in &[1usize, 2, 3, 4, 7, 16] {
            for &chunks in &[2usize, 3, 5, 16, 37, 64] {
                for w in 0..lanes {
                    let start = w * chunks / lanes;
                    let end = (w + 1) * chunks / lanes;
                    for c in start..end {
                        assert_eq!(
                            home_lane(c, chunks, lanes),
                            w,
                            "chunk {c} of {chunks} on {lanes} lanes"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tree_reduce_matches_linear_sum_on_exact_values() {
        assert_eq!(tree_reduce(&[]), 0.0);
        assert_eq!(tree_reduce(&[3.5]), 3.5);
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(tree_reduce(&v), 4950.0);
    }
}
