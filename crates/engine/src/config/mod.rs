//! The generic solver entry point ("config solver", paper §5).
//!
//! Ginkgo can build any solver/preconditioner pipeline from a configuration
//! tree supplied as JSON (or constructed programmatically). pyGinkgo builds
//! that tree from a Python dictionary (Listing 2) and hands it over without
//! touching disk. This module provides:
//!
//! * [`Config`] — the configuration value tree;
//! * [`json`] — a from-scratch JSON parser/serializer (no external crates);
//! * [`solve`] — the factory that instantiates engine solvers from a tree.

pub mod json;
pub mod solve;

pub use solve::{config_solve, ConfiguredSolver};

use crate::base::error::{GkoError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A configuration value (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Config {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON integer (kept separate from floats so iteration counts stay
    /// exact).
    Int(i64),
    /// JSON floating point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Config>),
    /// JSON object with deterministic (sorted) key order.
    Map(BTreeMap<String, Config>),
}

impl Config {
    /// Creates an empty object.
    pub fn map() -> Config {
        Config::Map(BTreeMap::new())
    }

    /// Builder-style insertion; panics if `self` is not a map (programming
    /// error, analogous to Python raising on attribute access).
    pub fn with(mut self, key: &str, value: impl Into<Config>) -> Config {
        match &mut self {
            Config::Map(m) => {
                m.insert(key.to_owned(), value.into());
            }
            _ => panic!("Config::with on a non-map"),
        }
        self
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Config> {
        match self {
            Config::Map(m) => m.get(key),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Config::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer accessor (floats with integral value also qualify).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Config::Int(v) => Some(*v),
            Config::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Float accessor (integers widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Config::Float(v) => Some(*v),
            Config::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Config]> {
        match self {
            Config::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Required-field accessor with a config-error message.
    pub fn require(&self, key: &str) -> Result<&Config> {
        self.get(key)
            .ok_or_else(|| GkoError::InvalidConfig(format!("missing required key '{key}'")))
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Parses a JSON string.
    pub fn from_json(text: &str) -> Result<Config> {
        json::parse(text)
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Config {
    fn from(v: bool) -> Config {
        Config::Bool(v)
    }
}
impl From<i64> for Config {
    fn from(v: i64) -> Config {
        Config::Int(v)
    }
}
impl From<usize> for Config {
    fn from(v: usize) -> Config {
        Config::Int(v as i64)
    }
}
impl From<f64> for Config {
    fn from(v: f64) -> Config {
        Config::Float(v)
    }
}
impl From<&str> for Config {
    fn from(v: &str) -> Config {
        Config::Str(v.to_owned())
    }
}
impl From<String> for Config {
    fn from(v: String) -> Config {
        Config::Str(v)
    }
}
impl From<Vec<Config>> for Config {
    fn from(v: Vec<Config>) -> Config {
        Config::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_listing_2_shape() {
        let cfg = Config::map()
            .with("type", "solver::Gmres")
            .with("krylov_dim", 30usize)
            .with(
                "preconditioner",
                Config::map()
                    .with("type", "preconditioner::Jacobi")
                    .with("max_block_size", 1usize),
            )
            .with(
                "criteria",
                vec![
                    Config::map().with("type", "Iteration").with("max_iters", 1000usize),
                    Config::map()
                        .with("type", "ResidualNorm")
                        .with("reduction_factor", 1e-6),
                ],
            );
        assert_eq!(cfg.get("type").unwrap().as_str(), Some("solver::Gmres"));
        assert_eq!(cfg.get("krylov_dim").unwrap().as_int(), Some(30));
        let crit = cfg.get("criteria").unwrap().as_array().unwrap();
        assert_eq!(crit.len(), 2);
        assert_eq!(
            cfg.get("preconditioner")
                .unwrap()
                .get("max_block_size")
                .unwrap()
                .as_int(),
            Some(1)
        );
    }

    #[test]
    fn accessors_coerce_sensibly() {
        assert_eq!(Config::Int(3).as_float(), Some(3.0));
        assert_eq!(Config::Float(3.0).as_int(), Some(3));
        assert_eq!(Config::Float(3.5).as_int(), None);
        assert_eq!(Config::Str("x".into()).as_int(), None);
    }

    #[test]
    fn require_reports_missing_keys() {
        let cfg = Config::map();
        let err = cfg.require("type").unwrap_err();
        assert!(err.to_string().contains("type"));
    }

    #[test]
    #[should_panic(expected = "non-map")]
    fn with_on_scalar_panics() {
        let _ = Config::Int(1).with("x", 2i64);
    }
}
