//! The config-solver factory: builds solver pipelines from config trees.
//!
//! Mirrors Ginkgo's `config::parse` + `LinOpFactory::generate`: the tree
//! selects the solver type, its parameters, its stopping criteria, and an
//! optional preconditioner; `config_solve` instantiates the whole pipeline
//! against a concrete matrix. The facade's `solve()` builds these trees from
//! keyword arguments (Listing 2).

use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::config::Config;
use crate::linop::LinOp;
use crate::log::ConvergenceLogger;
use crate::matrix::csr::Csr;
use crate::preconditioner::{Ic, Ilu, Jacobi};
use crate::solver::{BiCgStab, Cg, Cgs, Direct, Fcg, Gmres, Ir, Minres};
use crate::stop::Criteria;
use std::sync::Arc;

/// A solver built by the config factory: the operator plus its logger.
pub struct ConfiguredSolver<V: Value> {
    /// The solver, usable like any other operator.
    pub op: Arc<dyn LinOp<V>>,
    /// Logger attached to the solver (empty for direct solvers).
    pub logger: ConvergenceLogger,
}

/// Parses the `criteria` array of a config tree.
pub fn parse_criteria(config: &Config) -> Result<Criteria> {
    let mut criteria = Criteria {
        max_iters: usize::MAX,
        reduction_factor: None,
        abs_tolerance: None,
    };
    let Some(list) = config.get("criteria") else {
        return Ok(Criteria::default());
    };
    let items = list
        .as_array()
        .ok_or_else(|| GkoError::InvalidConfig("'criteria' must be an array".into()))?;
    for item in items {
        let ty = item.require("type")?.as_str().ok_or_else(|| {
            GkoError::InvalidConfig("criterion 'type' must be a string".into())
        })?;
        match ty {
            "Iteration" => {
                let n = item.require("max_iters")?.as_int().ok_or_else(|| {
                    GkoError::InvalidConfig("'max_iters' must be an integer".into())
                })?;
                criteria.max_iters = usize::try_from(n).map_err(|_| {
                    GkoError::InvalidConfig("'max_iters' must be non-negative".into())
                })?;
            }
            "ResidualNorm" => {
                let f = item
                    .require("reduction_factor")?
                    .as_float()
                    .ok_or_else(|| {
                        GkoError::InvalidConfig("'reduction_factor' must be a number".into())
                    })?;
                criteria.reduction_factor = Some(f);
            }
            "AbsoluteResidualNorm" => {
                let f = item.require("tolerance")?.as_float().ok_or_else(|| {
                    GkoError::InvalidConfig("'tolerance' must be a number".into())
                })?;
                criteria.abs_tolerance = Some(f);
            }
            other => {
                return Err(GkoError::InvalidConfig(format!(
                    "unknown criterion type '{other}'"
                )))
            }
        }
    }
    if criteria.max_iters == usize::MAX
        && criteria.reduction_factor.is_none()
        && criteria.abs_tolerance.is_none()
    {
        return Ok(Criteria::default());
    }
    Ok(criteria)
}

/// Builds the preconditioner named in the config (if any).
pub fn build_preconditioner<V: Value, I: Index>(
    matrix: &Arc<Csr<V, I>>,
    config: &Config,
) -> Result<Option<Arc<dyn LinOp<V>>>> {
    let Some(sub) = config.get("preconditioner") else {
        return Ok(None);
    };
    if matches!(sub, Config::Null) {
        return Ok(None);
    }
    let ty = sub.require("type")?.as_str().ok_or_else(|| {
        GkoError::InvalidConfig("preconditioner 'type' must be a string".into())
    })?;
    let op: Arc<dyn LinOp<V>> = match ty {
        "preconditioner::Jacobi" => {
            let block = sub
                .get("max_block_size")
                .and_then(Config::as_int)
                .unwrap_or(1);
            if block <= 0 {
                return Err(GkoError::InvalidConfig(
                    "'max_block_size' must be positive".into(),
                ));
            }
            Arc::new(Jacobi::with_block_size(matrix, block as usize)?)
        }
        "preconditioner::Ilu" => Arc::new(Ilu::new(matrix)?),
        "preconditioner::Ic" => Arc::new(Ic::new(matrix)?),
        other => {
            return Err(GkoError::InvalidConfig(format!(
                "unknown preconditioner type '{other}'"
            )))
        }
    };
    Ok(Some(op))
}

/// Instantiates the solver pipeline described by `config` for `matrix`.
pub fn config_solve<V: Value, I: Index>(
    matrix: Arc<Csr<V, I>>,
    config: &Config,
) -> Result<ConfiguredSolver<V>> {
    let ty = config.require("type")?.as_str().ok_or_else(|| {
        GkoError::InvalidConfig("solver 'type' must be a string".into())
    })?;
    let criteria = parse_criteria(config)?;
    let precond = build_preconditioner(&matrix, config)?;
    let system: Arc<dyn LinOp<V>> = matrix.clone();

    macro_rules! krylov {
        ($ctor:ident) => {{
            let mut s = $ctor::new(system)?.with_criteria(criteria);
            if let Some(p) = precond {
                s = s.with_preconditioner(p)?;
            }
            let logger = s.logger().clone();
            ConfiguredSolver {
                op: Arc::new(s),
                logger,
            }
        }};
    }

    let solver = match ty {
        "solver::Cg" => krylov!(Cg),
        "solver::Fcg" => krylov!(Fcg),
        "solver::Cgs" => krylov!(Cgs),
        "solver::Bicgstab" => krylov!(BiCgStab),
        "solver::Minres" => {
            let s = Minres::new(system)?.with_criteria(criteria);
            if precond.is_some() {
                return Err(GkoError::InvalidConfig(
                    "solver::Minres does not support preconditioning".into(),
                ));
            }
            let logger = s.logger().clone();
            ConfiguredSolver {
                op: Arc::new(s),
                logger,
            }
        }
        "solver::Gmres" => {
            let mut s = Gmres::new(system)?.with_criteria(criteria);
            if let Some(dim) = config.get("krylov_dim").and_then(Config::as_int) {
                if dim <= 0 {
                    return Err(GkoError::InvalidConfig(
                        "'krylov_dim' must be positive".into(),
                    ));
                }
                s = s.with_krylov_dim(dim as usize);
            }
            if let Some(p) = precond {
                s = s.with_preconditioner(p)?;
            }
            let logger = s.logger().clone();
            ConfiguredSolver {
                op: Arc::new(s),
                logger,
            }
        }
        "solver::Ir" => {
            let mut s = Ir::new(system)?.with_criteria(criteria);
            if let Some(omega) = config.get("relaxation_factor").and_then(Config::as_float) {
                s = s.with_relaxation(omega);
            }
            if let Some(p) = precond {
                s = s.with_solver(p)?;
            }
            let logger = s.logger().clone();
            ConfiguredSolver {
                op: Arc::new(s),
                logger,
            }
        }
        "solver::Direct" => ConfiguredSolver {
            op: Arc::new(Direct::new(&matrix)?),
            logger: ConvergenceLogger::new(),
        },
        other => {
            return Err(GkoError::InvalidConfig(format!(
                "unknown solver type '{other}'"
            )))
        }
    };
    Ok(solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::dim::Dim2;
    use crate::executor::Executor;
    use crate::matrix::dense::Dense;

    fn system(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    fn listing_2_config() -> Config {
        Config::from_json(
            r#"{
                "type": "solver::Gmres",
                "krylov_dim": 30,
                "preconditioner": {"type": "preconditioner::Jacobi", "max_block_size": 1},
                "criteria": [
                    {"type": "Iteration", "max_iters": 1000},
                    {"type": "ResidualNorm", "reduction_factor": 1e-06}
                ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn builds_and_solves_listing_2_pipeline() {
        let exec = Executor::reference();
        let a = system(&exec, 50);
        let solver = config_solve(a.clone(), &listing_2_config()).unwrap();
        let b = Dense::<f64>::vector(&exec, 50, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 50, 0.0);
        solver.op.apply(&b, &mut x).unwrap();
        let rec = solver.logger.snapshot();
        assert!(rec.converged(), "{:?}", rec.stop_reason);
        assert!(rec.final_residual <= 1e-6 * rec.initial_residual);
    }

    #[test]
    fn every_krylov_solver_is_constructible() {
        let exec = Executor::reference();
        let a = system(&exec, 20);
        for ty in [
            "solver::Cg",
            "solver::Fcg",
            "solver::Cgs",
            "solver::Bicgstab",
            "solver::Minres",
            "solver::Gmres",
        ] {
            let cfg = Config::map().with("type", ty).with(
                "criteria",
                vec![Config::map()
                    .with("type", "ResidualNorm")
                    .with("reduction_factor", 1e-8)],
            );
            let solver = config_solve(a.clone(), &cfg).unwrap();
            let b = Dense::<f64>::vector(&exec, 20, 1.0);
            let mut x = Dense::<f64>::vector(&exec, 20, 0.0);
            solver.op.apply(&b, &mut x).unwrap();
            assert!(
                solver.logger.snapshot().converged(),
                "{ty} failed to converge"
            );
        }
    }

    #[test]
    fn direct_solver_via_config() {
        let exec = Executor::reference();
        let a = system(&exec, 10);
        let cfg = Config::map().with("type", "solver::Direct");
        let solver = config_solve(a.clone(), &cfg).unwrap();
        let x_true = Dense::<f64>::vector(&exec, 10, 2.0);
        let mut b = Dense::zeros(&exec, Dim2::new(10, 1));
        a.apply(&x_true, &mut b).unwrap();
        let mut x = Dense::zeros(&exec, Dim2::new(10, 1));
        solver.op.apply(&b, &mut x).unwrap();
        for (got, want) in x.to_host_vec().iter().zip(x_true.to_host_vec()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn ilu_and_ic_preconditioners_via_config() {
        let exec = Executor::reference();
        let a = system(&exec, 30);
        for p in ["preconditioner::Ilu", "preconditioner::Ic"] {
            let cfg = Config::map()
                .with("type", "solver::Cg")
                .with("preconditioner", Config::map().with("type", p))
                .with(
                    "criteria",
                    vec![Config::map()
                        .with("type", "ResidualNorm")
                        .with("reduction_factor", 1e-10)],
                );
            let solver = config_solve(a.clone(), &cfg).unwrap();
            let b = Dense::<f64>::vector(&exec, 30, 1.0);
            let mut x = Dense::<f64>::vector(&exec, 30, 0.0);
            solver.op.apply(&b, &mut x).unwrap();
            assert!(solver.logger.snapshot().converged(), "{p}");
        }
    }

    #[test]
    fn unknown_types_are_informative_errors() {
        let exec = Executor::reference();
        let a = system(&exec, 5);
        let cfg = Config::map().with("type", "solver::Quantum");
        let err = match config_solve(a.clone(), &cfg) {
            Err(e) => e,
            Ok(_) => panic!("unknown solver type must fail"),
        };
        assert!(err.to_string().contains("solver::Quantum"));

        let cfg = Config::map()
            .with("type", "solver::Cg")
            .with("preconditioner", Config::map().with("type", "preconditioner::Magic"));
        assert!(config_solve(a, &cfg).is_err());
    }

    #[test]
    fn missing_type_is_an_error() {
        let exec = Executor::reference();
        let a = system(&exec, 5);
        assert!(config_solve(a, &Config::map()).is_err());
    }

    #[test]
    fn bad_criteria_are_rejected() {
        let exec = Executor::reference();
        let a = system(&exec, 5);
        let cfg = Config::map().with("type", "solver::Cg").with(
            "criteria",
            vec![Config::map().with("type", "Wormhole")],
        );
        assert!(config_solve(a.clone(), &cfg).is_err());

        let cfg = Config::map()
            .with("type", "solver::Cg")
            .with("criteria", Config::Str("nope".into()));
        assert!(config_solve(a, &cfg).is_err());
    }

    #[test]
    fn null_preconditioner_means_none() {
        let exec = Executor::reference();
        let a = system(&exec, 5);
        let cfg = Config::map()
            .with("type", "solver::Cg")
            .with("preconditioner", Config::Null);
        assert!(config_solve(a, &cfg).is_ok());
    }
}
