//! From-scratch JSON parser and serializer for [`Config`] trees.
//!
//! Implements RFC 8259 minus arbitrary-precision numbers (integers that fit
//! `i64` stay integers; everything else becomes `f64`). Written here rather
//! than pulling a dependency because the config format is part of the system
//! under reproduction (paper §5 discusses the JSON entry point explicitly).

use crate::base::error::{GkoError, Result};
use crate::config::Config;
use std::collections::BTreeMap;

/// Serializes a config tree to compact JSON.
pub fn to_string(config: &Config) -> String {
    let mut out = String::new();
    write_value(config, &mut out);
    out
}

/// Serializes a config tree to indented JSON (2-space indent), for
/// human-diffable committed artifacts like the benchmark result files.
pub fn to_string_pretty(config: &Config) -> String {
    let mut out = String::new();
    write_value_pretty(config, &mut out, 0);
    out.push('\n');
    out
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value_pretty(config: &Config, out: &mut String, depth: usize) {
    match config {
        Config::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                write_indent(out, depth + 1);
                write_value_pretty(item, out, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push(']');
        }
        Config::Map(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                write_indent(out, depth + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(v, out, depth + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn write_value(config: &Config, out: &mut String) {
    match config {
        Config::Null => out.push_str("null"),
        Config::Bool(true) => out.push_str("true"),
        Config::Bool(false) => out.push_str("false"),
        Config::Int(v) => out.push_str(&v.to_string()),
        Config::Float(v) => {
            if v.is_finite() {
                let s = format!("{v:?}"); // Debug always keeps a decimal point
                out.push_str(&s);
            } else {
                // JSON has no Inf/NaN; serialize as null like Python's
                // json.dumps(allow_nan=False) alternative behaviour.
                out.push_str("null");
            }
        }
        Config::Str(s) => write_string(s, out),
        Config::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Config::Map(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a config tree.
pub fn parse(text: &str) -> Result<Config> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> GkoError {
        GkoError::InvalidConfig(format!("JSON error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Config> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Config::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal(b"true", Config::Bool(true)),
            Some(b'f') => self.parse_literal(b"false", Config::Bool(false)),
            Some(b'n') => self.parse_literal(b"null", Config::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &[u8], value: Config) -> Result<Config> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn parse_object(&mut self) -> Result<Config> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Config::Map(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Config::Map(map)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Config> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Config::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Config::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pair handling.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.error("unexpected low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                        }
                    }
                    _ => return Err(self.error("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(c) => {
                    // Reassemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.error("invalid UTF-8")),
                        };
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.error("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.error("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            v = v * 16 + digit;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Config> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Config::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Config::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing_2_style_document() {
        let doc = r#"{
            "type": "solver::Gmres",
            "krylov_dim": 30,
            "preconditioner": {"type": "preconditioner::Jacobi", "max_block_size": 1},
            "criteria": [
                {"type": "Iteration", "max_iters": 1000},
                {"type": "ResidualNorm", "reduction_factor": 1e-06}
            ]
        }"#;
        let cfg = parse(doc).unwrap();
        assert_eq!(cfg.get("type").unwrap().as_str(), Some("solver::Gmres"));
        assert_eq!(cfg.get("krylov_dim").unwrap().as_int(), Some(30));
        let crit = cfg.get("criteria").unwrap().as_array().unwrap();
        assert_eq!(
            crit[1].get("reduction_factor").unwrap().as_float(),
            Some(1e-6)
        );
    }

    #[test]
    fn pretty_roundtrip_preserves_structure() {
        let doc = r#"{"a":[1,2.5,true,null,"s"],"b":{"c":-7},"empty":[],"none":{}}"#;
        let cfg = parse(doc).unwrap();
        let pretty = to_string_pretty(&cfg);
        assert!(pretty.contains("\n  \"a\": [\n"), "{pretty}");
        assert_eq!(parse(&pretty).unwrap(), cfg);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let doc = r#"{"a":[1,2.5,true,false,null,"s"],"b":{"c":-7}}"#;
        let cfg = parse(doc).unwrap();
        let again = parse(&to_string(&cfg)).unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let cfg = Config::Str("line\nquote\"back\\slash\ttab\u{1F600}".into());
        let json = to_string(&cfg);
        assert_eq!(parse(&json).unwrap(), cfg);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            parse(r#""é😀""#).unwrap(),
            Config::Str("é😀".into())
        );
    }

    #[test]
    fn integers_stay_integers() {
        assert_eq!(parse("42").unwrap(), Config::Int(42));
        assert_eq!(parse("-42").unwrap(), Config::Int(-42));
        assert_eq!(parse("42.0").unwrap(), Config::Float(42.0));
        assert_eq!(parse("1e3").unwrap(), Config::Float(1000.0));
        // Integer overflowing i64 degrades to float.
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Config::Float(_)
        ));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "01x",
            "{\"a\":1} trailing",
            "\"bad \\q escape\"",
            "\"\\ud800\"", // unpaired surrogate
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn nested_depth_and_empty_containers() {
        assert_eq!(parse("[]").unwrap(), Config::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Config::map());
        let deep = parse("[[[[[1]]]]]").unwrap();
        assert_eq!(to_string(&deep), "[[[[[1]]]]]");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&Config::Float(f64::NAN)), "null");
        assert_eq!(to_string(&Config::Float(f64::INFINITY)), "null");
    }
}
