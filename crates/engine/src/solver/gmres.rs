//! Restarted GMRES with Givens rotations.
//!
//! This follows Ginkgo's algorithmic choices, which §6.2.1 of the paper
//! contrasts with CuPy's:
//!
//! * the Hessenberg least-squares problem is updated *incrementally* with
//!   Givens rotations (CuPy instead re-solves with an orthonormal projection
//!   at the end of the restart cycle);
//! * the residual norm estimate `|g[j+1]|` is checked after *every*
//!   Hessenberg update (CuPy checks only after the restart cycle completes),
//!   costing `restart - 1` extra checks per cycle;
//! * the small Hessenberg/rotation updates run on the *device* (charged as
//!   small kernel launches here), whereas CuPy runs them on the CPU.
//!
//! Preconditioning is applied from the right (`A M^{-1} y = b`, `x = M^{-1}
//! y`), so the monitored residual is the true residual.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::Value;
use crate::executor::Executor;
use crate::linop::LinOp;
use crate::log::{ConvergenceLogger, Logger, OpTimer};
use crate::matrix::dense::Dense;
use crate::solver::SolverCore;
use crate::stop::{Criteria, StopReason};
use pygko_sim::ChunkWork;
use std::sync::Arc;

/// Default Krylov subspace dimension (the paper's GMRES restart of 30).
pub const DEFAULT_KRYLOV_DIM: usize = 30;

/// The restarted GMRES solver.
pub struct Gmres<V: Value> {
    core: SolverCore<V>,
    krylov_dim: usize,
}

impl<V: Value> Gmres<V> {
    /// Creates a GMRES solver for the given system operator.
    pub fn new(system: Arc<dyn LinOp<V>>) -> Result<Self> {
        Ok(Gmres {
            core: SolverCore::new("solver::Gmres", system)?,
            krylov_dim: DEFAULT_KRYLOV_DIM,
        })
    }

    /// Attaches a logger observing this solver's iteration events.
    pub fn with_logger(self, logger: Arc<dyn Logger>) -> Self {
        self.core.add_logger(logger);
        self
    }

    /// Attaches a logger without consuming the solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.add_logger(logger);
    }

    /// Sets the Krylov subspace dimension (restart length).
    pub fn with_krylov_dim(mut self, dim: usize) -> Self {
        assert!(dim > 0, "krylov dimension must be positive");
        self.krylov_dim = dim;
        self
    }

    /// Sets the preconditioner (applied from the right).
    pub fn with_preconditioner(mut self, precond: Arc<dyn LinOp<V>>) -> Result<Self> {
        self.core.set_preconditioner(precond)?;
        Ok(self)
    }

    /// Sets the stopping criteria.
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// The configured restart length.
    pub fn krylov_dim(&self) -> usize {
        self.krylov_dim
    }

    /// The logger recording residual history.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.core.logger
    }

    /// Charges the device-side Hessenberg/Givens update (tiny kernels whose
    /// cost is launch-overhead dominated — the structural reason CuPy's
    /// CPU-side update can win on small problems), plus the per-iteration
    /// residual check's device-to-host flag transfer (the `restart - 1`
    /// extra checks §6.2.1 attributes to Ginkgo).
    fn charge_hessenberg_update(&self, exec: &Executor, cols: usize) {
        let tiny = ChunkWork::new((cols * 16) as f64, 0.0, (cols * 6) as f64);
        // rotation apply + new rotation + residual update
        exec.launch(&[tiny]);
        exec.launch(&[ChunkWork::new(32.0, 0.0, 10.0)]);
        exec.launch(&[ChunkWork::new(16.0, 0.0, 4.0)]);
        // Stopping-criterion flag readback.
        let t = exec.spec().copy_time_ns(8);
        exec.timeline().charge_copy(t, 8);
    }

    /// Charges the two fused multidot/update kernels of one MGS sweep over
    /// a basis of `cols` vectors of length `n`.
    fn charge_fused_mgs(&self, exec: &Executor, n: usize, cols: usize) {
        let spec = exec.spec();
        let per_chunk = |total_bytes: f64, flops: f64, chunks: usize| -> Vec<ChunkWork> {
            (0..chunks)
                .map(|_| {
                    ChunkWork::new(
                        total_bytes / chunks as f64,
                        0.0,
                        flops / chunks as f64,
                    )
                })
                .collect()
        };
        let chunks = spec.workers.min(n.max(1));
        let bytes = (cols * n * V::BYTES) as f64 + (n * V::BYTES) as f64;
        let flops = (2 * cols * n) as f64;
        exec.launch(&per_chunk(bytes, flops, chunks)); // multidot sweep
        exec.launch(&per_chunk(bytes, flops, chunks)); // fused update sweep
    }

    /// Forms `x += M^{-1} (V[..cols] * y)` from the Krylov basis.
    fn update_solution(
        &self,
        basis: &[Dense<V>],
        y: &[f64],
        cols: usize,
        x: &mut Dense<V>,
    ) -> Result<()> {
        let exec = x.executor().clone();
        let mut u = Dense::zeros(&exec, x.size());
        for (i, yi) in y.iter().take(cols).enumerate() {
            u.add_scaled(V::from_f64(*yi), &basis[i])?;
        }
        let mut z = Dense::zeros(&exec, x.size());
        self.core.precond.apply(&u, &mut z)?;
        x.add_scaled(V::one(), &z)?;
        Ok(())
    }
}

/// Solves the upper-triangular system `R y = g` in place (R is the rotated
/// Hessenberg matrix, column-major `h[j][i]`).
fn back_substitute(h: &[Vec<f64>], g: &[f64], cols: usize) -> Vec<f64> {
    let mut y = vec![0.0f64; cols];
    for j in (0..cols).rev() {
        let mut acc = g[j];
        for (k, yk) in y.iter().enumerate().take(cols).skip(j + 1) {
            acc -= h[k][j] * yk;
        }
        y[j] = if h[j][j] != 0.0 { acc / h[j][j] } else { 0.0 };
    }
    y
}

impl<V: Value> LinOp<V> for Gmres<V> {
    fn size(&self) -> Dim2 {
        self.core.system.size()
    }

    fn executor(&self) -> &Executor {
        self.core.system.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        let core = &self.core;
        core.check_vectors(b, x)?;
        let exec = x.executor().clone();
        let _solve_timer = OpTimer::new(&exec, self.op_name());
        let n = self.size().rows;
        let dim = Dim2::new(n, 1);
        let m = self.krylov_dim;

        let mut r = Dense::zeros(&exec, dim);
        core.residual(b, x, &mut r)?;
        let baseline = r.compute_norm2();
        core.logger.begin(baseline);
        if let Some(reason) = core.check(0, baseline, baseline) {
            core.logger.finish(0, reason);
            return Ok(());
        }

        let mut total_iters = 0usize;
        'outer: loop {
            core.residual(b, x, &mut r)?;
            let beta = r.compute_norm2();
            if let Some(reason) = core.check(total_iters, beta, baseline) {
                core.logger.finish(total_iters, reason);
                return Ok(());
            }
            // A non-finite beta already stopped above (check reports
            // Breakdown); an exactly-zero one cannot seed the basis.
            if beta == 0.0 {
                core.logger.finish(total_iters, StopReason::Breakdown);
                return Ok(());
            }

            // v0 = r / beta
            let mut basis: Vec<Dense<V>> = Vec::with_capacity(m + 1);
            let mut v0 = r.clone();
            v0.scale(V::from_f64(1.0 / beta));
            basis.push(v0);

            // Column-major Hessenberg `h[j]` holds column j (len j+2), plus
            // Givens rotation coefficients and the residual vector g.
            let mut h: Vec<Vec<f64>> = Vec::with_capacity(m);
            let mut cs = vec![0.0f64; m];
            let mut sn = vec![0.0f64; m];
            let mut g = vec![0.0f64; m + 1];
            g[0] = beta;

            let mut z = Dense::zeros(&exec, dim);
            let mut w = Dense::zeros(&exec, dim);

            for j in 0..m {
                total_iters += 1;
                // w = A M^{-1} v_j
                core.precond.apply(&basis[j], &mut z)?;
                core.system.apply(&z, &mut w)?;

                // Modified Gram–Schmidt orthogonalization. Ginkgo fuses
                // this into two "multidot"-style kernels (one sweep reading
                // the whole basis for coefficients, one for the update), so
                // the cost model charges two basis-sized launches rather
                // than 2(j+1) vector ops.
                let mut col = vec![0.0f64; j + 2];
                {
                    let ws = w.as_mut_slice();
                    for (i, vi) in basis.iter().enumerate().take(j + 1) {
                        let vs = vi.as_slice();
                        let mut hij = 0.0f64;
                        for (wk, vk) in ws.iter().zip(vs) {
                            hij += wk.to_f64() * vk.to_f64();
                        }
                        col[i] = hij;
                        let coeff = V::from_f64(-hij);
                        for (wk, &vk) in ws.iter_mut().zip(vs) {
                            *wk += coeff * vk;
                        }
                    }
                    self.charge_fused_mgs(&exec, n, j + 1);
                }
                let h_next = w.compute_norm2();
                col[j + 1] = h_next;

                // Apply the accumulated Givens rotations to the new column,
                // then generate the rotation that annihilates col[j+1].
                for i in 0..j {
                    let t = cs[i] * col[i] + sn[i] * col[i + 1];
                    col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1];
                    col[i] = t;
                }
                let denom = (col[j] * col[j] + col[j + 1] * col[j + 1]).sqrt();
                if denom == 0.0 || !denom.is_finite() {
                    // The iteration aborted before its residual check, so it
                    // does not count as completed (engine-wide convention,
                    // see `SolveRecord::iterations`).
                    core.logger.finish(total_iters - 1, StopReason::Breakdown);
                    return Ok(());
                }
                cs[j] = col[j] / denom;
                sn[j] = col[j + 1] / denom;
                col[j] = denom;
                col[j + 1] = 0.0;
                g[j + 1] = -sn[j] * g[j];
                g[j] *= cs[j];
                h.push(col);
                self.charge_hessenberg_update(&exec, j + 1);

                // Per-iteration residual estimate and check (Ginkgo's extra
                // `restart - 1` checks relative to CuPy).
                let res_est = g[j + 1].abs();
                core.logger.record_residual(total_iters, res_est);
                if let Some(reason) = core.check(total_iters, res_est, baseline) {
                    let y = back_substitute(&h, &g, j + 1);
                    self.update_solution(&basis, &y, j + 1, x)?;
                    core.logger.finish(total_iters, reason);
                    return Ok(());
                }

                if h_next == 0.0 {
                    // Lucky breakdown: exact solution in the current space.
                    let y = back_substitute(&h, &g, j + 1);
                    self.update_solution(&basis, &y, j + 1, x)?;
                    core.logger.finish(total_iters, StopReason::ResidualReduction);
                    return Ok(());
                }
                let mut v_next = w.clone();
                v_next.scale(V::from_f64(1.0 / h_next));
                basis.push(v_next);

                if total_iters >= core.criteria.max_iters {
                    let y = back_substitute(&h, &g, j + 1);
                    self.update_solution(&basis, &y, j + 1, x)?;
                    core.logger.finish(total_iters, StopReason::MaxIterations);
                    return Ok(());
                }
            }

            // Restart: fold the cycle into x and continue.
            let y = back_substitute(&h, &g, m);
            self.update_solution(&basis, &y, m, x)?;
            if total_iters >= core.criteria.max_iters {
                core.logger.finish(total_iters, StopReason::MaxIterations);
                return Ok(());
            }
            continue 'outer;
        }
    }

    fn op_name(&self) -> &'static str {
        "solver::Gmres"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::csr::Csr;

    fn unsymmetric(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.8));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.7));
            }
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    fn true_residual(a: &Csr<f64, i32>, b: &Dense<f64>, x: &Dense<f64>) -> f64 {
        let exec = b.executor();
        let mut r = Dense::zeros(exec, b.size());
        r.copy_from(b).unwrap();
        a.apply_advanced(-1.0, x, 1.0, &mut r).unwrap();
        r.compute_norm2()
    }

    #[test]
    fn solves_within_one_restart() {
        let exec = Executor::reference();
        let a = unsymmetric(&exec, 40);
        let solver = Gmres::new(a.clone())
            .unwrap()
            .with_krylov_dim(50)
            .with_criteria(Criteria::iterations_and_reduction(200, 1e-10));
        let b = Dense::<f64>::vector(&exec, 40, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 40, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert!(solver.logger().snapshot().converged());
        assert!(true_residual(&a, &b, &x) < 1e-7);
    }

    #[test]
    fn solves_across_restarts() {
        let exec = Executor::reference();
        let a = unsymmetric(&exec, 120);
        let solver = Gmres::new(a.clone())
            .unwrap()
            .with_krylov_dim(10) // force several restarts
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let b = Dense::<f64>::vector(&exec, 120, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 120, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(rec.converged(), "{:?}", rec.stop_reason);
        assert!(rec.iterations > 10, "restarts happened: {}", rec.iterations);
        assert!(true_residual(&a, &b, &x) < 1e-6);
    }

    #[test]
    fn residual_estimate_matches_true_residual() {
        let exec = Executor::reference();
        let a = unsymmetric(&exec, 30);
        let solver = Gmres::new(a.clone())
            .unwrap()
            .with_krylov_dim(30)
            .with_criteria(Criteria::iterations_and_reduction(30, 1e-9));
        let b = Dense::<f64>::vector(&exec, 30, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 30, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        let true_res = true_residual(&a, &b, &x);
        assert!(
            (rec.final_residual - true_res).abs() <= 1e-6 * (1.0 + true_res),
            "estimate {} vs true {true_res}",
            rec.final_residual
        );
    }

    #[test]
    fn iteration_cap_mid_cycle_still_updates_x() {
        let exec = Executor::reference();
        let a = unsymmetric(&exec, 60);
        let solver = Gmres::new(a.clone())
            .unwrap()
            .with_krylov_dim(30)
            .with_criteria(Criteria::iterations(7));
        let b = Dense::<f64>::vector(&exec, 60, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 60, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert_eq!(rec.iterations, 7);
        // x must contain the partial solution, not the initial guess.
        assert!(true_residual(&a, &b, &x) < rec.initial_residual);
    }

    #[test]
    fn per_iteration_residual_checks_are_recorded() {
        let exec = Executor::reference();
        let a = unsymmetric(&exec, 50);
        let solver = Gmres::new(a)
            .unwrap()
            .with_krylov_dim(30)
            .with_criteria(Criteria::iterations(12));
        let b = Dense::<f64>::vector(&exec, 50, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 50, 0.0);
        solver.apply(&b, &mut x).unwrap();
        // One residual record per inner iteration — Ginkgo's behaviour.
        assert_eq!(solver.logger().snapshot().residual_history.len(), 12);
    }

    #[test]
    fn right_preconditioning_preserves_true_residual_semantics() {
        use crate::preconditioner::jacobi::Jacobi;
        let exec = Executor::reference();
        let n = 50;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 3.0 + (i % 5) as f64 * 8.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let solver = Gmres::new(a.clone())
            .unwrap()
            .with_preconditioner(Arc::new(Jacobi::new(&*a).unwrap()))
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(300, 1e-10));
        let b = Dense::<f64>::vector(&exec, n, 1.0);
        let mut x = Dense::<f64>::vector(&exec, n, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(rec.converged());
        let tr = true_residual(&a, &b, &x);
        assert!(tr <= 1e-6 * rec.initial_residual * 10.0, "true residual {tr}");
    }

    #[test]
    fn gmres_launches_more_kernels_per_iteration_than_cg() {
        // Structural check behind §6.2.1: Ginkgo's GMRES does its small
        // Hessenberg updates on the device, adding launches.
        let exec = Executor::cuda(0);
        let a = unsymmetric(&exec, 64);
        let b = Dense::<f64>::vector(&exec, 64, 1.0);

        let gmres = Gmres::new(a.clone()).unwrap().with_criteria(Criteria::iterations(10));
        let mut x = Dense::<f64>::vector(&exec, 64, 0.0);
        let before = exec.timeline().snapshot();
        gmres.apply(&b, &mut x).unwrap();
        let gmres_kernels = exec.timeline().snapshot().since(&before).kernels;

        let cg = crate::solver::cg::Cg::new(a).unwrap().with_criteria(Criteria::iterations(10));
        let mut x2 = Dense::<f64>::vector(&exec, 64, 0.0);
        let before = exec.timeline().snapshot();
        cg.apply(&b, &mut x2).unwrap();
        let cg_kernels = exec.timeline().snapshot().since(&before).kernels;

        assert!(
            gmres_kernels > cg_kernels,
            "gmres {gmres_kernels} vs cg {cg_kernels}"
        );
    }
}
