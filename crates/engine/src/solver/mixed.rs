//! Mixed-precision iterative refinement.
//!
//! Ginkgo's headline mixed-precision capability (the reason its templates
//! cross value types, §5.1): solve the correction equation in a cheap low
//! precision, accumulate the solution and residual in high precision. The
//! classic result is fp64 accuracy at close to fp32 kernel cost for
//! well-conditioned systems.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::{Index, Value};
use crate::executor::Executor;
use crate::linop::LinOp;
use crate::log::{ConvergenceLogger, Event, Logger, LoggerRegistry, OpTimer};
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use crate::solver::cg::Cg;
use crate::stop::{Criteria, StopReason};
use std::sync::Arc;

/// Iterative refinement with a high-precision (`VO`) outer loop and a
/// low-precision (`VI`) inner CG correction solver.
pub struct MixedIr<VO: Value, VI: Value, Idx: Index = i32> {
    outer: Arc<Csr<VO, Idx>>,
    inner: Arc<Csr<VI, Idx>>,
    inner_iters: usize,
    criteria: Criteria,
    logger: ConvergenceLogger,
    events: LoggerRegistry,
    exec_events: LoggerRegistry,
}

impl<VO: Value, VI: Value, Idx: Index> MixedIr<VO, VI, Idx> {
    /// Builds the refinement solver; the matrix is converted to `VI` once
    /// for the inner solves.
    pub fn new(matrix: Arc<Csr<VO, Idx>>) -> Result<Self> {
        let exec = matrix.executor();
        let low_triplets: Vec<(usize, usize, VI)> = {
            let rp = matrix.row_ptrs();
            let ci = matrix.col_idxs();
            let vals = matrix.values();
            let mut t = Vec::with_capacity(matrix.nnz());
            for r in 0..matrix.size().rows {
                for k in rp[r].to_usize()..rp[r + 1].to_usize() {
                    t.push((r, ci[k].to_usize(), VI::from_f64(vals[k].to_f64())));
                }
            }
            t
        };
        let inner = Arc::new(Csr::<VI, Idx>::from_triplets(
            exec,
            matrix.size(),
            &low_triplets,
        )?);
        let events = LoggerRegistry::new();
        let exec_events = exec.loggers().clone();
        let logger = ConvergenceLogger::new();
        logger.bind_events("solver::MixedIr", events.clone());
        logger.bind_events("solver::MixedIr", exec_events.clone());
        Ok(MixedIr {
            outer: matrix,
            inner,
            inner_iters: 10,
            criteria: Criteria::default(),
            logger,
            events,
            exec_events,
        })
    }

    /// Attaches a logger observing this solver's outer iteration events.
    pub fn with_logger(self, logger: Arc<dyn Logger>) -> Self {
        self.events.add(logger);
        self
    }

    /// Attaches a logger without consuming the solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.events.add(logger);
    }

    /// Criteria check that also emits [`Event::CriterionChecked`].
    fn check(&self, iters_done: usize, res_norm: f64, baseline: f64) -> Option<StopReason> {
        let stop = self.criteria.check(iters_done, res_norm, baseline);
        if self.events.is_active() || self.exec_events.is_active() {
            let event = Event::CriterionChecked {
                solver: "solver::MixedIr",
                iteration: iters_done,
                residual: res_norm,
                stop,
            };
            self.events.log(&event);
            self.exec_events.log(&event);
        }
        stop
    }

    /// Sets the inner CG iteration budget per refinement step.
    pub fn with_inner_iterations(mut self, iters: usize) -> Self {
        self.inner_iters = iters.max(1);
        self
    }

    /// Sets the outer stopping criteria.
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.criteria = criteria;
        self
    }

    /// The logger recording outer residual history.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.logger
    }
}

impl<VO: Value, VI: Value, Idx: Index> LinOp<VO> for MixedIr<VO, VI, Idx> {
    fn size(&self) -> Dim2 {
        self.outer.size()
    }

    fn executor(&self) -> &Executor {
        self.outer.executor()
    }

    fn apply(&self, b: &Dense<VO>, x: &mut Dense<VO>) -> Result<()> {
        let exec = x.executor().clone();
        let _solve_timer = OpTimer::new(&exec, self.op_name());
        let n = self.size().rows;
        let dim = Dim2::new(n, 1);
        let mut r = Dense::<VO>::zeros(&exec, dim);

        // Outer residual in high precision.
        r.copy_from(b)?;
        self.outer
            .apply_advanced(VO::from_f64(-1.0), x, VO::one(), &mut r)?;
        let baseline = r.compute_norm2();
        self.logger.begin(baseline);
        if let Some(reason) = self.check(0, baseline, baseline) {
            self.logger.finish(0, reason);
            return Ok(());
        }

        let mut iter = 0usize;
        let mut res_norm = baseline;
        loop {
            iter += 1;
            // Normalize the residual before downcasting so a tiny late-stage
            // residual does not underflow the low precision's range (the
            // standard IR scaling trick; essential for half).
            let scale = if res_norm > 0.0 { 1.0 / res_norm } else { 1.0 };
            let mut r_scaled = r.clone();
            r_scaled.scale(VO::from_f64(scale));
            let r_lo: Dense<VI> = r_scaled.cast();
            let mut d_lo = Dense::<VI>::zeros(&exec, dim);
            let inner = Cg::new(self.inner.clone() as Arc<dyn LinOp<VI>>)?
                .with_criteria(Criteria::iterations_and_reduction(
                    self.inner_iters,
                    VI::eps(),
                ));
            inner.apply(&r_lo, &mut d_lo)?;

            // Upcast, undo the scaling, and accumulate in high precision.
            let d: Dense<VO> = d_lo.cast();
            x.add_scaled(VO::from_f64(1.0 / scale), &d)?;

            r.copy_from(b)?;
            self.outer
                .apply_advanced(VO::from_f64(-1.0), x, VO::one(), &mut r)?;
            res_norm = r.compute_norm2();
            self.logger.record_residual(iter, res_norm);
            // A non-finite residual stops here too: `check` reports it as
            // Breakdown (the update already happened, so iter is counted).
            if let Some(reason) = self.check(iter, res_norm, baseline) {
                self.logger.finish(iter, reason);
                return Ok(());
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "solver::MixedIr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygko_half::Half;

    fn spd(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    #[test]
    fn f32_inner_reaches_f64_accuracy() {
        let exec = Executor::reference();
        let a = spd(&exec, 60);
        let solver = MixedIr::<f64, f32>::new(a.clone())
            .unwrap()
            .with_inner_iterations(20)
            .with_criteria(Criteria::iterations_and_reduction(100, 1e-12));
        let b = Dense::<f64>::vector(&exec, 60, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 60, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(rec.converged(), "{:?}", rec.stop_reason);
        // Beyond single precision: the refinement loop must push the
        // residual below what one f32 solve could reach.
        assert!(
            rec.final_residual < 1e-10 * rec.initial_residual,
            "reduction {}",
            rec.reduction()
        );
    }

    #[test]
    fn half_inner_still_refines() {
        let exec = Executor::reference();
        let a = spd(&exec, 24);
        let solver = MixedIr::<f64, Half>::new(a.clone())
            .unwrap()
            .with_inner_iterations(8)
            .with_criteria(Criteria::iterations_and_reduction(200, 1e-8));
        let b = Dense::<f64>::vector(&exec, 24, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 24, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(
            rec.converged(),
            "half-precision inner solves should still refine: {:?} (reduction {})",
            rec.stop_reason,
            rec.reduction()
        );
    }

    #[test]
    fn outer_iterations_shrink_with_more_inner_work() {
        let exec = Executor::reference();
        let a = spd(&exec, 48);
        let b = Dense::<f64>::vector(&exec, 48, 1.0);
        let mut outer_counts = Vec::new();
        for inner in [3usize, 30] {
            let solver = MixedIr::<f64, f32>::new(a.clone())
                .unwrap()
                .with_inner_iterations(inner)
                .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
            let mut x = Dense::<f64>::vector(&exec, 48, 0.0);
            solver.apply(&b, &mut x).unwrap();
            outer_counts.push(solver.logger().snapshot().iterations);
        }
        assert!(
            outer_counts[1] < outer_counts[0],
            "more inner work -> fewer outer sweeps: {outer_counts:?}"
        );
    }
}
