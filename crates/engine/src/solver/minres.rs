//! MINRES (Paige & Saunders 1975) for symmetric, possibly indefinite
//! systems — one of the CuPy solvers the paper's §6.2.1 enumerates, provided
//! here for solver-set parity.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::Value;
use crate::executor::Executor;
use crate::linop::LinOp;
use crate::log::{ConvergenceLogger, Logger, OpTimer};
use crate::matrix::dense::Dense;
use crate::solver::SolverCore;
use crate::stop::{Criteria, StopReason};
use std::sync::Arc;

/// The MINRES solver (unpreconditioned Lanczos with on-the-fly Givens QR).
pub struct Minres<V: Value> {
    core: SolverCore<V>,
}

impl<V: Value> Minres<V> {
    /// Creates a MINRES solver for the given symmetric system operator.
    pub fn new(system: Arc<dyn LinOp<V>>) -> Result<Self> {
        Ok(Minres {
            core: SolverCore::new("solver::Minres", system)?,
        })
    }

    /// Attaches a logger observing this solver's iteration events.
    pub fn with_logger(self, logger: Arc<dyn Logger>) -> Self {
        self.core.add_logger(logger);
        self
    }

    /// Attaches a logger without consuming the solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.add_logger(logger);
    }

    /// Sets the stopping criteria.
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// The logger recording residual history.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.core.logger
    }
}

impl<V: Value> LinOp<V> for Minres<V> {
    fn size(&self) -> Dim2 {
        self.core.system.size()
    }

    fn executor(&self) -> &Executor {
        self.core.system.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        let core = &self.core;
        core.check_vectors(b, x)?;
        let exec = x.executor().clone();
        let _solve_timer = OpTimer::new(&exec, self.op_name());
        let n = self.size().rows;
        let dim = Dim2::new(n, 1);

        // r0 = b - A x; v1 = r0 / beta1.
        let mut v = Dense::zeros(&exec, dim);
        core.residual(b, x, &mut v)?;
        let beta1 = v.compute_norm2();
        core.logger.begin(beta1);
        if let Some(reason) = core.check(0, beta1, beta1) {
            core.logger.finish(0, reason);
            return Ok(());
        }
        // Non-finite beta1 already stopped above (check reports Breakdown);
        // an exactly-zero residual cannot seed the Lanczos process.
        if beta1 == 0.0 {
            core.logger.finish(0, StopReason::Breakdown);
            return Ok(());
        }
        v.scale(V::from_f64(1.0 / beta1));

        let mut v_old = Dense::zeros(&exec, dim);
        let mut av = Dense::zeros(&exec, dim);
        let mut w = Dense::zeros(&exec, dim);
        let mut w_old = Dense::zeros(&exec, dim);
        let mut w_new = Dense::zeros(&exec, dim);

        let mut beta = beta1;
        let mut eta = beta1;
        let (mut gamma0, mut gamma1) = (1.0f64, 1.0f64);
        let (mut sigma0, mut sigma1) = (0.0f64, 0.0f64);

        let mut iter = 0usize;
        loop {
            iter += 1;
            // Lanczos step: alpha, next v.
            core.system.apply(&v, &mut av)?;
            let alpha = v.compute_dot(&av)?;
            av.add_scaled(V::from_f64(-alpha), &v)?;
            av.add_scaled(V::from_f64(-beta), &v_old)?;
            let beta_new = av.compute_norm2();

            // Givens QR of the tridiagonal's new column.
            let delta = gamma1 * alpha - gamma0 * sigma1 * beta;
            let rho1 = (delta * delta + beta_new * beta_new).sqrt();
            let rho2 = sigma1 * alpha + gamma0 * gamma1 * beta;
            let rho3 = sigma0 * beta;
            if rho1 == 0.0 || !rho1.is_finite() {
                core.logger.finish(iter - 1, StopReason::Breakdown);
                return Ok(());
            }
            let gamma_new = delta / rho1;
            let sigma_new = beta_new / rho1;

            // Solution direction: w_new = (v - rho3 w_old - rho2 w) / rho1.
            w_new.copy_from(&v)?;
            w_new.add_scaled(V::from_f64(-rho3), &w_old)?;
            w_new.add_scaled(V::from_f64(-rho2), &w)?;
            w_new.scale(V::from_f64(1.0 / rho1));
            x.add_scaled(V::from_f64(gamma_new * eta), &w_new)?;
            eta *= -sigma_new;

            // Shift registers.
            std::mem::swap(&mut w_old, &mut w);
            std::mem::swap(&mut w, &mut w_new);
            std::mem::swap(&mut v_old, &mut v);
            std::mem::swap(&mut v, &mut av);
            if beta_new > 0.0 {
                v.scale(V::from_f64(1.0 / beta_new));
            }
            gamma0 = gamma1;
            gamma1 = gamma_new;
            sigma0 = sigma1;
            sigma1 = sigma_new;
            beta = beta_new;

            let res_est = eta.abs();
            core.logger.record_residual(iter, res_est);
            if let Some(reason) = core.check(iter, res_est, beta1) {
                core.logger.finish(iter, reason);
                return Ok(());
            }
            if beta_new == 0.0 {
                core.logger.finish(iter, StopReason::ResidualReduction);
                return Ok(());
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "solver::Minres"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::csr::Csr;

    fn residual(a: &Csr<f64, i32>, b: &Dense<f64>, x: &Dense<f64>) -> f64 {
        let exec = b.executor();
        let mut r = Dense::zeros(exec, b.size());
        r.copy_from(b).unwrap();
        a.apply_advanced(-1.0, x, 1.0, &mut r).unwrap();
        r.compute_norm2()
    }

    #[test]
    fn solves_spd_system() {
        let exec = Executor::reference();
        let n = 50;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let solver = Minres::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let b = Dense::<f64>::vector(&exec, n, 1.0);
        let mut x = Dense::<f64>::vector(&exec, n, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert!(solver.logger().snapshot().converged());
        assert!(residual(&a, &b, &x) < 1e-7);
    }

    #[test]
    fn solves_symmetric_indefinite_system_where_cg_breaks() {
        // Saddle-point-like matrix: symmetric with positive and negative
        // eigenvalues. CG's theory does not apply; MINRES handles it.
        let exec = Executor::reference();
        let n = 40;
        let mut t = vec![];
        for i in 0..n {
            let sign = if i < n / 2 { 1.0 } else { -1.0 };
            t.push((i, i, sign * (2.0 + (i % 3) as f64)));
            if i > 0 {
                t.push((i, i - 1, 0.3));
                t.push((i - 1, i, 0.3));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let solver = Minres::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(2000, 1e-9));
        let b = Dense::<f64>::vector(&exec, n, 1.0);
        let mut x = Dense::<f64>::vector(&exec, n, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(rec.converged(), "{:?}", rec.stop_reason);
        assert!(residual(&a, &b, &x) < 1e-6, "residual {}", residual(&a, &b, &x));
    }

    #[test]
    fn residual_estimate_tracks_true_residual() {
        let exec = Executor::reference();
        let n = 30;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 3.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let solver = Minres::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations(15));
        let b = Dense::<f64>::vector(&exec, n, 1.0);
        let mut x = Dense::<f64>::vector(&exec, n, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let est = solver.logger().snapshot().final_residual;
        let true_res = residual(&a, &b, &x);
        assert!(
            (est - true_res).abs() < 1e-8 * (1.0 + true_res),
            "estimate {est} vs true {true_res}"
        );
    }

    #[test]
    fn iteration_limit_respected() {
        let exec = Executor::reference();
        let t: Vec<(usize, usize, f64)> = (0..20).map(|i| (i, i, (i + 1) as f64)).collect();
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(20), &t).unwrap());
        let solver = Minres::new(a).unwrap().with_criteria(Criteria::iterations(5));
        let b = Dense::<f64>::vector(&exec, 20, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 20, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert_eq!(solver.logger().snapshot().iterations, 5);
    }
}
