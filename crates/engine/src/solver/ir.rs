//! Iterative refinement (preconditioned Richardson iteration).
//!
//! `x += omega * M^{-1} (b - A x)` — Ginkgo's `solver::Ir`. With an exact
//! inner solver as `M` this performs classical iterative refinement; with a
//! cheap preconditioner it is the Richardson method.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::Value;
use crate::executor::Executor;
use crate::linop::LinOp;
use crate::log::{ConvergenceLogger, Logger, OpTimer};
use crate::matrix::dense::Dense;
use crate::solver::SolverCore;
use crate::stop::Criteria;
use std::sync::Arc;

/// Richardson / iterative-refinement solver.
pub struct Ir<V: Value> {
    core: SolverCore<V>,
    omega: f64,
}

impl<V: Value> Ir<V> {
    /// Creates an IR solver with relaxation factor 1.
    pub fn new(system: Arc<dyn LinOp<V>>) -> Result<Self> {
        Ok(Ir {
            core: SolverCore::new("solver::Ir", system)?,
            omega: 1.0,
        })
    }

    /// Attaches a logger observing this solver's iteration events.
    pub fn with_logger(self, logger: Arc<dyn Logger>) -> Self {
        self.core.add_logger(logger);
        self
    }

    /// Attaches a logger without consuming the solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.add_logger(logger);
    }

    /// Sets the relaxation factor omega.
    pub fn with_relaxation(mut self, omega: f64) -> Self {
        self.omega = omega;
        self
    }

    /// Sets the inner solver / preconditioner.
    pub fn with_solver(mut self, inner: Arc<dyn LinOp<V>>) -> Result<Self> {
        self.core.set_preconditioner(inner)?;
        Ok(self)
    }

    /// Sets the stopping criteria.
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// The logger recording residual history.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.core.logger
    }
}

impl<V: Value> LinOp<V> for Ir<V> {
    fn size(&self) -> Dim2 {
        self.core.system.size()
    }

    fn executor(&self) -> &Executor {
        self.core.system.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        let core = &self.core;
        core.check_vectors(b, x)?;
        let exec = x.executor().clone();
        let _solve_timer = OpTimer::new(&exec, self.op_name());
        let dim = Dim2::new(self.size().rows, 1);
        let mut r = Dense::zeros(&exec, dim);
        let mut d = Dense::zeros(&exec, dim);

        core.residual(b, x, &mut r)?;
        let baseline = r.compute_norm2();
        core.logger.begin(baseline);
        if let Some(reason) = core.check(0, baseline, baseline) {
            core.logger.finish(0, reason);
            return Ok(());
        }

        let mut iter = 0usize;
        loop {
            iter += 1;
            core.precond.apply(&r, &mut d)?;
            x.add_scaled(V::from_f64(self.omega), &d)?;
            core.residual(b, x, &mut r)?;
            let res = r.compute_norm2();
            core.logger.record_residual(iter, res);
            if let Some(reason) = core.check(iter, res, baseline) {
                core.logger.finish(iter, reason);
                return Ok(());
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "solver::Ir"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::csr::Csr;
    use crate::preconditioner::jacobi::Jacobi;

    #[test]
    fn richardson_with_jacobi_converges_on_diagonally_dominant() {
        let exec = Executor::reference();
        let n = 40;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 10.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let solver = Ir::new(a.clone())
            .unwrap()
            .with_solver(Arc::new(Jacobi::new(&*a).unwrap()))
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let b = Dense::<f64>::vector(&exec, n, 1.0);
        let mut x = Dense::<f64>::vector(&exec, n, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert!(solver.logger().snapshot().converged());
    }

    #[test]
    fn plain_richardson_diverges_on_stiff_system_and_stops_at_limit() {
        let exec = Executor::reference();
        // Spectral radius of (I - A) > 1 for this A without damping.
        let a = Arc::new(
            Csr::<f64, i32>::from_triplets(
                &exec,
                Dim2::square(2),
                &[(0, 0, 5.0), (1, 1, 5.0)],
            )
            .unwrap(),
        );
        let solver = Ir::new(a).unwrap().with_criteria(Criteria::iterations(10));
        let b = Dense::<f64>::vector(&exec, 2, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 2, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(!rec.converged());
        assert_eq!(rec.iterations, 10);
    }

    #[test]
    fn relaxation_factor_controls_convergence() {
        let exec = Executor::reference();
        let a = Arc::new(
            Csr::<f64, i32>::from_triplets(
                &exec,
                Dim2::square(2),
                &[(0, 0, 1.5), (1, 1, 1.5)],
            )
            .unwrap(),
        );
        // omega = 2/3 makes (I - omega*A) = 0: converges in one step.
        let solver = Ir::new(a)
            .unwrap()
            .with_relaxation(2.0 / 3.0)
            .with_criteria(Criteria::iterations_and_reduction(50, 1e-12));
        let b = Dense::<f64>::vector(&exec, 2, 3.0);
        let mut x = Dense::<f64>::vector(&exec, 2, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert_eq!(solver.logger().snapshot().iterations, 1);
        assert!((x.at(0, 0) - 2.0).abs() < 1e-12);
    }
}
