//! Preconditioned Conjugate Gradient method.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::Value;
use crate::executor::Executor;
use crate::linop::LinOp;
use crate::log::{ConvergenceLogger, Logger, LoggerRegistry, OpTimer};
use crate::matrix::dense::Dense;
use crate::solver::SolverCore;
use crate::stop::{Criteria, StopReason};
use std::sync::Arc;

/// The Conjugate Gradient method for symmetric positive definite systems.
pub struct Cg<V: Value> {
    core: SolverCore<V>,
}

impl<V: Value> Cg<V> {
    /// Creates a CG solver for the given system operator.
    pub fn new(system: Arc<dyn LinOp<V>>) -> Result<Self> {
        Ok(Cg {
            core: SolverCore::new("solver::Cg", system)?,
        })
    }

    /// Attaches a logger observing this solver's iteration events.
    pub fn with_logger(self, logger: Arc<dyn Logger>) -> Self {
        self.core.add_logger(logger);
        self
    }

    /// Attaches a logger without consuming the solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.add_logger(logger);
    }

    /// The registry of loggers attached to this solver.
    pub fn loggers(&self) -> &LoggerRegistry {
        self.core.loggers()
    }

    /// Sets the preconditioner (applied as `z = M^{-1} r`).
    pub fn with_preconditioner(mut self, precond: Arc<dyn LinOp<V>>) -> Result<Self> {
        self.core.set_preconditioner(precond)?;
        Ok(self)
    }

    /// Sets the stopping criteria.
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// The logger recording residual history.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.core.logger
    }
}

impl<V: Value> LinOp<V> for Cg<V> {
    fn size(&self) -> Dim2 {
        self.core.system.size()
    }

    fn executor(&self) -> &Executor {
        self.core.system.executor()
    }

    /// Solves `A x = b`; `x` holds the initial guess on entry and the
    /// solution on exit.
    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        let core = &self.core;
        core.check_vectors(b, x)?;
        let exec = x.executor().clone();
        let _solve_timer = OpTimer::new(&exec, self.op_name());
        let n = self.size().rows;

        let mut r = Dense::zeros(&exec, Dim2::new(n, 1));
        core.residual(b, x, &mut r)?;
        let mut z = Dense::zeros(&exec, Dim2::new(n, 1));
        core.precond.apply(&r, &mut z)?;
        let mut p = z.clone();
        let mut q = Dense::zeros(&exec, Dim2::new(n, 1));

        let baseline = r.compute_norm2();
        core.logger.begin(baseline);
        if let Some(reason) = core.check(0, baseline, baseline) {
            core.logger.finish(0, reason);
            return Ok(());
        }

        let mut rho = r.compute_dot(&z)?;
        let mut iter = 0usize;
        loop {
            iter += 1;
            core.system.apply(&p, &mut q)?;
            let pq = p.compute_dot(&q)?;
            if pq == 0.0 || !pq.is_finite() || rho == 0.0 || !rho.is_finite() {
                core.logger.finish(iter - 1, StopReason::Breakdown);
                return Ok(());
            }
            let alpha = rho / pq;
            x.add_scaled(V::from_f64(alpha), &p)?;
            r.add_scaled(V::from_f64(-alpha), &q)?;

            let res_norm = r.compute_norm2();
            core.logger.record_residual(iter, res_norm);
            if let Some(reason) = core.check(iter, res_norm, baseline) {
                core.logger.finish(iter, reason);
                return Ok(());
            }

            core.precond.apply(&r, &mut z)?;
            let rho_new = r.compute_dot(&z)?;
            let beta = rho_new / rho;
            // p = z + beta * p
            p.scale_add(V::one(), &z, V::from_f64(beta))?;
            rho = rho_new;
        }
    }

    fn op_name(&self) -> &'static str {
        "solver::Cg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::csr::Csr;
    use crate::stop::Criteria;

    /// 1-D Poisson matrix (tridiagonal [-1, 2, -1]) — SPD.
    fn poisson(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    #[test]
    fn solves_poisson_to_tolerance() {
        let exec = Executor::reference();
        let a = poisson(&exec, 64);
        let solver = Cg::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(1000, 1e-10));
        let b = Dense::<f64>::vector(&exec, 64, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 64, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(rec.converged(), "stop reason {:?}", rec.stop_reason);
        // Check the actual residual.
        let mut r = Dense::zeros(&exec, Dim2::new(64, 1));
        r.copy_from(&b).unwrap();
        a.apply_advanced(-1.0, &x, 1.0, &mut r).unwrap();
        assert!(r.compute_norm2() < 1e-8, "residual {}", r.compute_norm2());
    }

    #[test]
    fn cg_converges_in_n_iterations_exactly_in_theory() {
        // CG on an n x n SPD system converges in at most n steps (exact
        // arithmetic); with fp64 and a tiny system it is numerically sharp.
        let exec = Executor::reference();
        let a = poisson(&exec, 8);
        let solver = Cg::new(a)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(100, 1e-12));
        let b = Dense::<f64>::vector(&exec, 8, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 8, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(rec.iterations <= 8, "took {} iterations", rec.iterations);
    }

    #[test]
    fn jacobi_preconditioner_reduces_iterations() {
        use crate::preconditioner::jacobi::Jacobi;
        let exec = Executor::reference();
        // Badly scaled SPD diagonal + small coupling.
        let n = 50;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 1.0 + i as f64 * 10.0));
            if i > 0 {
                t.push((i, i - 1, -0.1));
                t.push((i - 1, i, -0.1));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let b = Dense::<f64>::vector(&exec, n, 1.0);

        let plain = Cg::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let mut x1 = Dense::<f64>::vector(&exec, n, 0.0);
        plain.apply(&b, &mut x1).unwrap();
        let it_plain = plain.logger().snapshot().iterations;

        let jacobi = Jacobi::new(&*a).unwrap();
        let pre = Cg::new(a)
            .unwrap()
            .with_preconditioner(Arc::new(jacobi))
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let mut x2 = Dense::<f64>::vector(&exec, n, 0.0);
        pre.apply(&b, &mut x2).unwrap();
        let it_pre = pre.logger().snapshot().iterations;

        assert!(
            it_pre < it_plain,
            "jacobi {it_pre} should beat plain {it_plain}"
        );
    }

    #[test]
    fn iteration_limit_is_respected() {
        let exec = Executor::reference();
        let a = poisson(&exec, 128);
        let solver = Cg::new(a)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(3, 1e-14));
        let b = Dense::<f64>::vector(&exec, 128, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 128, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert_eq!(rec.iterations, 3);
        assert_eq!(rec.stop_reason, Some(StopReason::MaxIterations));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let exec = Executor::reference();
        let a = poisson(&exec, 16);
        let solver = Cg::new(a).unwrap();
        let b = Dense::<f64>::vector(&exec, 16, 0.0);
        let mut x = Dense::<f64>::vector(&exec, 16, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert_eq!(solver.logger().snapshot().iterations, 0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let exec = Executor::reference();
        let a = poisson(&exec, 16);
        let solver = Cg::new(a).unwrap();
        let b = Dense::<f64>::vector(&exec, 8, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 16, 0.0);
        assert!(solver.apply(&b, &mut x).is_err());
    }

    #[test]
    fn works_in_f32() {
        let exec = Executor::reference();
        let mut t = vec![];
        for i in 0..16usize {
            t.push((i, i, 3.0f32));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        let a = Arc::new(Csr::<f32, i32>::from_triplets(&exec, Dim2::square(16), &t).unwrap());
        let solver = Cg::new(a)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(200, 1e-5));
        let b = Dense::<f32>::vector(&exec, 16, 1.0);
        let mut x = Dense::<f32>::vector(&exec, 16, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert!(solver.logger().snapshot().converged());
    }
}
