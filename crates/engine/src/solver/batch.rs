//! Batched Krylov solvers: one dispatch pipeline, per-system convergence.
//!
//! [`BatchCg`] and [`BatchBiCgStab`] run the same recurrences as their
//! single-system counterparts ([`Cg`](super::cg::Cg),
//! [`BiCgStab`](super::bicgstab::BiCgStab)) across every system of a
//! [`BatchCsr`] simultaneously: each kernel in an iteration is one batched
//! call — and therefore one pool drain — instead of `num_systems` separate
//! launches. Per-system state (baseline, residual norm, [`StopReason`])
//! lives in plain host vectors; once a system converges or breaks down it
//! is masked out of every subsequent kernel, so the batch finishes when its
//! slowest system does without spending flops on finished ones.
//!
//! Stopping uses the same [`Criteria`] contract as the single solvers,
//! evaluated per system — including the zero-baseline and
//! non-finite-baseline rules, which matter here because one hostile system
//! must not stall or poison its batchmates. Preconditioning is identity
//! only for now (batched preconditioners need batched formats of their
//! own).
//!
//! Completion emits a single [`Event::BatchSolveCompleted`] carrying the
//! converged/breakdown counts; per-system outcomes are returned in the
//! [`BatchSolveRecord`].

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::log::{Event, Logger, LoggerRegistry, OpTimer};
use crate::matrix::batch::{BatchCsr, BatchDense};
use crate::stop::{Criteria, StopReason};
use std::sync::Arc;

/// Final state of one system inside a batched solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchSystemOutcome {
    /// Fully completed iterations for this system (same convention as
    /// [`SolveRecord::iterations`](crate::log::SolveRecord::iterations)).
    pub iterations: usize,
    /// Initial residual norm.
    pub initial_residual: f64,
    /// Residual norm when the system stopped.
    pub final_residual: f64,
    /// Why this system stopped.
    pub stop_reason: StopReason,
}

impl BatchSystemOutcome {
    /// True if the stop reason indicates convergence.
    pub fn converged(&self) -> bool {
        self.stop_reason.is_converged()
    }
}

/// Per-system outcomes of one batched solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchSolveRecord {
    /// One outcome per system, in batch order.
    pub outcomes: Vec<BatchSystemOutcome>,
}

impl BatchSolveRecord {
    /// Systems in the batch.
    pub fn num_systems(&self) -> usize {
        self.outcomes.len()
    }

    /// Systems that stopped with a converged reason.
    pub fn converged_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.converged()).count()
    }

    /// Systems that stopped with [`StopReason::Breakdown`].
    pub fn breakdown_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.stop_reason == StopReason::Breakdown)
            .count()
    }

    /// Iterations of the slowest system (what the batch actually ran).
    pub fn max_iterations(&self) -> usize {
        self.outcomes.iter().map(|o| o.iterations).max().unwrap_or(0)
    }

    /// True when every system converged.
    pub fn all_converged(&self) -> bool {
        self.converged_count() == self.outcomes.len()
    }
}

/// Per-system solve state shared by the batched solvers.
struct SystemStates {
    baseline: Vec<f64>,
    final_res: Vec<f64>,
    reason: Vec<Option<StopReason>>,
    iters: Vec<usize>,
    active: Vec<bool>,
}

impl SystemStates {
    fn new(baseline: Vec<f64>) -> Self {
        let n = baseline.len();
        SystemStates {
            final_res: baseline.clone(),
            baseline,
            reason: vec![None; n],
            iters: vec![0; n],
            active: vec![true; n],
        }
    }

    fn any_active(&self) -> bool {
        self.active.iter().any(|&a| a)
    }

    /// Retires system `s` with its final state; it is masked out of every
    /// subsequent kernel.
    fn finish(&mut self, s: usize, iterations: usize, res: f64, reason: StopReason) {
        self.reason[s] = Some(reason);
        self.iters[s] = iterations;
        self.final_res[s] = res;
        self.active[s] = false;
    }

    fn into_record(self) -> BatchSolveRecord {
        let outcomes = self
            .reason
            .iter()
            .enumerate()
            .map(|(s, reason)| BatchSystemOutcome {
                iterations: self.iters[s],
                initial_residual: self.baseline[s],
                final_residual: self.final_res[s],
                // Every exit path finishes each system; MaxIterations is the
                // defensive default should one slip through.
                stop_reason: reason.unwrap_or(StopReason::MaxIterations),
            })
            .collect();
        BatchSolveRecord { outcomes }
    }
}

/// Shared plumbing of the batched solvers: the batch operator, criteria,
/// and the two logger registries (solver-attached and executor-attached).
struct BatchSolverCore<V: Value, I: Index> {
    op: Arc<BatchCsr<V, I>>,
    criteria: Criteria,
    name: &'static str,
    events: LoggerRegistry,
    exec_events: LoggerRegistry,
}

impl<V: Value, I: Index> BatchSolverCore<V, I> {
    fn new(name: &'static str, op: Arc<BatchCsr<V, I>>) -> Result<Self> {
        if !op.size().is_square() {
            return Err(GkoError::BadInput(format!(
                "batched iterative solvers need square systems, got {}",
                op.size()
            )));
        }
        let exec_events = op.executor().loggers().clone();
        Ok(BatchSolverCore {
            op,
            criteria: Criteria::default(),
            name,
            events: LoggerRegistry::new(),
            exec_events,
        })
    }

    /// Validates `b`/`x` batch sizes (shapes are checked by the kernels).
    fn check_batches(&self, b: &BatchDense<V>, x: &BatchDense<V>) -> Result<()> {
        let s = self.op.num_systems();
        if b.num_systems() != s || x.num_systems() != s {
            return Err(GkoError::BadInput(format!(
                "batched solve: operator has {s} systems, b {} and x {}",
                b.num_systems(),
                x.num_systems()
            )));
        }
        Ok(())
    }

    /// Runs the initial `check(0, baseline, baseline)` for every system,
    /// retiring those that are already converged (zero RHS) or poisoned
    /// (non-finite baseline).
    fn check_initial(&self, st: &mut SystemStates) {
        for s in 0..st.baseline.len() {
            if let Some(reason) = self.criteria.check(0, st.baseline[s], st.baseline[s]) {
                st.finish(s, 0, st.baseline[s], reason);
            }
        }
    }

    /// Emits [`Event::BatchSolveCompleted`] to both registries.
    fn emit_completed(&self, record: &BatchSolveRecord) {
        if self.events.is_active() || self.exec_events.is_active() {
            let event = Event::BatchSolveCompleted {
                solver: self.name,
                systems: record.num_systems(),
                converged: record.converged_count(),
                breakdowns: record.breakdown_count(),
                iterations: record.max_iterations(),
            };
            self.events.log(&event);
            self.exec_events.log(&event);
        }
    }
}

/// Batched Conjugate Gradient for batches of SPD systems.
pub struct BatchCg<V: Value, I: Index = i32> {
    core: BatchSolverCore<V, I>,
}

impl<V: Value, I: Index> BatchCg<V, I> {
    /// Creates a batched CG solver over the given batch operator.
    pub fn new(op: Arc<BatchCsr<V, I>>) -> Result<Self> {
        Ok(BatchCg {
            core: BatchSolverCore::new("solver::BatchCg", op)?,
        })
    }

    /// Sets the stopping criteria (applied per system).
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// Attaches a logger observing this solver's events.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.events.add(logger);
    }

    /// Solves `A[s] x[s] = b[s]` for every system; `x` holds the initial
    /// guesses on entry and the solutions on exit. Non-convergence is
    /// reported per system in the returned record, not as an error.
    pub fn apply_batch(
        &self,
        b: &BatchDense<V>,
        x: &mut BatchDense<V>,
    ) -> Result<BatchSolveRecord> {
        let core = &self.core;
        core.check_batches(b, x)?;
        let op = &core.op;
        let exec = op.executor().clone();
        let _solve_timer = OpTimer::new(&exec, core.name);
        let s_count = op.num_systems();
        let dim = Dim2::new(op.size().rows, 1);

        // r = b - A x
        let mut r = BatchDense::zeros(&exec, s_count, dim);
        r.copy_from(b)?;
        let mut q = BatchDense::zeros(&exec, s_count, dim);
        op.apply_batch(x, &mut q, None)?;
        r.axpy(&vec![-1.0; s_count], &q, None)?;

        let mut baseline = vec![0.0; s_count];
        r.norms2(None, &mut baseline)?;
        let mut st = SystemStates::new(baseline);
        core.check_initial(&mut st);

        let mut p = BatchDense::zeros(&exec, s_count, dim);
        p.copy_from(&r)?;
        let mut rho = vec![0.0; s_count];
        r.dots(&r, Some(&st.active), &mut rho)?;

        let mut pq = vec![0.0; s_count];
        let mut res = vec![0.0; s_count];
        let mut coeff = vec![0.0; s_count];
        let mut rho_new = vec![0.0; s_count];
        let mut iter = 0usize;
        while st.any_active() {
            iter += 1;
            op.apply_batch(&p, &mut q, Some(&st.active))?;
            p.dots(&q, Some(&st.active), &mut pq)?;
            for s in 0..s_count {
                if st.active[s]
                    && (pq[s] == 0.0 || !pq[s].is_finite() || rho[s] == 0.0 || !rho[s].is_finite())
                {
                    // Same convention as single CG: the broken iteration is
                    // not counted and x keeps its last finite state.
                    st.finish(s, iter - 1, st.final_res[s], StopReason::Breakdown);
                }
            }
            for s in 0..s_count {
                coeff[s] = if st.active[s] { rho[s] / pq[s] } else { 0.0 };
            }
            x.axpy(&coeff, &p, Some(&st.active))?;
            for c in coeff.iter_mut() {
                *c = -*c;
            }
            r.axpy(&coeff, &q, Some(&st.active))?;
            r.norms2(Some(&st.active), &mut res)?;
            for (s, &res_s) in res.iter().enumerate() {
                if !st.active[s] {
                    continue;
                }
                st.final_res[s] = res_s;
                if let Some(reason) = core.criteria.check(iter, res_s, st.baseline[s]) {
                    st.finish(s, iter, res_s, reason);
                }
            }
            if !st.any_active() {
                break;
            }
            r.dots(&r, Some(&st.active), &mut rho_new)?;
            for s in 0..s_count {
                if st.active[s] {
                    coeff[s] = rho_new[s] / rho[s];
                    rho[s] = rho_new[s];
                }
            }
            // p = r + beta * p
            p.scale_add(&r, &coeff, Some(&st.active))?;
        }
        let record = st.into_record();
        core.emit_completed(&record);
        Ok(record)
    }
}

/// Batched BiCGStab for batches of general (unsymmetric) systems.
pub struct BatchBiCgStab<V: Value, I: Index = i32> {
    core: BatchSolverCore<V, I>,
}

impl<V: Value, I: Index> BatchBiCgStab<V, I> {
    /// Creates a batched BiCGStab solver over the given batch operator.
    pub fn new(op: Arc<BatchCsr<V, I>>) -> Result<Self> {
        Ok(BatchBiCgStab {
            core: BatchSolverCore::new("solver::BatchBicgstab", op)?,
        })
    }

    /// Sets the stopping criteria (applied per system).
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// Attaches a logger observing this solver's events.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.events.add(logger);
    }

    /// Solves `A[s] x[s] = b[s]` for every system (see
    /// [`BatchCg::apply_batch`] for conventions).
    pub fn apply_batch(
        &self,
        b: &BatchDense<V>,
        x: &mut BatchDense<V>,
    ) -> Result<BatchSolveRecord> {
        let core = &self.core;
        core.check_batches(b, x)?;
        let op = &core.op;
        let exec = op.executor().clone();
        let _solve_timer = OpTimer::new(&exec, core.name);
        let s_count = op.num_systems();
        let dim = Dim2::new(op.size().rows, 1);

        // r = b - A x
        let mut r = BatchDense::zeros(&exec, s_count, dim);
        r.copy_from(b)?;
        let mut v = BatchDense::zeros(&exec, s_count, dim);
        op.apply_batch(x, &mut v, None)?;
        r.axpy(&vec![-1.0; s_count], &v, None)?;
        let r_tilde = r.clone();

        let mut baseline = vec![0.0; s_count];
        r.norms2(None, &mut baseline)?;
        let mut st = SystemStates::new(baseline);
        core.check_initial(&mut st);

        let mut p = BatchDense::zeros(&exec, s_count, dim);
        let mut s_vec = BatchDense::zeros(&exec, s_count, dim);
        let mut t = BatchDense::zeros(&exec, s_count, dim);

        let mut rho_old = vec![1.0f64; s_count];
        let mut alpha = vec![1.0f64; s_count];
        let mut omega = vec![1.0f64; s_count];
        let mut rho = vec![0.0; s_count];
        let mut denom = vec![0.0; s_count];
        let mut coeff = vec![0.0; s_count];
        let mut norms = vec![0.0; s_count];
        let mut tt = vec![0.0; s_count];
        let mut ts = vec![0.0; s_count];
        let mut half = vec![false; s_count];
        let mut half_reason: Vec<Option<StopReason>> = vec![None; s_count];
        let mut iter = 0usize;
        while st.any_active() {
            iter += 1;
            r_tilde.dots(&r, Some(&st.active), &mut rho)?;
            for s in 0..s_count {
                if st.active[s] && (rho[s] == 0.0 || omega[s] == 0.0 || !rho[s].is_finite()) {
                    st.finish(s, iter - 1, st.final_res[s], StopReason::Breakdown);
                }
            }
            if !st.any_active() {
                break;
            }
            if iter == 1 {
                p.copy_from(&r)?;
            } else {
                // p = r + beta * (p - omega * v)
                for s in 0..s_count {
                    coeff[s] = if st.active[s] { -omega[s] } else { 0.0 };
                }
                p.axpy(&coeff, &v, Some(&st.active))?;
                for s in 0..s_count {
                    coeff[s] = if st.active[s] {
                        (rho[s] / rho_old[s]) * (alpha[s] / omega[s])
                    } else {
                        0.0
                    };
                }
                p.scale_add(&r, &coeff, Some(&st.active))?;
            }
            op.apply_batch(&p, &mut v, Some(&st.active))?;
            r_tilde.dots(&v, Some(&st.active), &mut denom)?;
            for (s, &denom_s) in denom.iter().enumerate() {
                if st.active[s] && (denom_s == 0.0 || !denom_s.is_finite()) {
                    st.finish(s, iter - 1, st.final_res[s], StopReason::Breakdown);
                }
            }
            for s in 0..s_count {
                if st.active[s] {
                    alpha[s] = rho[s] / denom[s];
                }
            }
            // s = r - alpha * v
            s_vec.copy_from(&r)?;
            for s in 0..s_count {
                coeff[s] = if st.active[s] { -alpha[s] } else { 0.0 };
            }
            s_vec.axpy(&coeff, &v, Some(&st.active))?;
            s_vec.norms2(Some(&st.active), &mut norms)?;

            // Half-step check: early convergence (or Breakdown on a
            // non-finite norm) accepts the half-step update x += alpha p,
            // exactly as in the single-system solver.
            let mut any_half = false;
            for s in 0..s_count {
                half[s] = false;
                half_reason[s] = None;
                if !st.active[s] {
                    continue;
                }
                if let Some(reason) = core.criteria.check(iter, norms[s], st.baseline[s]) {
                    if reason != StopReason::MaxIterations {
                        half[s] = true;
                        half_reason[s] = Some(reason);
                        any_half = true;
                    }
                }
            }
            if any_half {
                x.axpy(&alpha, &p, Some(&half))?;
                for s in 0..s_count {
                    if let Some(reason) = half_reason[s] {
                        st.finish(s, iter, norms[s], reason);
                    }
                }
            }
            if !st.any_active() {
                break;
            }

            op.apply_batch(&s_vec, &mut t, Some(&st.active))?;
            t.dots(&t, Some(&st.active), &mut tt)?;
            for (s, &tt_s) in tt.iter().enumerate() {
                if st.active[s] && (tt_s == 0.0 || !tt_s.is_finite()) {
                    st.finish(s, iter - 1, st.final_res[s], StopReason::Breakdown);
                }
            }
            t.dots(&s_vec, Some(&st.active), &mut ts)?;
            for s in 0..s_count {
                if st.active[s] {
                    omega[s] = ts[s] / tt[s];
                }
            }
            // x += alpha * p + omega * s
            x.axpy(&alpha, &p, Some(&st.active))?;
            x.axpy(&omega, &s_vec, Some(&st.active))?;
            // r = s - omega * t (inactive systems' r is never read again,
            // so the unmasked copy is harmless)
            r.copy_from(&s_vec)?;
            for s in 0..s_count {
                coeff[s] = if st.active[s] { -omega[s] } else { 0.0 };
            }
            r.axpy(&coeff, &t, Some(&st.active))?;
            r.norms2(Some(&st.active), &mut norms)?;
            for (s, &norm_s) in norms.iter().enumerate() {
                if !st.active[s] {
                    continue;
                }
                st.final_res[s] = norm_s;
                if let Some(reason) = core.criteria.check(iter, norm_s, st.baseline[s]) {
                    st.finish(s, iter, norm_s, reason);
                }
            }
            for s in 0..s_count {
                if st.active[s] {
                    rho_old[s] = rho[s];
                }
            }
        }
        let record = st.into_record();
        core.emit_completed(&record);
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linop::LinOp;
    use crate::matrix::csr::Csr;
    use crate::matrix::dense::Dense;
    use crate::solver::{BiCgStab, Cg};
    use crate::Executor;

    /// SPD tridiagonal with a per-system diagonal shift.
    fn spd(exec: &Executor, n: usize, shift: f64) -> Csr<f64, i32> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0 + shift));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
    }

    /// Unsymmetric tridiagonal-ish with a per-system diagonal shift.
    fn unsym(exec: &Executor, n: usize, shift: f64) -> Csr<f64, i32> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 5.0 + shift));
            if i > 0 {
                t.push((i, i - 1, -2.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
    }

    type SharedBatch = (Arc<BatchCsr<f64, i32>>, Vec<Csr<f64, i32>>);

    fn shared_batch(
        exec: &Executor,
        n: usize,
        s: usize,
        make: impl Fn(&Executor, usize, f64) -> Csr<f64, i32>,
    ) -> SharedBatch {
        let singles: Vec<Csr<f64, i32>> =
            (0..s).map(|k| make(exec, n, k as f64 * 0.5)).collect();
        let vals: Vec<Vec<f64>> = singles.iter().map(|m| m.values().to_vec()).collect();
        let batch = Arc::new(BatchCsr::from_shared(&singles[0], &vals).unwrap());
        (batch, singles)
    }

    fn rhs(exec: &Executor, n: usize, s: usize) -> BatchDense<f64> {
        let mut b = BatchDense::zeros(exec, s, Dim2::new(n, 1));
        for k in 0..s {
            for (i, v) in b.system_mut(k).iter_mut().enumerate() {
                *v = 1.0 + (i % 3) as f64 + k as f64 * 0.1;
            }
        }
        b
    }

    #[test]
    fn batch_cg_matches_single_cg_per_system() {
        let exec = Executor::reference();
        let (n, s) = (24, 5);
        let (batch, singles) = shared_batch(&exec, n, s, spd);
        let criteria = Criteria::iterations_and_reduction(200, 1e-10);
        let b = rhs(&exec, n, s);
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        let record = BatchCg::new(batch)
            .unwrap()
            .with_criteria(criteria)
            .apply_batch(&b, &mut x)
            .unwrap();
        assert!(record.all_converged(), "{record:?}");

        for (k, single) in singles.iter().enumerate() {
            let solver = Cg::new(Arc::new(single.clone()))
                .unwrap()
                .with_criteria(criteria);
            let bd = Dense::from_vec(&exec, Dim2::new(n, 1), b.system(k).to_vec()).unwrap();
            let mut xd = Dense::zeros(&exec, Dim2::new(n, 1));
            solver.apply(&bd, &mut xd).unwrap();
            let rec = solver.logger().snapshot();
            assert_eq!(
                record.outcomes[k].iterations, rec.iterations,
                "system {k} must take the same iterations as single CG"
            );
            for (i, (&got, &want)) in
                x.system(k).iter().zip(xd.to_host_vec().iter()).enumerate()
            {
                assert!(
                    (got - want).abs() < 1e-9,
                    "system {k} row {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn batch_bicgstab_matches_single_bicgstab_per_system() {
        let exec = Executor::reference();
        let (n, s) = (20, 4);
        let (batch, singles) = shared_batch(&exec, n, s, unsym);
        let criteria = Criteria::iterations_and_reduction(300, 1e-10);
        let b = rhs(&exec, n, s);
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        let record = BatchBiCgStab::new(batch)
            .unwrap()
            .with_criteria(criteria)
            .apply_batch(&b, &mut x)
            .unwrap();
        assert!(record.all_converged(), "{record:?}");

        for (k, single) in singles.iter().enumerate() {
            let solver = BiCgStab::new(Arc::new(single.clone()))
                .unwrap()
                .with_criteria(criteria);
            let bd = Dense::from_vec(&exec, Dim2::new(n, 1), b.system(k).to_vec()).unwrap();
            let mut xd = Dense::zeros(&exec, Dim2::new(n, 1));
            solver.apply(&bd, &mut xd).unwrap();
            let rec = solver.logger().snapshot();
            assert_eq!(record.outcomes[k].iterations, rec.iterations, "system {k}");
            for (&got, &want) in x.system(k).iter().zip(xd.to_host_vec().iter()) {
                assert!((got - want).abs() < 1e-8, "system {k}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn zero_rhs_system_converges_at_iteration_zero_inside_batch() {
        let exec = Executor::reference();
        let (n, s) = (16, 3);
        let (batch, _) = shared_batch(&exec, n, s, spd);
        let mut b = rhs(&exec, n, s);
        for v in b.system_mut(1) {
            *v = 0.0;
        }
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        let record = BatchCg::new(batch)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(100, 1e-8))
            .apply_batch(&b, &mut x)
            .unwrap();
        assert_eq!(record.outcomes[1].iterations, 0);
        assert_eq!(
            record.outcomes[1].stop_reason,
            StopReason::ResidualReduction
        );
        assert!(x.system(1).iter().all(|&v| v == 0.0));
        // The zero system must not have stalled its batchmates.
        assert!(record.outcomes[0].converged());
        assert!(record.outcomes[2].converged());
        assert!(record.outcomes[0].iterations > 0);
    }

    #[test]
    fn poisoned_system_breaks_down_alone() {
        let exec = Executor::reference();
        let (n, s) = (16, 3);
        let (batch, _) = shared_batch(&exec, n, s, spd);
        let mut b = rhs(&exec, n, s);
        b.system_mut(2)[4] = f64::NAN;
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        let record = BatchCg::new(batch)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(100, 1e-8))
            .apply_batch(&b, &mut x)
            .unwrap();
        assert_eq!(record.outcomes[2].stop_reason, StopReason::Breakdown);
        assert_eq!(record.outcomes[2].iterations, 0);
        assert!(record.outcomes[0].converged(), "{record:?}");
        assert!(record.outcomes[1].converged(), "{record:?}");
        assert_eq!(record.breakdown_count(), 1);
        // The poisoned system's solution slot was never touched past the
        // initial state.
        assert!(x.system(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn per_system_sparsity_batch_solves() {
        let exec = Executor::reference();
        let n = 12;
        let systems = vec![spd(&exec, n, 0.0), spd(&exec, n, 1.0), spd(&exec, n, 2.0)];
        let batch = Arc::new(BatchCsr::from_systems(systems).unwrap());
        let b = rhs(&exec, n, 3);
        let mut x = BatchDense::zeros(&exec, 3, Dim2::new(n, 1));
        let record = BatchCg::new(batch)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(200, 1e-10))
            .apply_batch(&b, &mut x)
            .unwrap();
        assert!(record.all_converged(), "{record:?}");
    }

    #[test]
    fn iteration_limit_is_respected_per_system() {
        let exec = Executor::reference();
        let (n, s) = (32, 3);
        let (batch, _) = shared_batch(&exec, n, s, spd);
        let b = rhs(&exec, n, s);
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        let record = BatchCg::new(batch)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(2, 1e-14))
            .apply_batch(&b, &mut x)
            .unwrap();
        for o in &record.outcomes {
            assert_eq!(o.stop_reason, StopReason::MaxIterations);
            assert_eq!(o.iterations, 2);
        }
        assert_eq!(record.max_iterations(), 2);
        assert!(!record.all_converged());
    }

    #[test]
    fn batch_event_is_emitted_with_outcome_counts() {
        use std::sync::Mutex;
        struct Capture(Mutex<Vec<String>>);
        impl Logger for Capture {
            fn on_event(&self, event: &Event) {
                if let Event::BatchSolveCompleted { .. } = event {
                    self.0.lock().unwrap().push(event.to_string());
                }
            }
        }
        let exec = Executor::reference();
        let (n, s) = (12, 3);
        let (batch, _) = shared_batch(&exec, n, s, spd);
        let solver = BatchCg::new(batch)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(200, 1e-10));
        let capture = Arc::new(Capture(Mutex::new(vec![])));
        solver.add_logger(capture.clone());
        let b = rhs(&exec, n, s);
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        solver.apply_batch(&b, &mut x).unwrap();
        let events = capture.0.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert!(
            events[0].contains("3 systems (3 converged, 0 breakdowns)"),
            "{}",
            events[0]
        );
    }

    #[test]
    fn shared_plan_reused_across_whole_solve() {
        let exec = Executor::reference();
        let (n, s) = (24, 6);
        let (batch, _) = shared_batch(&exec, n, s, spd);
        let b = rhs(&exec, n, s);
        let mut x = BatchDense::zeros(&exec, s, Dim2::new(n, 1));
        let record = BatchCg::new(batch.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(200, 1e-10))
            .apply_batch(&b, &mut x)
            .unwrap();
        let stats = batch.plan_stats().unwrap();
        assert_eq!(stats.builds, 1, "one inspection for the whole solve");
        // One apply_batch per iteration plus the initial residual.
        assert!(
            stats.hits >= record.max_iterations() as u64,
            "hits {} vs iterations {}",
            stats.hits,
            record.max_iterations()
        );
        assert!(stats.reuse_ratio() > 0.9);
    }

    #[test]
    fn non_square_batch_is_rejected() {
        let exec = Executor::reference();
        let rect = Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::new(3, 4),
            &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)],
        )
        .unwrap();
        let batch = Arc::new(BatchCsr::replicated(&rect, 4).unwrap());
        assert!(BatchCg::new(batch.clone()).is_err());
        assert!(BatchBiCgStab::new(batch).is_err());
    }
}
