//! Sparse triangular solvers (Ginkgo's `LowerTrs`/`UpperTrs`).
//!
//! Forward/backward substitution on a sparse triangular CSR factor. The
//! recurrence is inherently sequential across dependent rows, which the cost
//! model captures by scheduling the whole solve as a single chunk — the
//! structural reason triangular solves parallelize poorly on GPUs (a point
//! §6.2.1 makes about small Hessenberg systems).

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::executor::Executor;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;
use std::sync::Arc;

/// Which half of the matrix the solver reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Half {
    Lower,
    Upper,
}

/// Shared implementation of the two triangular solvers.
struct Trs<V: Value, I: Index> {
    matrix: Arc<Csr<V, I>>,
    half: Half,
    unit_diagonal: bool,
}

impl<V: Value, I: Index> Trs<V, I> {
    fn work(&self) -> Vec<ChunkWork> {
        // One sequential chunk: dependencies serialize the rows.
        let nnz = self.matrix.nnz() as f64;
        let rows = self.matrix.size().rows as f64;
        vec![ChunkWork::new(
            nnz * (V::BYTES + I::BYTES) as f64 + rows * 2.0 * V::BYTES as f64,
            nnz * V::BYTES as f64,
            2.0 * nnz + rows,
        )]
    }

    fn solve(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.matrix.size(), b, x)?;
        let _timer = OpTimer::new(
            self.matrix.executor(),
            match self.half {
                Half::Lower => "solver::LowerTrs",
                Half::Upper => "solver::UpperTrs",
            },
        );
        let n = self.matrix.size().rows;
        let k = b.size().cols;
        let rp = self.matrix.row_ptrs();
        let ci = self.matrix.col_idxs();
        let vals = self.matrix.values();
        let bv = b.as_slice();
        let xs = x.as_mut_slice();

        let rows: Box<dyn Iterator<Item = usize>> = match self.half {
            Half::Lower => Box::new(0..n),
            Half::Upper => Box::new((0..n).rev()),
        };
        for r in rows {
            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
            for c in 0..k {
                let mut acc = bv[r * k + c].to_f64();
                let mut diag = if self.unit_diagonal { 1.0 } else { 0.0 };
                for idx in lo..hi {
                    let col = ci[idx].to_usize();
                    let keep = match self.half {
                        Half::Lower => col < r,
                        Half::Upper => col > r,
                    };
                    if keep {
                        acc -= vals[idx].to_f64() * xs[col * k + c].to_f64();
                    } else if col == r && !self.unit_diagonal {
                        diag = vals[idx].to_f64();
                    }
                }
                if diag == 0.0 {
                    return Err(GkoError::Singular { at: r });
                }
                xs[r * k + c] = V::from_f64(acc / diag);
            }
        }
        self.matrix.executor().launch(&self.work());
        Ok(())
    }
}

/// Solves `L x = b` for lower-triangular `L`.
pub struct LowerTrs<V: Value, I: Index = i32> {
    inner: Trs<V, I>,
}

impl<V: Value, I: Index> LowerTrs<V, I> {
    /// Creates a solver reading the lower triangle (including diagonal) of
    /// `matrix`.
    pub fn new(matrix: Arc<Csr<V, I>>) -> Result<Self> {
        if !matrix.size().is_square() {
            return Err(GkoError::BadInput(
                "triangular solve requires a square matrix".into(),
            ));
        }
        Ok(LowerTrs {
            inner: Trs {
                matrix,
                half: Half::Lower,
                unit_diagonal: false,
            },
        })
    }

    /// Treats the diagonal as implicit ones (for ILU's L factor).
    pub fn with_unit_diagonal(mut self) -> Self {
        self.inner.unit_diagonal = true;
        self
    }
}

impl<V: Value, I: Index> LinOp<V> for LowerTrs<V, I> {
    fn size(&self) -> Dim2 {
        self.inner.matrix.size()
    }
    fn executor(&self) -> &Executor {
        self.inner.matrix.executor()
    }
    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.inner.solve(b, x)
    }
    fn op_name(&self) -> &'static str {
        "solver::LowerTrs"
    }
}

/// Solves `U x = b` for upper-triangular `U`.
pub struct UpperTrs<V: Value, I: Index = i32> {
    inner: Trs<V, I>,
}

impl<V: Value, I: Index> UpperTrs<V, I> {
    /// Creates a solver reading the upper triangle (including diagonal) of
    /// `matrix`.
    pub fn new(matrix: Arc<Csr<V, I>>) -> Result<Self> {
        if !matrix.size().is_square() {
            return Err(GkoError::BadInput(
                "triangular solve requires a square matrix".into(),
            ));
        }
        Ok(UpperTrs {
            inner: Trs {
                matrix,
                half: Half::Upper,
                unit_diagonal: false,
            },
        })
    }

    /// Treats the diagonal as implicit ones.
    pub fn with_unit_diagonal(mut self) -> Self {
        self.inner.unit_diagonal = true;
        self
    }
}

impl<V: Value, I: Index> LinOp<V> for UpperTrs<V, I> {
    fn size(&self) -> Dim2 {
        self.inner.matrix.size()
    }
    fn executor(&self) -> &Executor {
        self.inner.matrix.executor()
    }
    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.inner.solve(b, x)
    }
    fn op_name(&self) -> &'static str {
        "solver::UpperTrs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_solve_matches_hand_computation() {
        let exec = Executor::reference();
        // L = [2 0; 3 4]; b = [2; 11] -> x = [1; 2]
        let l = Arc::new(
            Csr::<f64, i32>::from_triplets(
                &exec,
                Dim2::square(2),
                &[(0, 0, 2.0), (1, 0, 3.0), (1, 1, 4.0)],
            )
            .unwrap(),
        );
        let solver = LowerTrs::new(l).unwrap();
        let b = Dense::from_rows(&exec, &[[2.0f64], [11.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(2, 1));
        solver.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn upper_solve_matches_hand_computation() {
        let exec = Executor::reference();
        // U = [2 1; 0 4]; b = [4; 8] -> x = [1; 2]
        let u = Arc::new(
            Csr::<f64, i32>::from_triplets(
                &exec,
                Dim2::square(2),
                &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0)],
            )
            .unwrap(),
        );
        let solver = UpperTrs::new(u).unwrap();
        let b = Dense::from_rows(&exec, &[[4.0f64], [8.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(2, 1));
        solver.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn unit_diagonal_ignores_stored_diagonal() {
        let exec = Executor::reference();
        // Strictly lower entry only; unit diagonal implied.
        let l = Arc::new(
            Csr::<f64, i32>::from_triplets(&exec, Dim2::square(2), &[(1, 0, 3.0)]).unwrap(),
        );
        let solver = LowerTrs::new(l).unwrap().with_unit_diagonal();
        let b = Dense::from_rows(&exec, &[[1.0f64], [5.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(2, 1));
        solver.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn zero_diagonal_is_singular() {
        let exec = Executor::reference();
        let l = Arc::new(
            Csr::<f64, i32>::from_triplets(&exec, Dim2::square(2), &[(0, 0, 1.0)]).unwrap(),
        );
        let solver = LowerTrs::new(l).unwrap();
        let b = Dense::<f64>::vector(&exec, 2, 1.0);
        let mut x = Dense::zeros(&exec, Dim2::new(2, 1));
        assert_eq!(
            solver.apply(&b, &mut x),
            Err(GkoError::Singular { at: 1 })
        );
    }

    #[test]
    fn solve_inverts_matrix_vector_product() {
        let exec = Executor::reference();
        // Random-ish lower triangular system; verify L(Lx=b) round trip.
        let n = 20;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 2.0 + i as f64 * 0.1));
            if i >= 2 {
                t.push((i, i - 2, -0.3));
            }
        }
        let l = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let x_true = Dense::<f64>::vector(&exec, n, 1.5);
        let mut b = Dense::zeros(&exec, Dim2::new(n, 1));
        l.apply(&x_true, &mut b).unwrap();
        let solver = LowerTrs::new(l).unwrap();
        let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
        solver.apply(&b, &mut x).unwrap();
        for (a, b) in x.to_host_vec().iter().zip(x_true.to_host_vec()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn triangular_solve_is_one_sequential_chunk() {
        let exec = Executor::cuda(0);
        let l = Arc::new(
            Csr::<f64, i32>::from_triplets(&exec, Dim2::square(2), &[(0, 0, 1.0), (1, 1, 1.0)])
                .unwrap(),
        );
        let solver = LowerTrs::new(l).unwrap();
        let b = Dense::<f64>::vector(&exec, 2, 1.0);
        let mut x = Dense::zeros(&exec, Dim2::new(2, 1));
        let before = exec.timeline().snapshot();
        solver.apply(&b, &mut x).unwrap();
        // Exactly one launch for the solve itself (fill kernels excluded by
        // construction order).
        assert_eq!(exec.timeline().snapshot().since(&before).kernels, 1);
    }
}
