//! Iterative and direct solvers.
//!
//! All solvers are [`LinOp`](crate::linop::LinOp)s: `apply(b, x)` solves
//! `A x = b` starting from the initial guess in `x` and overwrites `x` with
//! the solution (Listing 1's usage). Each solver owns a
//! [`ConvergenceLogger`](crate::log::ConvergenceLogger) that records residual
//! history and the stop reason; failures to converge are reported through
//! the logger, not as errors, matching Ginkgo.
//!
//! Implemented Krylov methods: [`Cg`](cg::Cg), [`Fcg`](fcg::Fcg),
//! [`Cgs`](cgs::Cgs), [`BiCgStab`](bicgstab::BiCgStab),
//! [`Minres`](minres::Minres), and [`Gmres`](gmres::Gmres) (restarted,
//! Givens rotations, per-iteration residual checks — §6.2.1's description of
//! Ginkgo's GMRES). Also: [`Ir`](ir::Ir) (Richardson iteration),
//! [`MixedIr`](mixed::MixedIr) (mixed-precision iterative refinement),
//! [`LowerTrs`]/[`UpperTrs`](triangular) sparse triangular solves, and a
//! dense-LU [`Direct`](direct::Direct) solver.

pub mod bicgstab;
pub mod cg;
pub mod cgs;
pub mod direct;
pub mod fcg;
pub mod gmres;
pub mod ir;
pub mod minres;
pub mod mixed;
pub mod triangular;

pub use bicgstab::BiCgStab;
pub use cg::Cg;
pub use cgs::Cgs;
pub use direct::Direct;
pub use fcg::Fcg;
pub use gmres::Gmres;
pub use ir::Ir;
pub use minres::Minres;
pub use mixed::MixedIr;
pub use triangular::{LowerTrs, UpperTrs};

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::Value;
use crate::linop::{Identity, LinOp};
use crate::matrix::dense::Dense;
use std::sync::Arc;

/// Shared state of every iterative solver: the system operator, an optional
/// preconditioner (identity when absent), stopping criteria, and a logger.
pub(crate) struct SolverCore<V: Value> {
    pub system: Arc<dyn LinOp<V>>,
    pub precond: Arc<dyn LinOp<V>>,
    pub criteria: crate::stop::Criteria,
    pub logger: crate::log::ConvergenceLogger,
}

impl<V: Value> SolverCore<V> {
    pub fn new(system: Arc<dyn LinOp<V>>) -> Result<Self> {
        if !system.size().is_square() {
            return Err(GkoError::BadInput(format!(
                "iterative solvers need a square system, got {}",
                system.size()
            )));
        }
        let n = system.size().rows;
        let identity = Identity::new(system.executor(), n);
        Ok(SolverCore {
            system,
            precond: identity,
            criteria: crate::stop::Criteria::default(),
            logger: crate::log::ConvergenceLogger::new(),
        })
    }

    pub fn set_preconditioner(&mut self, precond: Arc<dyn LinOp<V>>) -> Result<()> {
        if precond.size() != self.system.size() {
            return Err(GkoError::DimensionMismatch {
                op: "preconditioner",
                expected: self.system.size(),
                actual: precond.size(),
            });
        }
        self.precond = precond;
        Ok(())
    }

    /// Validates `b`/`x` shapes for a solve (single right-hand side).
    pub fn check_vectors(&self, b: &Dense<V>, x: &Dense<V>) -> Result<()> {
        let n = self.system.size().rows;
        let want = Dim2::new(n, 1);
        if b.size() != want || x.size() != want {
            return Err(GkoError::DimensionMismatch {
                op: "solve",
                expected: want,
                actual: if b.size() != want { b.size() } else { x.size() },
            });
        }
        Ok(())
    }

    /// Computes `r = b - A x` into `r`.
    pub fn residual(&self, b: &Dense<V>, x: &Dense<V>, r: &mut Dense<V>) -> Result<()> {
        r.copy_from(b)?;
        self.system
            .apply_advanced(V::from_f64(-1.0), x, V::one(), r)
    }
}
