//! Iterative and direct solvers.
//!
//! All solvers are [`LinOp`](crate::linop::LinOp)s: `apply(b, x)` solves
//! `A x = b` starting from the initial guess in `x` and overwrites `x` with
//! the solution (Listing 1's usage). Each solver owns a
//! [`ConvergenceLogger`](crate::log::ConvergenceLogger) that records residual
//! history and the stop reason; failures to converge are reported through
//! the logger, not as errors, matching Ginkgo.
//!
//! # Breakdown and non-finite residuals
//!
//! Krylov recurrences divide by inner products (`p·Ap`, `ρ`, `ω`, …); when
//! such a denominator is exactly zero the method cannot continue and the
//! solver stops with [`StopReason::Breakdown`](crate::stop::StopReason),
//! leaving `x` at its last finite state. Independently,
//! [`Criteria::check`](crate::stop::Criteria::check) reports **any**
//! non-finite residual norm (NaN or ±Inf, e.g. from overflow on a diverging
//! or singular system) as `Breakdown` on the very next check, so a poisoned
//! solve halts within one iteration instead of spinning to the iteration
//! limit on `NaN < tol == false` comparisons.
//!
//! [`SolveRecord::iterations`](crate::log::SolveRecord::iterations) counts
//! **fully completed** iterations under either exit, and
//! `residual_history.len() == iterations` holds on every path — a solver
//! that breaks down mid-iteration does not record that iteration.
//!
//! # Events
//!
//! Every solver emits typed [`Event`](crate::log::Event)s — one
//! `IterationComplete` per iteration, one `CriterionChecked` per stopping
//! test, and a final `SolveCompleted` — to loggers attached either to the
//! solver itself (`with_logger`) or to its executor
//! ([`Executor::add_logger`](crate::Executor::add_logger)). The whole solve
//! is additionally wrapped in a `solver::*` kernel frame so a
//! [`Profiler`](crate::log::Profiler) can attribute SpMV/BLAS time to the
//! enclosing solve. A logger attached to *both* the solver and its executor
//! receives the iteration-level events twice.
//!
//! Implemented Krylov methods: [`Cg`](cg::Cg), [`Fcg`](fcg::Fcg),
//! [`Cgs`](cgs::Cgs), [`BiCgStab`](bicgstab::BiCgStab),
//! [`Minres`](minres::Minres), and [`Gmres`](gmres::Gmres) (restarted,
//! Givens rotations, per-iteration residual checks — §6.2.1's description of
//! Ginkgo's GMRES). Also: [`Ir`](ir::Ir) (Richardson iteration),
//! [`MixedIr`](mixed::MixedIr) (mixed-precision iterative refinement),
//! [`LowerTrs`]/[`UpperTrs`](triangular) sparse triangular solves, and a
//! dense-LU [`Direct`](direct::Direct) solver.

pub mod batch;
pub mod bicgstab;
pub mod cg;
pub mod cgs;
pub mod direct;
pub mod fcg;
pub mod gmres;
pub mod ir;
pub mod minres;
pub mod mixed;
pub mod triangular;

pub use batch::{BatchBiCgStab, BatchCg, BatchSolveRecord, BatchSystemOutcome};
pub use bicgstab::BiCgStab;
pub use cg::Cg;
pub use cgs::Cgs;
pub use direct::Direct;
pub use fcg::Fcg;
pub use gmres::Gmres;
pub use ir::Ir;
pub use minres::Minres;
pub use mixed::MixedIr;
pub use triangular::{LowerTrs, UpperTrs};

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::Value;
use crate::linop::{Identity, LinOp};
use crate::log::{Event, Logger, LoggerRegistry};
use crate::matrix::dense::Dense;
use crate::stop::StopReason;
use std::sync::Arc;

/// Shared state of every iterative solver: the system operator, an optional
/// preconditioner (identity when absent), stopping criteria, and a logger.
///
/// Every iterative solver also carries a [`LoggerRegistry`] of its own:
/// iteration, criterion-check, and solve-completion events are delivered
/// both to loggers attached to the solver and to loggers attached to the
/// system operator's executor (so an executor-wide
/// [`Profiler`](crate::log::Profiler) sees solver events alongside the
/// kernels). Attaching the same logger object to both therefore delivers
/// solver events twice — attach to one or the other.
pub(crate) struct SolverCore<V: Value> {
    pub system: Arc<dyn LinOp<V>>,
    pub precond: Arc<dyn LinOp<V>>,
    pub criteria: crate::stop::Criteria,
    pub logger: crate::log::ConvergenceLogger,
    /// Solver display name used in emitted events (e.g. `"solver::Cg"`).
    pub name: &'static str,
    /// Loggers attached directly to this solver.
    events: LoggerRegistry,
    /// The system executor's registry (kernel-level observers).
    exec_events: LoggerRegistry,
}

impl<V: Value> SolverCore<V> {
    pub fn new(name: &'static str, system: Arc<dyn LinOp<V>>) -> Result<Self> {
        if !system.size().is_square() {
            return Err(GkoError::BadInput(format!(
                "iterative solvers need a square system, got {}",
                system.size()
            )));
        }
        let n = system.size().rows;
        let identity = Identity::new(system.executor(), n);
        let events = LoggerRegistry::new();
        let exec_events = system.executor().loggers().clone();
        let logger = crate::log::ConvergenceLogger::new();
        logger.bind_events(name, events.clone());
        logger.bind_events(name, exec_events.clone());
        Ok(SolverCore {
            system,
            precond: identity,
            criteria: crate::stop::Criteria::default(),
            logger,
            name,
            events,
            exec_events,
        })
    }

    /// Attaches a logger to this solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.events.add(logger);
    }

    /// The registry of loggers attached to this solver.
    pub fn loggers(&self) -> &LoggerRegistry {
        &self.events
    }

    /// Evaluates the stopping criteria and emits
    /// [`Event::CriterionChecked`] to all attached observers.
    pub fn check(&self, iters_done: usize, res_norm: f64, baseline: f64) -> Option<StopReason> {
        let stop = self.criteria.check(iters_done, res_norm, baseline);
        if self.events.is_active() || self.exec_events.is_active() {
            let event = Event::CriterionChecked {
                solver: self.name,
                iteration: iters_done,
                residual: res_norm,
                stop,
            };
            self.events.log(&event);
            self.exec_events.log(&event);
        }
        stop
    }

    pub fn set_preconditioner(&mut self, precond: Arc<dyn LinOp<V>>) -> Result<()> {
        if precond.size() != self.system.size() {
            return Err(GkoError::DimensionMismatch {
                op: "preconditioner",
                expected: self.system.size(),
                actual: precond.size(),
            });
        }
        self.precond = precond;
        Ok(())
    }

    /// Validates `b`/`x` shapes for a solve (single right-hand side).
    pub fn check_vectors(&self, b: &Dense<V>, x: &Dense<V>) -> Result<()> {
        let n = self.system.size().rows;
        let want = Dim2::new(n, 1);
        if b.size() != want || x.size() != want {
            return Err(GkoError::DimensionMismatch {
                op: "solve",
                expected: want,
                actual: if b.size() != want { b.size() } else { x.size() },
            });
        }
        Ok(())
    }

    /// Computes `r = b - A x` into `r`.
    pub fn residual(&self, b: &Dense<V>, x: &Dense<V>, r: &mut Dense<V>) -> Result<()> {
        r.copy_from(b)?;
        self.system
            .apply_advanced(V::from_f64(-1.0), x, V::one(), r)
    }
}
