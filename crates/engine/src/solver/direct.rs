//! Direct solver (dense LU with partial pivoting).
//!
//! pyGinkgo exposes explicit bindings for "the direct solver" (Fig. 2). The
//! factorization happens once at construction; every `apply` is two
//! triangular solves. Intended for small/moderate systems — the
//! densification is O(n^2) memory.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::{Index, Value};
use crate::executor::Executor;
use crate::factorization::lu::DenseLu;
use crate::linop::{check_apply_dims, LinOp};
use crate::log::OpTimer;
use crate::matrix::csr::Csr;
use crate::matrix::dense::Dense;
use pygko_sim::ChunkWork;

/// Direct solver holding a dense LU factorization of a sparse matrix.
pub struct Direct<V> {
    exec: Executor,
    size: Dim2,
    lu: DenseLu,
    _marker: std::marker::PhantomData<V>,
}

impl<V: Value> Direct<V> {
    /// Factorizes the matrix (in `f64`).
    pub fn new<I: Index>(matrix: &Csr<V, I>) -> Result<Self> {
        let size = matrix.size();
        let n = size.rows;
        let dense = matrix.to_dense();
        let host: Vec<f64> = dense.as_slice().iter().map(|v| v.to_f64()).collect();
        let lu = DenseLu::factor(n, &host)?;
        // Charge the O(n^3) factorization as one large kernel.
        let n3 = (n * n * n) as f64;
        matrix.executor().launch(&[ChunkWork::new(
            (n * n * 8) as f64,
            0.0,
            2.0 / 3.0 * n3,
        )]);
        Ok(Direct {
            exec: matrix.executor().clone(),
            size,
            lu,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<V: Value> LinOp<V> for Direct<V> {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        &self.exec
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        let _timer = OpTimer::new(&self.exec, "solver::Direct");
        let n = self.size.rows;
        let k = b.size().cols;
        let bv = b.as_slice();
        let xs = x.as_mut_slice();
        let mut rhs = vec![0.0f64; n];
        for c in 0..k {
            for i in 0..n {
                rhs[i] = bv[i * k + c].to_f64();
            }
            let sol = self.lu.solve(&rhs)?;
            for i in 0..n {
                xs[i * k + c] = V::from_f64(sol[i]);
            }
        }
        // Two triangular sweeps per right-hand side.
        self.exec.launch(&[ChunkWork::new(
            (n * n * 8 * k) as f64,
            0.0,
            (2 * n * n * k) as f64,
        )]);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "solver::Direct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_exactly() {
        let exec = Executor::reference();
        let n = 20;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 5.0));
            if i > 0 {
                t.push((i, i - 1, -2.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let x_true = Dense::<f64>::vector(&exec, n, 3.0);
        let mut b = Dense::zeros(&exec, Dim2::new(n, 1));
        a.apply(&x_true, &mut b).unwrap();

        let direct = Direct::new(&a).unwrap();
        let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
        direct.apply(&b, &mut x).unwrap();
        for (got, want) in x.to_host_vec().iter().zip(x_true.to_host_vec()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_matrix_fails_at_construction() {
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(2),
            &[(0, 0, 1.0), (1, 0, 2.0)],
        )
        .unwrap();
        assert!(Direct::new(&a).is_err());
    }

    #[test]
    fn multiple_right_hand_sides() {
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(2),
            &[(0, 0, 2.0), (1, 1, 4.0)],
        )
        .unwrap();
        let direct = Direct::new(&a).unwrap();
        let b = Dense::from_rows(&exec, &[[2.0f64, 4.0], [4.0, 8.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(2, 2));
        direct.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn works_in_f32_with_f64_factorization() {
        let exec = Executor::reference();
        let a = Csr::<f32, i32>::from_triplets(
            &exec,
            Dim2::square(2),
            &[(0, 0, 3.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)],
        )
        .unwrap();
        let direct = Direct::new(&a).unwrap();
        let b = Dense::from_rows(&exec, &[[4.0f32], [3.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(2, 1));
        direct.apply(&b, &mut x).unwrap();
        assert!((x.at(0, 0) - 1.0).abs() < 1e-5);
        assert!((x.at(1, 0) - 1.0).abs() < 1e-5);
    }
}
