//! Conjugate Gradient Squared method (Sonneveld 1989).
//!
//! CGS handles unsymmetric systems without transpose applications by
//! squaring the BiCG polynomial. It is one of the three solvers the paper
//! benchmarks against CuPy (§6.2.1), where it shows the largest speedups.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::Value;
use crate::executor::Executor;
use crate::linop::LinOp;
use crate::log::{ConvergenceLogger, Logger, OpTimer};
use crate::matrix::dense::Dense;
use crate::solver::SolverCore;
use crate::stop::{Criteria, StopReason};
use std::sync::Arc;

/// The CGS solver.
pub struct Cgs<V: Value> {
    core: SolverCore<V>,
}

impl<V: Value> Cgs<V> {
    /// Creates a CGS solver for the given system operator.
    pub fn new(system: Arc<dyn LinOp<V>>) -> Result<Self> {
        Ok(Cgs {
            core: SolverCore::new("solver::Cgs", system)?,
        })
    }

    /// Attaches a logger observing this solver's iteration events.
    pub fn with_logger(self, logger: Arc<dyn Logger>) -> Self {
        self.core.add_logger(logger);
        self
    }

    /// Attaches a logger without consuming the solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.add_logger(logger);
    }

    /// Sets the preconditioner.
    pub fn with_preconditioner(mut self, precond: Arc<dyn LinOp<V>>) -> Result<Self> {
        self.core.set_preconditioner(precond)?;
        Ok(self)
    }

    /// Sets the stopping criteria.
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// The logger recording residual history.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.core.logger
    }
}

impl<V: Value> LinOp<V> for Cgs<V> {
    fn size(&self) -> Dim2 {
        self.core.system.size()
    }

    fn executor(&self) -> &Executor {
        self.core.system.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        let core = &self.core;
        core.check_vectors(b, x)?;
        let exec = x.executor().clone();
        let _solve_timer = OpTimer::new(&exec, self.op_name());
        let n = self.size().rows;
        let dim = Dim2::new(n, 1);

        let mut r = Dense::zeros(&exec, dim);
        core.residual(b, x, &mut r)?;
        let r_tilde = r.clone();
        let mut u = Dense::zeros(&exec, dim);
        let mut p = Dense::zeros(&exec, dim);
        let mut q = Dense::zeros(&exec, dim);
        let mut v = Dense::zeros(&exec, dim);
        let mut hat = Dense::zeros(&exec, dim);
        let mut t = Dense::zeros(&exec, dim);

        let baseline = r.compute_norm2();
        core.logger.begin(baseline);
        if let Some(reason) = core.check(0, baseline, baseline) {
            core.logger.finish(0, reason);
            return Ok(());
        }

        let mut rho_old = 1.0f64;
        let mut iter = 0usize;
        loop {
            iter += 1;
            let rho = r_tilde.compute_dot(&r)?;
            if rho == 0.0 || !rho.is_finite() {
                core.logger.finish(iter - 1, StopReason::Breakdown);
                return Ok(());
            }
            if iter == 1 {
                u.copy_from(&r)?;
                p.copy_from(&u)?;
            } else {
                let beta = rho / rho_old;
                // u = r + beta * q
                u.copy_from(&r)?;
                u.add_scaled(V::from_f64(beta), &q)?;
                // p = u + beta * (q + beta * p)
                t.copy_from(&q)?;
                t.add_scaled(V::from_f64(beta), &p)?;
                p.copy_from(&u)?;
                p.add_scaled(V::from_f64(beta), &t)?;
            }
            // v = A M^{-1} p
            core.precond.apply(&p, &mut hat)?;
            core.system.apply(&hat, &mut v)?;
            let sigma = r_tilde.compute_dot(&v)?;
            if sigma == 0.0 || !sigma.is_finite() {
                core.logger.finish(iter - 1, StopReason::Breakdown);
                return Ok(());
            }
            let alpha = rho / sigma;
            // q = u - alpha * v
            q.copy_from(&u)?;
            q.add_scaled(V::from_f64(-alpha), &v)?;
            // hat = M^{-1} (u + q)
            t.copy_from(&u)?;
            t.add_scaled(V::one(), &q)?;
            core.precond.apply(&t, &mut hat)?;
            // x += alpha * hat;  r -= alpha * A hat
            x.add_scaled(V::from_f64(alpha), &hat)?;
            core.system.apply(&hat, &mut t)?;
            r.add_scaled(V::from_f64(-alpha), &t)?;

            let res_norm = r.compute_norm2();
            core.logger.record_residual(iter, res_norm);
            if let Some(reason) = core.check(iter, res_norm, baseline) {
                core.logger.finish(iter, reason);
                return Ok(());
            }
            rho_old = rho;
        }
    }

    fn op_name(&self) -> &'static str {
        "solver::Cgs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::csr::Csr;

    /// Unsymmetric convection-diffusion-like matrix.
    fn convdiff(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.5)); // upwind bias: unsymmetric
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
            }
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    #[test]
    fn solves_unsymmetric_system() {
        let exec = Executor::reference();
        let a = convdiff(&exec, 64);
        let solver = Cgs::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let b = Dense::<f64>::vector(&exec, 64, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 64, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert!(solver.logger().snapshot().converged());

        let mut r = Dense::zeros(&exec, Dim2::new(64, 1));
        r.copy_from(&b).unwrap();
        a.apply_advanced(-1.0, &x, 1.0, &mut r).unwrap();
        assert!(r.compute_norm2() < 1e-7, "residual {}", r.compute_norm2());
    }

    #[test]
    fn respects_iteration_limit() {
        let exec = Executor::reference();
        let a = convdiff(&exec, 128);
        let solver = Cgs::new(a)
            .unwrap()
            .with_criteria(Criteria::iterations(5));
        let b = Dense::<f64>::vector(&exec, 128, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 128, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert_eq!(rec.iterations, 5);
        assert_eq!(rec.stop_reason, Some(StopReason::MaxIterations));
        assert_eq!(rec.residual_history.len(), 5);
    }

    #[test]
    fn preconditioned_cgs_converges_faster() {
        use crate::preconditioner::jacobi::Jacobi;
        let exec = Executor::reference();
        let n = 64;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 2.0 + (i % 7) as f64 * 5.0));
            if i > 0 {
                t.push((i, i - 1, -0.8));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.3));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        let b = Dense::<f64>::vector(&exec, n, 1.0);

        let plain = Cgs::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let mut x1 = Dense::<f64>::vector(&exec, n, 0.0);
        plain.apply(&b, &mut x1).unwrap();

        let pre = Cgs::new(a.clone())
            .unwrap()
            .with_preconditioner(Arc::new(Jacobi::new(&*a).unwrap()))
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let mut x2 = Dense::<f64>::vector(&exec, n, 0.0);
        pre.apply(&b, &mut x2).unwrap();

        let (i1, i2) = (
            plain.logger().snapshot().iterations,
            pre.logger().snapshot().iterations,
        );
        assert!(i2 <= i1, "preconditioned {i2} vs plain {i1}");
    }
}
