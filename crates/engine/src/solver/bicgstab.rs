//! BiConjugate Gradient Stabilized method (van der Vorst 1992).

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::Value;
use crate::executor::Executor;
use crate::linop::LinOp;
use crate::log::{ConvergenceLogger, Logger, OpTimer};
use crate::matrix::dense::Dense;
use crate::solver::SolverCore;
use crate::stop::{Criteria, StopReason};
use std::sync::Arc;

/// The BiCGStab solver for general (unsymmetric) systems.
pub struct BiCgStab<V: Value> {
    core: SolverCore<V>,
}

impl<V: Value> BiCgStab<V> {
    /// Creates a BiCGStab solver for the given system operator.
    pub fn new(system: Arc<dyn LinOp<V>>) -> Result<Self> {
        Ok(BiCgStab {
            core: SolverCore::new("solver::Bicgstab", system)?,
        })
    }

    /// Attaches a logger observing this solver's iteration events.
    pub fn with_logger(self, logger: Arc<dyn Logger>) -> Self {
        self.core.add_logger(logger);
        self
    }

    /// Attaches a logger without consuming the solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.add_logger(logger);
    }

    /// Sets the preconditioner.
    pub fn with_preconditioner(mut self, precond: Arc<dyn LinOp<V>>) -> Result<Self> {
        self.core.set_preconditioner(precond)?;
        Ok(self)
    }

    /// Sets the stopping criteria.
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// The logger recording residual history.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.core.logger
    }
}

impl<V: Value> LinOp<V> for BiCgStab<V> {
    fn size(&self) -> Dim2 {
        self.core.system.size()
    }

    fn executor(&self) -> &Executor {
        self.core.system.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        let core = &self.core;
        core.check_vectors(b, x)?;
        let exec = x.executor().clone();
        let _solve_timer = OpTimer::new(&exec, self.op_name());
        let n = self.size().rows;
        let dim = Dim2::new(n, 1);

        let mut r = Dense::zeros(&exec, dim);
        core.residual(b, x, &mut r)?;
        let r_tilde = r.clone();
        let mut p = Dense::zeros(&exec, dim);
        let mut v = Dense::zeros(&exec, dim);
        let mut s = Dense::zeros(&exec, dim);
        let mut t = Dense::zeros(&exec, dim);
        let mut p_hat = Dense::zeros(&exec, dim);
        let mut s_hat = Dense::zeros(&exec, dim);

        let baseline = r.compute_norm2();
        core.logger.begin(baseline);
        if let Some(reason) = core.check(0, baseline, baseline) {
            core.logger.finish(0, reason);
            return Ok(());
        }

        let mut rho_old = 1.0f64;
        let mut alpha = 1.0f64;
        let mut omega = 1.0f64;
        let mut iter = 0usize;
        loop {
            iter += 1;
            let rho = r_tilde.compute_dot(&r)?;
            if rho == 0.0 || omega == 0.0 || !rho.is_finite() {
                core.logger.finish(iter - 1, StopReason::Breakdown);
                return Ok(());
            }
            if iter == 1 {
                p.copy_from(&r)?;
            } else {
                let beta = (rho / rho_old) * (alpha / omega);
                // p = r + beta * (p - omega * v)
                p.add_scaled(V::from_f64(-omega), &v)?;
                p.scale_add(V::one(), &r, V::from_f64(beta))?;
            }
            core.precond.apply(&p, &mut p_hat)?;
            core.system.apply(&p_hat, &mut v)?;
            let denom = r_tilde.compute_dot(&v)?;
            if denom == 0.0 || !denom.is_finite() {
                core.logger.finish(iter - 1, StopReason::Breakdown);
                return Ok(());
            }
            alpha = rho / denom;
            // s = r - alpha * v
            s.copy_from(&r)?;
            s.add_scaled(V::from_f64(-alpha), &v)?;

            let s_norm = s.compute_norm2();
            let half_step = core.check(iter, s_norm, baseline);
            if let Some(reason) = half_step {
                if reason != StopReason::MaxIterations {
                    // Early half-step convergence (or a non-finite s_norm,
                    // which `check` reports as Breakdown): the half-step
                    // update completes this iteration, so it is counted.
                    x.add_scaled(V::from_f64(alpha), &p_hat)?;
                    core.logger.record_residual(iter, s_norm);
                    core.logger.finish(iter, reason);
                    return Ok(());
                }
            }

            core.precond.apply(&s, &mut s_hat)?;
            core.system.apply(&s_hat, &mut t)?;
            let tt = t.compute_dot(&t)?;
            if tt == 0.0 || !tt.is_finite() {
                core.logger.finish(iter - 1, StopReason::Breakdown);
                return Ok(());
            }
            omega = t.compute_dot(&s)? / tt;
            // x += alpha * p_hat + omega * s_hat
            x.add_scaled(V::from_f64(alpha), &p_hat)?;
            x.add_scaled(V::from_f64(omega), &s_hat)?;
            // r = s - omega * t
            r.copy_from(&s)?;
            r.add_scaled(V::from_f64(-omega), &t)?;

            let res_norm = r.compute_norm2();
            core.logger.record_residual(iter, res_norm);
            if let Some(reason) = core.check(iter, res_norm, baseline) {
                core.logger.finish(iter, reason);
                return Ok(());
            }
            rho_old = rho;
        }
    }

    fn op_name(&self) -> &'static str {
        "solver::Bicgstab"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::csr::Csr;

    fn unsymmetric(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 5.0));
            if i > 0 {
                t.push((i, i - 1, -2.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
            if i + 3 < n {
                t.push((i, i + 3, 0.5));
            }
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    #[test]
    fn solves_unsymmetric_system() {
        let exec = Executor::reference();
        let a = unsymmetric(&exec, 80);
        let solver = BiCgStab::new(a.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let b = Dense::<f64>::vector(&exec, 80, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 80, 0.0);
        solver.apply(&b, &mut x).unwrap();
        assert!(solver.logger().snapshot().converged());

        let mut r = Dense::zeros(&exec, Dim2::new(80, 1));
        r.copy_from(&b).unwrap();
        a.apply_advanced(-1.0, &x, 1.0, &mut r).unwrap();
        assert!(r.compute_norm2() < 1e-7, "residual {}", r.compute_norm2());
    }

    #[test]
    fn honors_iteration_limit() {
        let exec = Executor::reference();
        let a = unsymmetric(&exec, 100);
        let solver = BiCgStab::new(a).unwrap().with_criteria(Criteria::iterations(4));
        let b = Dense::<f64>::vector(&exec, 100, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 100, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert_eq!(rec.stop_reason, Some(StopReason::MaxIterations));
        assert!(rec.iterations <= 4);
    }

    #[test]
    fn with_ilu_preconditioner() {
        use crate::preconditioner::ilu::Ilu;
        let exec = Executor::reference();
        let a = unsymmetric(&exec, 60);
        let ilu = Ilu::new(&*a).unwrap();
        let solver = BiCgStab::new(a.clone())
            .unwrap()
            .with_preconditioner(Arc::new(ilu))
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10));
        let b = Dense::<f64>::vector(&exec, 60, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 60, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(rec.converged());
        assert!(rec.iterations < 30, "ILU-preconditioned should be fast, took {}", rec.iterations);
    }
}
