//! Flexible Conjugate Gradient (Ginkgo's `solver::Fcg`).
//!
//! FCG replaces CG's fixed beta formula with the Polak–Ribière form
//! `beta = <r_new - r_old, z_new> / <r_old, z_old>`, which tolerates
//! preconditioners that change between iterations (e.g. inner iterative
//! solves) at the cost of one extra stored vector.

use crate::base::dim::Dim2;
use crate::base::error::Result;
use crate::base::types::Value;
use crate::executor::Executor;
use crate::linop::LinOp;
use crate::log::{ConvergenceLogger, Logger, OpTimer};
use crate::matrix::dense::Dense;
use crate::solver::SolverCore;
use crate::stop::{Criteria, StopReason};
use std::sync::Arc;

/// The flexible CG solver.
pub struct Fcg<V: Value> {
    core: SolverCore<V>,
}

impl<V: Value> Fcg<V> {
    /// Creates an FCG solver for the given system operator.
    pub fn new(system: Arc<dyn LinOp<V>>) -> Result<Self> {
        Ok(Fcg {
            core: SolverCore::new("solver::Fcg", system)?,
        })
    }

    /// Attaches a logger observing this solver's iteration events.
    pub fn with_logger(self, logger: Arc<dyn Logger>) -> Self {
        self.core.add_logger(logger);
        self
    }

    /// Attaches a logger without consuming the solver.
    pub fn add_logger(&self, logger: Arc<dyn Logger>) {
        self.core.add_logger(logger);
    }

    /// Sets the (possibly nonlinear/varying) preconditioner.
    pub fn with_preconditioner(mut self, precond: Arc<dyn LinOp<V>>) -> Result<Self> {
        self.core.set_preconditioner(precond)?;
        Ok(self)
    }

    /// Sets the stopping criteria.
    pub fn with_criteria(mut self, criteria: Criteria) -> Self {
        self.core.criteria = criteria;
        self
    }

    /// The logger recording residual history.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.core.logger
    }
}

impl<V: Value> LinOp<V> for Fcg<V> {
    fn size(&self) -> Dim2 {
        self.core.system.size()
    }

    fn executor(&self) -> &Executor {
        self.core.system.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        let core = &self.core;
        core.check_vectors(b, x)?;
        let exec = x.executor().clone();
        let _solve_timer = OpTimer::new(&exec, self.op_name());
        let n = self.size().rows;
        let dim = Dim2::new(n, 1);

        let mut r = Dense::zeros(&exec, dim);
        core.residual(b, x, &mut r)?;
        let mut z = Dense::zeros(&exec, dim);
        core.precond.apply(&r, &mut z)?;
        let mut p = z.clone();
        let mut q = Dense::zeros(&exec, dim);
        let mut r_old = r.clone();

        let baseline = r.compute_norm2();
        core.logger.begin(baseline);
        if let Some(reason) = core.check(0, baseline, baseline) {
            core.logger.finish(0, reason);
            return Ok(());
        }

        let mut rho = r.compute_dot(&z)?;
        let mut iter = 0usize;
        loop {
            iter += 1;
            core.system.apply(&p, &mut q)?;
            let pq = p.compute_dot(&q)?;
            if pq == 0.0 || !pq.is_finite() || rho == 0.0 || !rho.is_finite() {
                core.logger.finish(iter - 1, StopReason::Breakdown);
                return Ok(());
            }
            let alpha = rho / pq;
            x.add_scaled(V::from_f64(alpha), &p)?;
            r_old.copy_from(&r)?;
            r.add_scaled(V::from_f64(-alpha), &q)?;

            let res_norm = r.compute_norm2();
            core.logger.record_residual(iter, res_norm);
            if let Some(reason) = core.check(iter, res_norm, baseline) {
                core.logger.finish(iter, reason);
                return Ok(());
            }

            core.precond.apply(&r, &mut z)?;
            // Polak-Ribière: beta = <r - r_old, z> / rho_old.
            let rz = r.compute_dot(&z)?;
            let r_old_z = r_old.compute_dot(&z)?;
            let beta = (rz - r_old_z) / rho;
            p.scale_add(V::one(), &z, V::from_f64(beta))?;
            rho = rz;
        }
    }

    fn op_name(&self) -> &'static str {
        "solver::Fcg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::csr::Csr;

    fn spd(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    #[test]
    fn matches_cg_on_fixed_preconditioner() {
        // With a constant preconditioner FCG and CG follow the same Krylov
        // space; iteration counts agree.
        use crate::solver::Cg;
        let exec = Executor::reference();
        let a = spd(&exec, 64);
        let criteria = Criteria::iterations_and_reduction(500, 1e-10);
        let b = Dense::<f64>::vector(&exec, 64, 1.0);

        let fcg = Fcg::new(a.clone()).unwrap().with_criteria(criteria);
        let mut x1 = Dense::<f64>::vector(&exec, 64, 0.0);
        fcg.apply(&b, &mut x1).unwrap();

        let cg = Cg::new(a).unwrap().with_criteria(criteria);
        let mut x2 = Dense::<f64>::vector(&exec, 64, 0.0);
        cg.apply(&b, &mut x2).unwrap();

        let (i1, i2) = (
            fcg.logger().snapshot().iterations,
            cg.logger().snapshot().iterations,
        );
        assert!(
            i1.abs_diff(i2) <= 2,
            "fcg {i1} vs cg {i2} should be nearly identical"
        );
        assert!(fcg.logger().snapshot().converged());
    }

    #[test]
    fn survives_a_varying_preconditioner() {
        // A deliberately iteration-dependent preconditioner: alternates
        // between identity-ish scalings. Plain CG's beta formula degrades;
        // FCG still converges.
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Flip {
            exec: Executor,
            n: usize,
            count: AtomicUsize,
        }
        impl LinOp<f64> for Flip {
            fn size(&self) -> Dim2 {
                Dim2::square(self.n)
            }
            fn executor(&self) -> &Executor {
                &self.exec
            }
            fn apply(&self, b: &Dense<f64>, x: &mut Dense<f64>) -> Result<()> {
                let k = self.count.fetch_add(1, Ordering::Relaxed);
                let s = if k.is_multiple_of(2) { 0.5 } else { 0.25 };
                x.copy_from(b)?;
                x.scale(s);
                Ok(())
            }
        }
        let exec = Executor::reference();
        let a = spd(&exec, 48);
        let flip = Arc::new(Flip {
            exec: exec.clone(),
            n: 48,
            count: AtomicUsize::new(0),
        });
        let fcg = Fcg::new(a.clone())
            .unwrap()
            .with_preconditioner(flip)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(1000, 1e-9));
        let b = Dense::<f64>::vector(&exec, 48, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 48, 0.0);
        fcg.apply(&b, &mut x).unwrap();
        assert!(fcg.logger().snapshot().converged());

        // Verify the true residual.
        let mut r = Dense::zeros(&exec, Dim2::new(48, 1));
        r.copy_from(&b).unwrap();
        a.apply_advanced(-1.0, &x, 1.0, &mut r).unwrap();
        assert!(r.compute_norm2() < 1e-6, "residual {}", r.compute_norm2());
    }
}
