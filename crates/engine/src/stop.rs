//! Stopping criteria (Ginkgo's `stop::Criterion` factories).
//!
//! The paper's examples (Listings 1 and 2) combine a maximum iteration count
//! with a relative residual reduction factor; criteria are OR-combined, as
//! in Ginkgo.

/// Why an iteration stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration limit was reached without convergence.
    MaxIterations,
    /// `||r|| <= reduction_factor * ||r0||`.
    ResidualReduction,
    /// `||r|| <= absolute tolerance`.
    AbsoluteResidual,
    /// The iteration broke down numerically (reported by solvers).
    Breakdown,
}

impl StopReason {
    /// True if the stop indicates convergence (rather than giving up).
    pub fn is_converged(self) -> bool {
        matches!(
            self,
            StopReason::ResidualReduction | StopReason::AbsoluteResidual
        )
    }
}

/// OR-combination of stopping criteria.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Criteria {
    /// Stop after this many iterations (always present as a safety net).
    pub max_iters: usize,
    /// Stop when the residual norm has been reduced by this factor relative
    /// to the initial residual.
    pub reduction_factor: Option<f64>,
    /// Stop when the residual norm falls below this absolute value.
    pub abs_tolerance: Option<f64>,
}

impl Default for Criteria {
    fn default() -> Self {
        Criteria {
            max_iters: 1000,
            reduction_factor: Some(1e-6),
            abs_tolerance: None,
        }
    }
}

impl Criteria {
    /// Criteria with only an iteration limit (the paper's fixed-iteration
    /// solver benchmarks disable residual-based stopping this way).
    pub fn iterations(max_iters: usize) -> Self {
        Criteria {
            max_iters,
            reduction_factor: None,
            abs_tolerance: None,
        }
    }

    /// Iteration limit plus relative residual reduction (Listing 1's setup).
    pub fn iterations_and_reduction(max_iters: usize, reduction_factor: f64) -> Self {
        Criteria {
            max_iters,
            reduction_factor: Some(reduction_factor),
            abs_tolerance: None,
        }
    }

    /// Adds an absolute residual tolerance.
    pub fn with_abs_tolerance(mut self, tol: f64) -> Self {
        self.abs_tolerance = Some(tol);
        self
    }

    /// Checks the state *after* `iters_done` completed iterations.
    ///
    /// `baseline` is the initial residual norm. Returns `Some(reason)` when
    /// the iteration should stop.
    ///
    /// A non-finite residual norm (NaN or ±Inf) stops the iteration
    /// immediately with [`StopReason::Breakdown`]: every float comparison
    /// against NaN is false, so without this check a diverging solve would
    /// silently burn `max_iters` iterations before giving up.
    pub fn check(&self, iters_done: usize, res_norm: f64, baseline: f64) -> Option<StopReason> {
        if !res_norm.is_finite() {
            return Some(StopReason::Breakdown);
        }
        if let Some(tol) = self.abs_tolerance {
            if res_norm <= tol {
                return Some(StopReason::AbsoluteResidual);
            }
        }
        if let Some(factor) = self.reduction_factor {
            if res_norm <= factor * baseline {
                return Some(StopReason::ResidualReduction);
            }
        }
        if iters_done >= self.max_iters {
            return Some(StopReason::MaxIterations);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_listing() {
        let c = Criteria::default();
        assert_eq!(c.max_iters, 1000);
        assert_eq!(c.reduction_factor, Some(1e-6));
    }

    #[test]
    fn iteration_limit_fires_at_limit() {
        let c = Criteria::iterations(10);
        assert_eq!(c.check(9, 1.0, 1.0), None);
        assert_eq!(c.check(10, 1.0, 1.0), Some(StopReason::MaxIterations));
    }

    #[test]
    fn reduction_factor_is_relative() {
        let c = Criteria::iterations_and_reduction(100, 1e-3);
        // 0.05 <= 1e-3 * 100 -> converged relative to the large baseline...
        assert_eq!(c.check(1, 0.05, 100.0), Some(StopReason::ResidualReduction));
        // ...but not relative to a baseline of 1.
        assert_eq!(c.check(1, 0.05, 1.0), None);
    }

    #[test]
    fn absolute_tolerance_takes_priority() {
        let c = Criteria::iterations_and_reduction(100, 1e-3).with_abs_tolerance(1e-8);
        assert_eq!(c.check(1, 1e-9, 1.0), Some(StopReason::AbsoluteResidual));
    }

    #[test]
    fn non_finite_residual_is_breakdown() {
        // NaN/Inf must short-circuit every criterion, including the
        // iteration limit: a diverged solve should stop now, not at
        // max_iters.
        for c in [
            Criteria::default(),
            Criteria::iterations(1000),
            Criteria::iterations_and_reduction(1000, 1e-8).with_abs_tolerance(1e-12),
        ] {
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert_eq!(c.check(1, bad, 1.0), Some(StopReason::Breakdown));
            }
            // A non-finite baseline alone does not break the run down...
            assert_eq!(c.check(1, 1.0, f64::NAN), None);
        }
        // ...and finite residuals still follow the normal rules.
        let c = Criteria::iterations_and_reduction(10, 1e-3);
        assert_eq!(c.check(1, 0.5, 1.0), None);
    }

    #[test]
    fn converged_classification() {
        assert!(StopReason::ResidualReduction.is_converged());
        assert!(StopReason::AbsoluteResidual.is_converged());
        assert!(!StopReason::MaxIterations.is_converged());
        assert!(!StopReason::Breakdown.is_converged());
    }
}
