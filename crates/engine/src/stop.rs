//! Stopping criteria (Ginkgo's `stop::Criterion` factories).
//!
//! The paper's examples (Listings 1 and 2) combine a maximum iteration count
//! with a relative residual reduction factor; criteria are OR-combined, as
//! in Ginkgo.

/// Why an iteration stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration limit was reached without convergence.
    MaxIterations,
    /// `||r|| <= reduction_factor * ||r0||`.
    ResidualReduction,
    /// `||r|| <= absolute tolerance`.
    AbsoluteResidual,
    /// The iteration broke down numerically (reported by solvers).
    Breakdown,
}

impl StopReason {
    /// True if the stop indicates convergence (rather than giving up).
    pub fn is_converged(self) -> bool {
        matches!(
            self,
            StopReason::ResidualReduction | StopReason::AbsoluteResidual
        )
    }
}

/// OR-combination of stopping criteria.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Criteria {
    /// Stop after this many iterations (always present as a safety net).
    pub max_iters: usize,
    /// Stop when the residual norm has been reduced by this factor relative
    /// to the initial residual.
    pub reduction_factor: Option<f64>,
    /// Stop when the residual norm falls below this absolute value.
    pub abs_tolerance: Option<f64>,
}

impl Default for Criteria {
    fn default() -> Self {
        Criteria {
            max_iters: 1000,
            reduction_factor: Some(1e-6),
            abs_tolerance: None,
        }
    }
}

impl Criteria {
    /// Criteria with only an iteration limit (the paper's fixed-iteration
    /// solver benchmarks disable residual-based stopping this way).
    pub fn iterations(max_iters: usize) -> Self {
        Criteria {
            max_iters,
            reduction_factor: None,
            abs_tolerance: None,
        }
    }

    /// Iteration limit plus relative residual reduction (Listing 1's setup).
    pub fn iterations_and_reduction(max_iters: usize, reduction_factor: f64) -> Self {
        Criteria {
            max_iters,
            reduction_factor: Some(reduction_factor),
            abs_tolerance: None,
        }
    }

    /// Adds an absolute residual tolerance.
    pub fn with_abs_tolerance(mut self, tol: f64) -> Self {
        self.abs_tolerance = Some(tol);
        self
    }

    /// Checks the state *after* `iters_done` completed iterations.
    ///
    /// `baseline` is the initial residual norm. Returns `Some(reason)` when
    /// the iteration should stop.
    ///
    /// A non-finite residual norm (NaN or ±Inf) stops the iteration
    /// immediately with [`StopReason::Breakdown`]: every float comparison
    /// against NaN is false, so without this check a diverging solve would
    /// silently burn `max_iters` iterations before giving up. The same guard
    /// applies to `baseline`: a poisoned initial residual would make
    /// `res_norm <= factor * baseline` silently false on every iteration, so
    /// the reduction criterion could never fire and the solve would also
    /// burn `max_iters`.
    ///
    /// # Zero-baseline contract
    ///
    /// When residual-based stopping is enabled (`reduction_factor` is set),
    /// a `baseline` of exactly `0.0` means the initial guess already solves
    /// the system exactly (e.g. `b = 0`, `x0 = 0`): the check converges at
    /// once with [`StopReason::ResidualReduction`] while `res_norm` is still
    /// zero, and reports [`StopReason::Breakdown`] if a later iteration
    /// presents a nonzero residual against that zero baseline — an exact
    /// solution the iteration subsequently left can only mean numerical
    /// trouble, and no reduction of a nonzero residual ever satisfies
    /// `res_norm <= factor * 0.0`. Iteration-only criteria
    /// ([`Criteria::iterations`]) are unaffected and still run their fixed
    /// iteration count; an `abs_tolerance`, checked first, also still fires
    /// on its own terms.
    pub fn check(&self, iters_done: usize, res_norm: f64, baseline: f64) -> Option<StopReason> {
        if !res_norm.is_finite() || !baseline.is_finite() {
            return Some(StopReason::Breakdown);
        }
        if let Some(tol) = self.abs_tolerance {
            if res_norm <= tol {
                return Some(StopReason::AbsoluteResidual);
            }
        }
        if let Some(factor) = self.reduction_factor {
            if baseline == 0.0 {
                return Some(if res_norm == 0.0 {
                    StopReason::ResidualReduction
                } else {
                    StopReason::Breakdown
                });
            }
            if res_norm <= factor * baseline {
                return Some(StopReason::ResidualReduction);
            }
        }
        if iters_done >= self.max_iters {
            return Some(StopReason::MaxIterations);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_listing() {
        let c = Criteria::default();
        assert_eq!(c.max_iters, 1000);
        assert_eq!(c.reduction_factor, Some(1e-6));
    }

    #[test]
    fn iteration_limit_fires_at_limit() {
        let c = Criteria::iterations(10);
        assert_eq!(c.check(9, 1.0, 1.0), None);
        assert_eq!(c.check(10, 1.0, 1.0), Some(StopReason::MaxIterations));
    }

    #[test]
    fn reduction_factor_is_relative() {
        let c = Criteria::iterations_and_reduction(100, 1e-3);
        // 0.05 <= 1e-3 * 100 -> converged relative to the large baseline...
        assert_eq!(c.check(1, 0.05, 100.0), Some(StopReason::ResidualReduction));
        // ...but not relative to a baseline of 1.
        assert_eq!(c.check(1, 0.05, 1.0), None);
    }

    #[test]
    fn absolute_tolerance_takes_priority() {
        let c = Criteria::iterations_and_reduction(100, 1e-3).with_abs_tolerance(1e-8);
        assert_eq!(c.check(1, 1e-9, 1.0), Some(StopReason::AbsoluteResidual));
    }

    #[test]
    fn non_finite_residual_is_breakdown() {
        // NaN/Inf must short-circuit every criterion, including the
        // iteration limit: a diverged solve should stop now, not at
        // max_iters.
        for c in [
            Criteria::default(),
            Criteria::iterations(1000),
            Criteria::iterations_and_reduction(1000, 1e-8).with_abs_tolerance(1e-12),
        ] {
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert_eq!(c.check(1, bad, 1.0), Some(StopReason::Breakdown));
            }
        }
        // ...and finite residuals still follow the normal rules.
        let c = Criteria::iterations_and_reduction(10, 1e-3);
        assert_eq!(c.check(1, 0.5, 1.0), None);
    }

    #[test]
    fn non_finite_baseline_is_breakdown() {
        // A poisoned baseline makes `res_norm <= factor * baseline` false
        // forever (NaN) or trivially true (+Inf); either way the comparison
        // is meaningless and the solve must stop now, mirroring the
        // non-finite-res_norm guard above.
        for c in [
            Criteria::default(),
            Criteria::iterations(1000),
            Criteria::iterations_and_reduction(1000, 1e-8).with_abs_tolerance(1e-12),
        ] {
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert_eq!(c.check(1, 1.0, bad), Some(StopReason::Breakdown));
                assert_eq!(c.check(0, 1.0, bad), Some(StopReason::Breakdown));
            }
        }
    }

    #[test]
    fn zero_baseline_converges_immediately_under_reduction() {
        // b = 0, x0 = 0: the initial check sees res_norm == baseline == 0
        // and must converge at once instead of relying on `0.0 <= 0.0`.
        let c = Criteria::iterations_and_reduction(100, 1e-6);
        assert_eq!(c.check(0, 0.0, 0.0), Some(StopReason::ResidualReduction));
        // An exact initial solution the iteration then *left* is numerical
        // trouble: no nonzero residual can ever be reduced below zero.
        assert_eq!(c.check(3, 0.5, 0.0), Some(StopReason::Breakdown));
        // An absolute tolerance still takes priority over the contract.
        let c = c.with_abs_tolerance(1e-8);
        assert_eq!(c.check(0, 0.0, 0.0), Some(StopReason::AbsoluteResidual));
        // Iteration-only criteria keep their fixed-iteration semantics.
        let c = Criteria::iterations(10);
        assert_eq!(c.check(0, 0.0, 0.0), None);
        assert_eq!(c.check(10, 0.0, 0.0), Some(StopReason::MaxIterations));
    }

    #[test]
    fn converged_classification() {
        assert!(StopReason::ResidualReduction.is_converged());
        assert!(StopReason::AbsoluteResidual.is_converged());
        assert!(!StopReason::MaxIterations.is_converged());
        assert!(!StopReason::Breakdown.is_converged());
    }
}
