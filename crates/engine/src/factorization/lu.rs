//! Dense LU factorization with partial pivoting.
//!
//! Backs the `Direct` solver binding the facade exposes. The factorization
//! is computed in `f64` regardless of the matrix value type, which is both
//! numerically safer and how mixed-precision direct solves are typically
//! staged.

use crate::base::error::{GkoError, Result};

/// A dense LU factorization `P A = L U` (row-major storage, pivoting
/// recorded as a row permutation).
#[derive(Debug, Clone)]
pub struct DenseLu {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U (on/above diagonal).
    lu: Vec<f64>,
    /// `perm[i]` is the original row index now in position `i`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factorizes a dense row-major `n x n` matrix.
    pub fn factor(n: usize, a: &[f64]) -> Result<Self> {
        if a.len() != n * n {
            return Err(GkoError::BadInput(format!(
                "LU input length {} != n^2 = {}",
                a.len(),
                n * n
            )));
        }
        let mut lu = a.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let cand = lu[i * n + k].abs();
                if cand > best {
                    best = cand;
                    p = i;
                }
            }
            if best == 0.0 {
                return Err(GkoError::Singular { at: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(DenseLu { n, lu, perm })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the factorization (one right-hand side).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(GkoError::BadInput(format!(
                "rhs length {} != n = {}",
                b.len(),
                self.n
            )));
        }
        let n = self.n;
        // Apply permutation, then forward substitution with unit L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            for j in 0..i {
                y[i] -= self.lu[i * n + j] * y[j];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                y[i] -= self.lu[i * n + j] * y[j];
            }
            y[i] /= self.lu[i * n + i];
        }
        Ok(y)
    }

    /// The determinant of `A` (product of pivots with permutation sign).
    pub fn determinant(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.n {
            det *= self.lu[i * self.n + i];
        }
        // Count permutation inversions for the sign.
        let mut visited = vec![false; self.n];
        let mut sign = 1.0;
        for start in 0..self.n {
            if visited[start] {
                continue;
            }
            let mut len = 0usize;
            let mut i = start;
            while !visited[i] {
                visited[i] = true;
                i = self.perm[i];
                len += 1;
            }
            if len.is_multiple_of(2) {
                sign = -sign;
            }
        }
        det * sign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_2x2() {
        // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
        let lu = DenseLu::factor(2, &[2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Without pivoting this matrix fails at k = 0.
        let lu = DenseLu::factor(2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        assert!(matches!(
            DenseLu::factor(2, &[1.0, 2.0, 2.0, 4.0]),
            Err(GkoError::Singular { .. })
        ));
    }

    #[test]
    fn random_system_roundtrip() {
        // Deterministic pseudo-random matrix; verify A * solve(b) == b.
        let n = 12;
        let mut a = vec![0.0f64; n * n];
        let mut state = 0x12345u64;
        for v in a.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
        }
        for i in 0..n {
            a[i * n + i] += n as f64; // diagonally dominant => well conditioned
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let lu = DenseLu::factor(n, &a).unwrap();
        let x = lu.solve(&b).unwrap();
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-9, "row {i}: {ax} vs {}", b[i]);
        }
    }

    #[test]
    fn determinant_of_known_matrix() {
        let lu = DenseLu::factor(2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((lu.determinant() - (-2.0)).abs() < 1e-12);
        let lu = DenseLu::factor(2, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((lu.determinant() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn wrong_sizes_are_rejected() {
        assert!(DenseLu::factor(2, &[1.0; 3]).is_err());
        let lu = DenseLu::factor(2, &[1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}
