//! ILU(0): incomplete LU factorization with zero fill-in.

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::matrix::csr::Csr;
use pygko_sim::ChunkWork;

/// Computes the ILU(0) factorization of a square CSR matrix.
///
/// Returns `(L, U)` where `L` is unit lower triangular (unit diagonal *not*
/// stored) and `U` is upper triangular including the diagonal, both on the
/// sparsity pattern of `A`. Fails with [`GkoError::Singular`] when a zero
/// pivot appears (e.g. a structurally missing diagonal).
///
/// The algorithm is the standard IKJ Gaussian elimination restricted to the
/// pattern; factorization values are computed in `f64` and rounded to `V`
/// once at the end, matching how Ginkgo performs high-precision generation.
pub fn ilu0<V: Value, I: Index>(a: &Csr<V, I>) -> Result<(Csr<V, I>, Csr<V, I>)> {
    if !a.size().is_square() {
        return Err(GkoError::BadInput("ILU(0) needs a square matrix".into()));
    }
    let n = a.size().rows;
    let rp = a.row_ptrs();
    let ci = a.col_idxs();
    let mut vals: Vec<f64> = a.values().iter().map(|v| v.to_f64()).collect();

    // Position of each row's diagonal entry in the value array.
    let mut diag_pos = vec![usize::MAX; n];
    for r in 0..n {
        let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
        if let Ok(pos) = ci[lo..hi].binary_search(&I::from_usize(r)) {
            diag_pos[r] = lo + pos;
        }
        if diag_pos[r] == usize::MAX {
            return Err(GkoError::Singular { at: r });
        }
    }

    // Column -> position map for the current row (reset lazily).
    let mut col_pos = vec![usize::MAX; n];
    for i in 0..n {
        let (lo, hi) = (rp[i].to_usize(), rp[i + 1].to_usize());
        for idx in lo..hi {
            col_pos[ci[idx].to_usize()] = idx;
        }
        for idx in lo..hi {
            let k = ci[idx].to_usize();
            if k >= i {
                break; // columns are sorted; past the strictly-lower part
            }
            let pivot = vals[diag_pos[k]];
            if pivot == 0.0 {
                return Err(GkoError::Singular { at: k });
            }
            let lik = vals[idx] / pivot;
            vals[idx] = lik;
            // Update the remainder of row i with row k's upper part.
            for kidx in (diag_pos[k] + 1)..rp[k + 1].to_usize() {
                let j = ci[kidx].to_usize();
                let pos = col_pos[j];
                if pos != usize::MAX && pos >= lo && pos < hi {
                    vals[pos] -= lik * vals[kidx];
                }
            }
        }
        if vals[diag_pos[i]] == 0.0 {
            return Err(GkoError::Singular { at: i });
        }
        for idx in lo..hi {
            col_pos[ci[idx].to_usize()] = usize::MAX;
        }
    }

    // Split into L (strict lower) and U (upper incl. diagonal).
    let mut l_trip: Vec<(usize, usize, V)> = Vec::new();
    let mut u_trip: Vec<(usize, usize, V)> = Vec::new();
    for r in 0..n {
        for idx in rp[r].to_usize()..rp[r + 1].to_usize() {
            let c = ci[idx].to_usize();
            let v = V::from_f64(vals[idx]);
            if c < r {
                l_trip.push((r, c, v));
            } else {
                u_trip.push((r, c, v));
            }
        }
    }
    let exec = a.executor();
    // Charge the factorization as one sequential kernel (row dependencies).
    let nnz = a.nnz() as f64;
    exec.launch(&[ChunkWork::new(
        nnz * (V::BYTES + I::BYTES) as f64 * 2.0,
        nnz * V::BYTES as f64,
        2.0 * nnz,
    )]);
    let l = Csr::from_triplets(exec, Dim2::square(n), &l_trip)?;
    let u = Csr::from_triplets(exec, Dim2::square(n), &u_trip)?;
    Ok((l, u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::matrix::dense::Dense;

    /// On a matrix whose LU factors have no fill-in, ILU(0) is exact.
    #[test]
    fn exact_on_tridiagonal() {
        let exec = Executor::reference();
        let n = 10;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let (l, u) = ilu0(&a).unwrap();

        // Reconstruct (I + L) * U densely and compare with A.
        let ld = l.to_dense();
        let ud = u.to_dense();
        let ad = a.to_dense();
        for i in 0..n {
            for j in 0..n {
                let mut acc = ud.at(i, j); // I * U contribution
                for k in 0..n {
                    acc += ld.at(i, k) * ud.at(k, j);
                }
                assert!(
                    (acc - ad.at(i, j)).abs() < 1e-12,
                    "entry ({i}, {j}): {acc} vs {}",
                    ad.at(i, j)
                );
            }
        }
    }

    #[test]
    fn l_is_strictly_lower_u_is_upper() {
        let exec = Executor::reference();
        let t = [
            (0usize, 0usize, 4.0f64),
            (0, 1, -1.0),
            (0, 3, -1.0),
            (1, 0, -1.0),
            (1, 1, 4.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 4.0),
            (3, 0, -1.0),
            (3, 3, 4.0),
        ];
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(4), &t).unwrap();
        let (l, u) = ilu0(&a).unwrap();
        let rp = l.row_ptrs();
        for r in 0..4 {
            for idx in rp[r].to_usize()..rp[r + 1].to_usize() {
                assert!(l.col_idxs()[idx].to_usize() < r);
            }
        }
        let rp = u.row_ptrs();
        for r in 0..4 {
            for idx in rp[r].to_usize()..rp[r + 1].to_usize() {
                assert!(u.col_idxs()[idx].to_usize() >= r);
            }
        }
    }

    #[test]
    fn missing_diagonal_is_singular() {
        let exec = Executor::reference();
        let a =
            Csr::<f64, i32>::from_triplets(&exec, Dim2::square(2), &[(0, 1, 1.0), (1, 0, 1.0)])
                .unwrap();
        assert!(matches!(ilu0(&a), Err(GkoError::Singular { .. })));
    }

    #[test]
    fn rectangular_matrix_rejected() {
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::new(2, 3), &[(0, 0, 1.0)]).unwrap();
        assert!(ilu0(&a).is_err());
    }

    /// ILU(0)-preconditioned solve of L U x = b equals A x = b when exact.
    #[test]
    fn factors_solve_tridiagonal_system() {
        use crate::linop::LinOp;
        use crate::solver::triangular::{LowerTrs, UpperTrs};
        use std::sync::Arc;

        let exec = Executor::reference();
        let n = 12;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 3.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let x_true = Dense::<f64>::vector(&exec, n, 2.0);
        let mut b = Dense::zeros(&exec, Dim2::new(n, 1));
        a.apply(&x_true, &mut b).unwrap();

        let (l, u) = ilu0(&a).unwrap();
        let lsolve = LowerTrs::new(Arc::new(l)).unwrap().with_unit_diagonal();
        let usolve = UpperTrs::new(Arc::new(u)).unwrap();
        let mut y = Dense::zeros(&exec, Dim2::new(n, 1));
        lsolve.apply(&b, &mut y).unwrap();
        let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
        usolve.apply(&y, &mut x).unwrap();
        for (a, b) in x.to_host_vec().iter().zip(x_true.to_host_vec()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }
}
