//! Incomplete and complete factorizations.
//!
//! * [`ilu0`](ilu0::ilu0) — ILU(0): LU restricted to the sparsity pattern of
//!   `A`, producing a unit-lower `L` and upper `U` (backs the
//!   [`Ilu`](crate::preconditioner::ilu::Ilu) preconditioner of Listing 1).
//! * [`ic0`](ic0::ic0) — IC(0): incomplete Cholesky for SPD matrices (backs
//!   the `Ic` preconditioner).
//! * [`DenseLu`](lu::DenseLu) — dense LU with partial pivoting (backs the
//!   [`Direct`](crate::solver::direct::Direct) solver binding).

pub mod ic0;
pub mod ilu0;
pub mod lu;

pub use ic0::ic0;
pub use ilu0::ilu0;
pub use lu::DenseLu;
