//! IC(0): incomplete Cholesky factorization with zero fill-in.

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::{Index, Value};
use crate::matrix::csr::Csr;
use pygko_sim::ChunkWork;

/// Computes the IC(0) factorization `A ≈ L L^T` of a symmetric positive
/// definite CSR matrix.
///
/// Returns the lower-triangular factor `L` (diagonal stored). Only the
/// lower triangle of `A` is read, so an upper-triangle-only or full
/// symmetric matrix both work. Fails with [`GkoError::Breakdown`] if a
/// non-positive pivot appears (matrix not SPD enough for IC(0)).
pub fn ic0<V: Value, I: Index>(a: &Csr<V, I>) -> Result<Csr<V, I>> {
    if !a.size().is_square() {
        return Err(GkoError::BadInput("IC(0) needs a square matrix".into()));
    }
    let n = a.size().rows;
    let rp = a.row_ptrs();
    let ci = a.col_idxs();
    let av = a.values();

    // Build L row by row on the lower-triangular pattern of A.
    // l_rows[i] holds (col, value) sorted by col, col <= i.
    let mut l_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let (lo, hi) = (rp[i].to_usize(), rp[i + 1].to_usize());
        let mut row: Vec<(usize, f64)> = Vec::new();
        let mut diag_a = None;
        for idx in lo..hi {
            let j = ci[idx].to_usize();
            if j < i {
                row.push((j, av[idx].to_f64()));
            } else if j == i {
                diag_a = Some(av[idx].to_f64());
            }
        }
        let diag_a = diag_a.ok_or(GkoError::Singular { at: i })?;

        // l_ij = (a_ij - sum_{k<j} l_ik * l_jk) / l_jj  for pattern entries.
        let mut finished: Vec<(usize, f64)> = Vec::with_capacity(row.len() + 1);
        for (j, aij) in row {
            let mut acc = aij;
            // Sparse dot of finished((row i) cols < j) with l_rows[j].
            let lj = &l_rows[j];
            let (mut p, mut q) = (0usize, 0usize);
            while p < finished.len() && q < lj.len() {
                let (ci_, vi_) = finished[p];
                let (cj_, vj_) = lj[q];
                if ci_ == cj_ {
                    if ci_ < j {
                        acc -= vi_ * vj_;
                    }
                    p += 1;
                    q += 1;
                } else if ci_ < cj_ {
                    p += 1;
                } else {
                    q += 1;
                }
            }
            let ljj = lj.last().map(|&(_, v)| v).unwrap_or(0.0);
            if ljj == 0.0 {
                return Err(GkoError::Breakdown("ic0 zero pivot"));
            }
            finished.push((j, acc / ljj));
        }
        // Diagonal: l_ii = sqrt(a_ii - sum l_ik^2).
        let sq: f64 = finished.iter().map(|&(_, v)| v * v).sum();
        let d = diag_a - sq;
        if d <= 0.0 {
            return Err(GkoError::Breakdown("ic0 non-positive pivot"));
        }
        finished.push((i, d.sqrt()));
        l_rows.push(finished);
    }

    let mut triplets: Vec<(usize, usize, V)> = Vec::new();
    for (i, row) in l_rows.iter().enumerate() {
        for &(j, v) in row {
            triplets.push((i, j, V::from_f64(v)));
        }
    }
    let exec = a.executor();
    let nnz = a.nnz() as f64;
    exec.launch(&[ChunkWork::new(
        nnz * (V::BYTES + I::BYTES) as f64 * 1.5,
        nnz * V::BYTES as f64,
        2.0 * nnz,
    )]);
    Csr::from_triplets(exec, Dim2::square(n), &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;

    fn spd_tridiag(exec: &Executor, n: usize) -> Csr<f64, i32> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
    }

    #[test]
    fn exact_on_tridiagonal_spd() {
        let exec = Executor::reference();
        let n = 8;
        let a = spd_tridiag(&exec, n);
        let l = ic0(&a).unwrap();
        // L L^T must equal A (no fill-in was dropped for a tridiagonal).
        let ld = l.to_dense();
        let ad = a.to_dense();
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += ld.at(i, k) * ld.at(j, k);
                }
                assert!(
                    (acc - ad.at(i, j)).abs() < 1e-12,
                    "entry ({i}, {j}): {acc} vs {}",
                    ad.at(i, j)
                );
            }
        }
    }

    #[test]
    fn factor_is_lower_triangular_with_positive_diagonal() {
        let exec = Executor::reference();
        let a = spd_tridiag(&exec, 16);
        let l = ic0(&a).unwrap();
        let rp = l.row_ptrs();
        for r in 0..16 {
            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
            for idx in lo..hi {
                assert!(l.col_idxs()[idx].to_usize() <= r);
            }
            let d = l.extract_diagonal()[r];
            assert!(d > 0.0, "diagonal {d} at row {r}");
        }
    }

    #[test]
    fn indefinite_matrix_breaks_down() {
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(2),
            &[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 5.0), (1, 1, 1.0)],
        )
        .unwrap();
        assert!(matches!(ic0(&a), Err(GkoError::Breakdown(_))));
    }

    #[test]
    fn missing_diagonal_is_singular() {
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(2),
            &[(0, 0, 1.0), (1, 0, 0.5)],
        )
        .unwrap();
        assert!(matches!(ic0(&a), Err(GkoError::Singular { at: 1 })));
    }
}
