//! The linear operator abstraction (paper §4.2).
//!
//! Every matrix, solver, and preconditioner in the engine is a [`LinOp`]:
//! something with a size that can be applied to a dense block of vectors.
//! A matrix `apply` is an SpMV, a solver `apply` runs the iteration to solve
//! `A x = b`, and a preconditioner `apply` approximates `M^{-1} b`. The
//! single entry point is what makes solver pipelines composable — a solver
//! takes *any* `LinOp` as system operator and *any* `LinOp` as
//! preconditioner.

use crate::base::dim::Dim2;
use crate::base::error::{GkoError, Result};
use crate::base::types::Value;
use crate::executor::Executor;
use crate::log::OpTimer;
use crate::matrix::dense::Dense;
use std::sync::Arc;

/// A linear operator `Op: R^n -> R^m` applicable to dense vector blocks.
pub trait LinOp<V: Value>: Send + Sync {
    /// Operator size `(m, n)`.
    fn size(&self) -> Dim2;

    /// Executor the operator's data lives on.
    fn executor(&self) -> &Executor;

    /// Computes `x = Op(b)`.
    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()>;

    /// Computes `x = alpha * Op(b) + beta * x`.
    ///
    /// The default implementation materializes `Op(b)` in a temporary; matrix
    /// formats override it with fused kernels.
    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        let mut tmp = Dense::zeros(x.executor(), x.size());
        self.apply(b, &mut tmp)?;
        x.scale(beta);
        x.add_scaled(alpha, &tmp)?;
        Ok(())
    }

    /// Short kind name for diagnostics (e.g. `"csr"`, `"solver::Cg"`).
    fn op_name(&self) -> &'static str {
        "linop"
    }
}

/// Validates the operand shapes of `x = Op(b)`.
pub fn check_apply_dims<V: Value>(
    op_size: Dim2,
    b: &Dense<V>,
    x: &Dense<V>,
) -> Result<()> {
    if b.size().rows != op_size.cols || x.size().rows != op_size.rows
        || b.size().cols != x.size().cols
    {
        return Err(GkoError::DimensionMismatch {
            op: "apply",
            expected: Dim2::new(op_size.cols, x.size().cols),
            actual: b.size(),
        });
    }
    Ok(())
}

/// The identity operator (useful as a "no preconditioner" placeholder).
pub struct Identity {
    exec: Executor,
    size: Dim2,
}

impl Identity {
    /// Creates an `n x n` identity on `exec`.
    pub fn new(exec: &Executor, n: usize) -> Arc<Self> {
        Arc::new(Identity {
            exec: exec.clone(),
            size: Dim2::square(n),
        })
    }
}

impl<V: Value> LinOp<V> for Identity {
    fn size(&self) -> Dim2 {
        self.size
    }

    fn executor(&self) -> &Executor {
        &self.exec
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size, b, x)?;
        x.copy_from(b)
    }

    fn op_name(&self) -> &'static str {
        "identity"
    }
}

/// A scaled composition `alpha * A * B` of two operators, demonstrating
/// LinOp composability (Ginkgo's `Composition`).
pub struct Composition<V: Value> {
    first: Arc<dyn LinOp<V>>,
    second: Arc<dyn LinOp<V>>,
}

impl<V: Value> Composition<V> {
    /// Creates the operator `b -> first(second(b))`.
    ///
    /// Returns an error if the inner sizes are incompatible.
    pub fn new(first: Arc<dyn LinOp<V>>, second: Arc<dyn LinOp<V>>) -> Result<Arc<Self>> {
        if first.size().cols != second.size().rows {
            return Err(GkoError::DimensionMismatch {
                op: "composition",
                expected: Dim2::new(first.size().cols, second.size().cols),
                actual: second.size(),
            });
        }
        Ok(Arc::new(Composition { first, second }))
    }
}

impl<V: Value> LinOp<V> for Composition<V> {
    fn size(&self) -> Dim2 {
        Dim2::new(self.first.size().rows, self.second.size().cols)
    }

    fn executor(&self) -> &Executor {
        self.first.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.size(), b, x)?;
        let _timer = OpTimer::new(self.executor(), "composition");
        let mut tmp = Dense::zeros(
            self.second.executor(),
            Dim2::new(self.second.size().rows, b.size().cols),
        );
        self.second.apply(b, &mut tmp)?;
        self.first.apply(&tmp, x)
    }

    fn op_name(&self) -> &'static str {
        "composition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies_input() {
        let exec = Executor::reference();
        let id = Identity::new(&exec, 3);
        let b = Dense::from_rows(&exec, &[[1.0f64], [2.0], [3.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(3, 1));
        LinOp::<f64>::apply(&*id, &b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_rejects_wrong_shapes() {
        let exec = Executor::reference();
        let id = Identity::new(&exec, 3);
        let b = Dense::<f64>::zeros(&exec, Dim2::new(4, 1));
        let mut x = Dense::<f64>::zeros(&exec, Dim2::new(3, 1));
        assert!(matches!(
            LinOp::<f64>::apply(&*id, &b, &mut x),
            Err(GkoError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn default_apply_advanced_combines() {
        let exec = Executor::reference();
        let id = Identity::new(&exec, 2);
        let b = Dense::from_rows(&exec, &[[1.0f64], [2.0]]);
        let mut x = Dense::from_rows(&exec, &[[10.0f64], [20.0]]);
        // x = 2*I*b + 3*x
        LinOp::<f64>::apply_advanced(&*id, 2.0, &b, 3.0, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![32.0, 64.0]);
    }

    #[test]
    fn composition_applies_in_order() {
        let exec = Executor::reference();
        let id1: Arc<dyn LinOp<f64>> = Identity::new(&exec, 2);
        let id2: Arc<dyn LinOp<f64>> = Identity::new(&exec, 2);
        let comp = Composition::new(id1, id2).unwrap();
        let b = Dense::from_rows(&exec, &[[5.0f64], [6.0]]);
        let mut x = Dense::zeros(&exec, Dim2::new(2, 1));
        comp.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), vec![5.0, 6.0]);
        assert_eq!(comp.op_name(), "composition");
    }

    #[test]
    fn composition_size_mismatch_is_rejected() {
        let exec = Executor::reference();
        let id1: Arc<dyn LinOp<f64>> = Identity::new(&exec, 2);
        let id3: Arc<dyn LinOp<f64>> = Identity::new(&exec, 3);
        assert!(Composition::new(id1, id3).is_err());
    }
}
