//! Continuous profiling plane: flame aggregation over the span stream
//! (DESIGN.md §18).
//!
//! [`crate::trace`] assembles one span tree per solve; this module folds
//! *every* completed tree — including the ones tail sampling drops — into a
//! [`ProfileStore`] of aggregated [`FlameNode`] trees keyed by span path
//! (`solve → iteration → kernel_apply → plan_build → pool_dispatch →
//! chunk`). Each node accumulates call counts, wall self- and total-time,
//! per-lane busy-time attribution, and a log2 latency histogram of self
//! time per call (the same bucket layout as [`crate::metrics`]), so `p50`
//! and `p99` per path come for free.
//!
//! The aggregation is *windowed*: after
//! [`ProfileConfig::window_solves`] folded solves the tree rotates (the
//! finished window stays readable as [`ProfileStore::last_window`]) so a
//! long-lived process converges on recent behaviour instead of its whole
//! history. Memory is bounded twice over — a hard node cap
//! ([`ProfileConfig::max_nodes`]) drops *new* paths once the tree is full
//! (arrival order decides survival, deterministically; drops are counted in
//! the evicted counter, never silent) and the per-window rotation bounds
//! bucket growth.
//!
//! While profiling is disarmed, [`ProfileStore::fold`] costs exactly one
//! relaxed atomic load — the same inert discipline as the sanitizer, the
//! metrics registry, and the tracer.
//!
//! Snapshots render three ways, matching the `/profile` endpoints:
//!
//! * [`ProfileSnapshot::to_config`] — a nested JSON flame tree;
//! * [`ProfileSnapshot::folded`] — inferno / `flamegraph.pl` folded-stacks
//!   text (`path;path;... <self_wall_ns>` per line);
//! * [`diff`] — a differential profile against a named committed baseline
//!   (per-path delta of self-time and calls), which `bench_gate` uses to
//!   *attribute* a regression to span paths instead of reporting a bare
//!   ratio.

use crate::config::Config;
use crate::metrics::{bucket_index, bucket_upper_bound, HISTOGRAM_BUCKETS};
use crate::trace::{SpanKind, TraceReport, OWNER_LANE};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Profiling policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Hard cap on flame nodes per window. Once reached, spans whose path
    /// would create a new node are counted as evicted instead (existing
    /// nodes keep accumulating).
    pub max_nodes: usize,
    /// Solves per aggregation window; the tree resets (and the finished
    /// window becomes [`ProfileStore::last_window`]) every `window_solves`
    /// folds. `0` means a single unbounded window.
    pub window_solves: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            max_nodes: 512,
            window_solves: 1 << 20,
        }
    }
}

impl ProfileConfig {
    fn normalized(mut self) -> Self {
        self.max_nodes = self.max_nodes.max(8);
        self
    }
}

/// One aggregated flame-tree node: every span whose root-to-self name path
/// matches this node's path folds into it.
#[derive(Clone, Debug)]
struct FlameNode {
    /// Span name of this path segment (`"solver::Cg"`, `"iteration"`,
    /// `"csr"`, `"pool_dispatch"`, `"chunk"`, ...).
    name: &'static str,
    /// Span kind name of the first span folded here (`"solve"`,
    /// `"kernel_apply"`, ...), kept for the JSON tree.
    kind: &'static str,
    /// Spans folded into this node.
    calls: u64,
    /// Total wall time (span durations), nanoseconds.
    wall_ns: u64,
    /// Wall time minus the folded children's wall time, nanoseconds.
    self_wall_ns: u64,
    /// Largest single-span self time seen, nanoseconds (caps quantiles).
    max_self_ns: u64,
    /// Log2 histogram of self wall time per call (metrics bucket layout).
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    /// Per-lane busy time for chunk spans (`lane -> ns`); empty elsewhere.
    lane_ns: BTreeMap<u32, u64>,
    /// Children keyed by span name (deterministic order).
    children: BTreeMap<&'static str, FlameNode>,
}

impl FlameNode {
    fn new(name: &'static str, kind: &'static str) -> Self {
        FlameNode {
            name,
            kind,
            calls: 0,
            wall_ns: 0,
            self_wall_ns: 0,
            max_self_ns: 0,
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
            lane_ns: BTreeMap::new(),
            children: BTreeMap::new(),
        }
    }

    fn record(&mut self, wall_ns: u64, self_ns: u64, lane: Option<u32>) {
        self.calls += 1;
        self.wall_ns += wall_ns;
        self.self_wall_ns += self_ns;
        self.max_self_ns = self.max_self_ns.max(self_ns);
        self.buckets[bucket_index(self_ns)] += 1;
        if let Some(lane) = lane {
            *self.lane_ns.entry(lane).or_insert(0) += wall_ns;
        }
    }

    /// Quantile of self time per call from the log2 buckets, capped by the
    /// exact max (mirrors `metrics::HistogramSnapshot::quantile`).
    fn quantile(&self, q: f64) -> u64 {
        if self.calls == 0 {
            return 0;
        }
        let rank = ((self.calls as f64) * q).ceil() as u64;
        let rank = rank.clamp(1, self.calls);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max_self_ns);
            }
        }
        self.max_self_ns
    }

    /// Appends this subtree to `out` in pre-order and returns the subtree's
    /// total lane-busy (virtual) time.
    fn flatten(&self, prefix: &str, depth: usize, out: &mut Vec<FlameStat>) -> u64 {
        let path = if prefix.is_empty() {
            self.name.to_string()
        } else {
            format!("{prefix};{}", self.name)
        };
        let self_virtual: u64 = self.lane_ns.values().sum();
        let slot = out.len();
        out.push(FlameStat {
            path: path.clone(),
            name: self.name.to_string(),
            kind: self.kind.to_string(),
            depth,
            calls: self.calls,
            wall_ns: self.wall_ns,
            self_wall_ns: self.self_wall_ns,
            virtual_ns: 0, // filled below once the subtree is summed
            self_virtual_ns: self_virtual,
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            lanes: self.lane_ns.iter().map(|(&l, &ns)| (l, ns)).collect(),
        });
        let mut subtree_virtual = self_virtual;
        for child in self.children.values() {
            subtree_virtual += child.flatten(&path, depth + 1, out);
        }
        out[slot].virtual_ns = subtree_virtual;
        subtree_virtual
    }
}

/// One flame-tree node in a [`ProfileSnapshot`], flattened in pre-order.
#[derive(Clone, Debug, PartialEq)]
pub struct FlameStat {
    /// Root-to-self span names joined with `;` (the folded-stacks path).
    pub path: String,
    /// Span name of this segment.
    pub name: String,
    /// Span kind name (`"solve"`, `"iteration"`, `"kernel_apply"`, ...).
    pub kind: String,
    /// Tree depth (roots at 0).
    pub depth: usize,
    /// Spans folded into this node.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub wall_ns: u64,
    /// Wall time not attributed to any child path, nanoseconds.
    pub self_wall_ns: u64,
    /// Subtree lane-busy time, nanoseconds (work done by pool lanes under
    /// this path; exceeds wall time when lanes run in parallel).
    pub virtual_ns: u64,
    /// Lane-busy time of this node alone (nonzero only for chunk nodes).
    pub self_virtual_ns: u64,
    /// Median self time per call, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile self time per call, nanoseconds.
    pub p99_ns: u64,
    /// Per-lane busy time `(lane, ns)`, ascending by lane.
    pub lanes: Vec<(u32, u64)>,
}

/// Immutable snapshot of one aggregation window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSnapshot {
    /// Solves folded into this window.
    pub solves: u64,
    /// Solves folded since arming (across all windows).
    pub solves_total: u64,
    /// Windows completed (rotated out) before this one.
    pub windows_completed: u64,
    /// Spans dropped because the node cap was reached (cumulative).
    pub evicted_nodes: u64,
    /// The node cap in force.
    pub max_nodes: usize,
    /// Flame nodes in pre-order (children follow their parent, depth +1).
    pub nodes: Vec<FlameStat>,
}

impl ProfileSnapshot {
    /// Looks a node up by its `;`-joined path.
    pub fn find(&self, path: &str) -> Option<&FlameStat> {
        self.nodes.iter().find(|n| n.path == path)
    }

    /// Inferno / `flamegraph.pl` folded-stacks text: one line per node,
    /// `path;path;... <self_wall_ns>`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&n.path);
            out.push(' ');
            out.push_str(&n.self_wall_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// The JSON flame-tree document served by `GET /profile`.
    pub fn to_config(&self) -> Config {
        Config::map()
            .with("solves", self.solves as i64)
            .with("solves_total", self.solves_total as i64)
            .with("windows_completed", self.windows_completed as i64)
            .with("evicted_nodes", self.evicted_nodes as i64)
            .with("max_nodes", self.max_nodes)
            .with("roots", nest(&self.nodes, 0, 0).0)
    }
}

/// Builds the nested children arrays for `nodes[from..]` at `depth`;
/// returns `(children, next_index)`.
fn nest(nodes: &[FlameStat], mut from: usize, depth: usize) -> (Vec<Config>, usize) {
    let mut out = Vec::new();
    while from < nodes.len() && nodes[from].depth == depth {
        let n = &nodes[from];
        let (children, next) = nest(nodes, from + 1, depth + 1);
        let lanes: Vec<Config> = n
            .lanes
            .iter()
            .map(|&(lane, ns)| Config::map().with("lane", lane as i64).with("busy_ns", ns as i64))
            .collect();
        let mut c = Config::map()
            .with("name", n.name.as_str())
            .with("kind", n.kind.as_str())
            .with("path", n.path.as_str())
            .with("calls", n.calls as i64)
            .with("wall_ns", n.wall_ns as i64)
            .with("self_wall_ns", n.self_wall_ns as i64)
            .with("virtual_ns", n.virtual_ns as i64)
            .with("self_virtual_ns", n.self_virtual_ns as i64)
            .with("p50_ns", n.p50_ns as i64)
            .with("p99_ns", n.p99_ns as i64)
            .with("children", children);
        if !lanes.is_empty() {
            c = c.with("lanes", lanes);
        }
        out.push(c);
        from = next;
    }
    (out, from)
}

/// One path's delta in a [`ProfileDiff`].
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// The `;`-joined span path.
    pub path: String,
    /// Baseline self wall time, nanoseconds.
    pub base_self_ns: u64,
    /// Current self wall time, nanoseconds.
    pub self_ns: u64,
    /// Baseline calls.
    pub base_calls: u64,
    /// Current calls.
    pub calls: u64,
    /// Self-time delta as a percentage of the baseline
    /// (`+41.0` = 41% slower). Paths absent from the baseline report
    /// `f64::INFINITY`.
    pub delta_pct: f64,
}

/// A differential profile: current window vs a committed baseline, sorted
/// worst regression first.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileDiff {
    /// Per-path deltas, sorted by `delta_pct` descending (ties broken by
    /// absolute self-time growth, then path).
    pub rows: Vec<DiffRow>,
}

impl ProfileDiff {
    /// The `GET /profile/diff` JSON document.
    pub fn to_config(&self, base_name: &str) -> Config {
        let rows: Vec<Config> = self
            .rows
            .iter()
            .map(|r| {
                let mut c = Config::map()
                    .with("path", r.path.as_str())
                    .with("base_self_wall_ns", r.base_self_ns as i64)
                    .with("self_wall_ns", r.self_ns as i64)
                    .with("base_calls", r.base_calls as i64)
                    .with("calls", r.calls as i64);
                c = if r.delta_pct.is_finite() {
                    c.with("delta_pct", r.delta_pct)
                } else {
                    c.with("delta_pct", "new")
                };
                c
            })
            .collect();
        Config::map().with("base", base_name).with("rows", rows)
    }
}

/// Differential profile of `current` against `base`: one row per path seen
/// in either snapshot, sorted worst self-time regression first.
pub fn diff(base: &ProfileSnapshot, current: &ProfileSnapshot) -> ProfileDiff {
    let mut rows: Vec<DiffRow> = Vec::new();
    for n in &current.nodes {
        let b = base.find(&n.path);
        let base_self = b.map(|b| b.self_wall_ns).unwrap_or(0);
        let delta_pct = if base_self == 0 {
            if n.self_wall_ns == 0 { 0.0 } else { f64::INFINITY }
        } else {
            (n.self_wall_ns as f64 - base_self as f64) / base_self as f64 * 100.0
        };
        rows.push(DiffRow {
            path: n.path.clone(),
            base_self_ns: base_self,
            self_ns: n.self_wall_ns,
            base_calls: b.map(|b| b.calls).unwrap_or(0),
            calls: n.calls,
            delta_pct,
        });
    }
    for b in &base.nodes {
        if current.find(&b.path).is_none() {
            rows.push(DiffRow {
                path: b.path.clone(),
                base_self_ns: b.self_wall_ns,
                self_ns: 0,
                base_calls: b.calls,
                calls: 0,
                delta_pct: -100.0,
            });
        }
    }
    rows.sort_by(|a, b| {
        b.delta_pct
            .partial_cmp(&a.delta_pct)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let ga = a.self_ns as i128 - a.base_self_ns as i128;
                let gb = b.self_ns as i128 - b.base_self_ns as i128;
                gb.cmp(&ga)
            })
            .then_with(|| a.path.cmp(&b.path))
    });
    ProfileDiff { rows }
}

#[derive(Default)]
struct ProfileState {
    config: ProfileConfig,
    /// Root flame nodes keyed by solve annotation (`"solver::Cg"`, ...).
    roots: BTreeMap<&'static str, FlameNode>,
    /// Nodes currently allocated across all roots.
    node_count: usize,
    solves: u64,
    solves_total: u64,
    windows_completed: u64,
    last_window: Option<ProfileSnapshot>,
    baselines: BTreeMap<String, ProfileSnapshot>,
}

/// Per-executor continuous profiler, embedded in the executor like the
/// sanitizer and tracer. Disarmed, [`ProfileStore::fold`] is one relaxed
/// atomic load.
pub struct ProfileStore {
    /// Profiling enabled at all.
    armed: AtomicBool, // atomic: flag
    /// Spans dropped because the node cap was reached.
    evicted: AtomicU64, // atomic: counter
    state: Mutex<ProfileState>, // lock: profile.state
}

impl std::fmt::Debug for ProfileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileStore")
            .field("armed", &self.is_armed())
            .field("evicted", &self.evicted())
            .finish_non_exhaustive()
    }
}

impl ProfileStore {
    pub(crate) fn new() -> Self {
        ProfileStore {
            armed: AtomicBool::new(false),
            evicted: AtomicU64::new(0),
            state: Mutex::new(ProfileState::default()),
        }
    }

    fn state(&self) -> MutexGuard<'_, ProfileState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms profiling with `config`. Idempotent; re-arming updates the
    /// policy but keeps the accumulated window and counters.
    pub(crate) fn arm(&self, config: ProfileConfig) {
        self.state().config = config.normalized();
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms profiling. Accumulated windows and baselines stay readable.
    pub(crate) fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Whether profiling is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Spans dropped because the node cap was reached.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Flame nodes currently allocated in the live window.
    pub fn node_count(&self) -> usize {
        self.state().node_count
    }

    /// Solves folded since arming.
    pub fn solves_total(&self) -> u64 {
        self.state().solves_total
    }

    /// Clears the live window (counters and baselines are kept).
    pub fn reset(&self) {
        let mut s = self.state();
        s.roots.clear();
        s.node_count = 0;
        s.solves = 0;
    }

    /// The most recently completed (rotated-out) window, if any.
    pub fn last_window(&self) -> Option<ProfileSnapshot> {
        self.state().last_window.clone()
    }

    /// Snapshots the live window and commits it as baseline `name`,
    /// replacing any previous baseline of that name.
    pub fn commit_baseline(&self, name: &str) -> ProfileSnapshot {
        let snap = self.snapshot();
        self.state().baselines.insert(name.to_string(), snap.clone());
        snap
    }

    /// A committed baseline by name.
    pub fn baseline(&self, name: &str) -> Option<ProfileSnapshot> {
        self.state().baselines.get(name).cloned()
    }

    /// Names of all committed baselines, ascending.
    pub fn baseline_names(&self) -> Vec<String> {
        self.state().baselines.keys().cloned().collect()
    }

    /// Snapshot of the live window (empty while nothing has been folded).
    pub fn snapshot(&self) -> ProfileSnapshot {
        let s = self.state();
        let mut nodes = Vec::with_capacity(s.node_count);
        for root in s.roots.values() {
            root.flatten("", 0, &mut nodes);
        }
        ProfileSnapshot {
            solves: s.solves,
            solves_total: s.solves_total,
            windows_completed: s.windows_completed,
            evicted_nodes: self.evicted(),
            max_nodes: s.config.max_nodes,
            nodes,
        }
    }

    /// Folds one completed span tree into the live window. Called by the
    /// tracer for every finished trace — *before* the tail-sampling verdict,
    /// so profiles aggregate all solves, not just the retained ones. One
    /// relaxed load and out while disarmed.
    pub(crate) fn fold(&self, report: &TraceReport) {
        // One span flattened for folding: root-to-self (name, kind) path,
        // wall time, self time, and the executing lane for chunk spans.
        type SpanFold = (Vec<(&'static str, &'static str)>, u64, u64, Option<u32>);
        if !self.armed.load(Ordering::Relaxed) {
            return;
        }
        if report.spans.is_empty() {
            return;
        }
        // Per-trace shape, computed before taking the store lock: children
        // wall time per parent id (for self time) and each span's name path.
        let mut by_id: BTreeMap<u64, &crate::trace::SpanRecord> = BTreeMap::new();
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &report.spans {
            by_id.insert(s.id, s);
        }
        for s in &report.spans {
            if s.parent != 0 {
                *child_ns.entry(s.parent).or_insert(0) += s.dur_ns;
            }
        }
        // Root-to-self name paths (spans with unresolvable parents — possible
        // under span-cap truncation — are skipped; the tracer already counts
        // them).
        let mut folds: Vec<SpanFold> = Vec::with_capacity(report.spans.len());
        'spans: for s in &report.spans {
            let mut path: Vec<(&'static str, &'static str)> = vec![(s.name, kind_name(s.kind))];
            let mut cursor = s.parent;
            while cursor != 0 {
                match by_id.get(&cursor) {
                    Some(p) => {
                        path.push((p.name, kind_name(p.kind)));
                        cursor = p.parent;
                    }
                    None => continue 'spans,
                }
            }
            path.reverse();
            let self_ns = s
                .dur_ns
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            let lane = (s.lane != OWNER_LANE).then_some(s.lane);
            folds.push((path, s.dur_ns, self_ns, lane));
        }

        let mut s = self.state();
        let st = &mut *s;
        let max_nodes = st.config.max_nodes;
        let mut evicted = 0u64;
        for (path, wall_ns, self_ns, lane) in folds {
            let Some((first, rest)) = path.split_first() else {
                continue;
            };
            if !st.roots.contains_key(first.0) {
                if st.node_count >= max_nodes {
                    evicted += 1;
                    continue;
                }
                st.node_count += 1;
            }
            let mut node = st
                .roots
                .entry(first.0)
                .or_insert_with(|| FlameNode::new(first.0, first.1));
            let mut dropped = false;
            for seg in rest {
                if !node.children.contains_key(seg.0) {
                    if st.node_count >= max_nodes {
                        dropped = true;
                        break;
                    }
                    st.node_count += 1;
                }
                node = node
                    .children
                    .entry(seg.0)
                    .or_insert_with(|| FlameNode::new(seg.0, seg.1));
            }
            if dropped {
                evicted += 1;
                continue;
            }
            node.record(wall_ns, self_ns, lane);
        }
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        st.solves += 1;
        st.solves_total += 1;
        if st.config.window_solves > 0 && st.solves >= st.config.window_solves {
            // Rotate: the finished window stays readable, the live tree
            // restarts empty (baselines and eviction counters persist).
            let mut nodes = Vec::with_capacity(st.node_count);
            for root in st.roots.values() {
                root.flatten("", 0, &mut nodes);
            }
            st.last_window = Some(ProfileSnapshot {
                solves: st.solves,
                solves_total: st.solves_total,
                windows_completed: st.windows_completed,
                evicted_nodes: self.evicted(),
                max_nodes,
                nodes,
            });
            st.windows_completed += 1;
            st.roots.clear();
            st.node_count = 0;
            st.solves = 0;
        }
    }
}

fn kind_name(kind: SpanKind) -> &'static str {
    kind.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanRecord, TraceReport};

    fn span(
        id: u64,
        parent: u64,
        kind: SpanKind,
        name: &'static str,
        lane: u32,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            name,
            lane,
            steal: false,
            index: 0,
            start_ns,
            dur_ns,
        }
    }

    /// A synthetic CG-shaped trace: solve -> iteration -> csr ->
    /// pool_dispatch -> 2 chunks on lanes 0/1.
    fn cg_trace(trace_id: u64, scale: u64) -> TraceReport {
        TraceReport {
            trace_id,
            seq: trace_id,
            annotation: "solver::Cg".to_string(),
            root: 1,
            duration_ns: 100 * scale,
            retained: "sampled",
            anomalies: Vec::new(),
            iterations: 1,
            converged: true,
            stop_reason: "residual_reduction".to_string(),
            truncated_spans: 0,
            spans: vec![
                span(5, 4, SpanKind::Chunk, "chunk", 0, 10, 20 * scale),
                span(6, 4, SpanKind::Chunk, "chunk", 1, 10, 25 * scale),
                span(4, 3, SpanKind::Dispatch, "pool_dispatch", OWNER_LANE, 8, 30 * scale),
                span(3, 2, SpanKind::Kernel, "csr", OWNER_LANE, 5, 40 * scale),
                span(2, 1, SpanKind::Iteration, "iteration", OWNER_LANE, 2, 60 * scale),
                span(1, 0, SpanKind::Solve, "solver::Cg", OWNER_LANE, 0, 100 * scale),
            ],
        }
    }

    fn armed_store(config: ProfileConfig) -> ProfileStore {
        let store = ProfileStore::new();
        store.arm(config);
        store
    }

    #[test]
    fn disarmed_fold_is_inert() {
        let store = ProfileStore::new();
        store.fold(&cg_trace(1, 1));
        assert_eq!(store.snapshot().nodes.len(), 0);
        assert_eq!(store.solves_total(), 0);
    }

    #[test]
    fn fold_builds_rooted_flame_tree_with_self_times() {
        let store = armed_store(ProfileConfig::default());
        store.fold(&cg_trace(1, 1));
        let snap = store.snapshot();
        assert_eq!(snap.solves, 1);

        let root = snap.find("solver::Cg").expect("root node");
        assert_eq!(root.depth, 0);
        assert_eq!(root.calls, 1);
        assert_eq!(root.wall_ns, 100);
        assert_eq!(root.self_wall_ns, 40, "100 minus the iteration's 60");
        assert_eq!(root.kind, "solve");

        let csr = snap.find("solver::Cg;iteration;csr").expect("csr node");
        assert_eq!(csr.wall_ns, 40);
        assert_eq!(csr.self_wall_ns, 10, "40 minus the dispatch's 30");

        let chunk = snap
            .find("solver::Cg;iteration;csr;pool_dispatch;chunk")
            .expect("chunk node");
        assert_eq!(chunk.calls, 2);
        assert_eq!(chunk.lanes, vec![(0, 20), (1, 25)]);
        assert_eq!(chunk.self_virtual_ns, 45);

        // Virtual time rolls the lane-busy 45ns up the whole path.
        assert_eq!(root.virtual_ns, 45);
        assert_eq!(csr.virtual_ns, 45);

        // Pre-order: parents precede children.
        let p = |path: &str| snap.nodes.iter().position(|n| n.path == path).unwrap();
        assert!(p("solver::Cg") < p("solver::Cg;iteration"));
        assert!(p("solver::Cg;iteration") < p("solver::Cg;iteration;csr"));
    }

    #[test]
    fn merge_is_deterministic_and_accumulative() {
        let a = armed_store(ProfileConfig::default());
        let b = armed_store(ProfileConfig::default());
        for t in 1..=5u64 {
            a.fold(&cg_trace(t, t));
            b.fold(&cg_trace(t, t));
        }
        assert_eq!(a.snapshot(), b.snapshot(), "same folds, same snapshot");

        let snap = a.snapshot();
        let root = snap.find("solver::Cg").unwrap();
        assert_eq!(root.calls, 5);
        assert_eq!(root.wall_ns, 100 * (1 + 2 + 3 + 4 + 5));
        assert!(root.p50_ns <= root.p99_ns);
        assert!(root.p99_ns <= root.self_wall_ns);
    }

    #[test]
    fn node_cap_drops_new_paths_deterministically() {
        // Cap of 8 (the normalized floor): the first trace's 5-node path
        // fits; a second trace with a different solver root needs 5 more
        // nodes and only 3 fit, so its deeper spans are evicted.
        let store = armed_store(ProfileConfig {
            max_nodes: 8,
            window_solves: 0,
        });
        store.fold(&cg_trace(1, 1));
        assert_eq!(store.node_count(), 5);
        assert_eq!(store.evicted(), 0);

        let mut other = cg_trace(2, 1);
        other.annotation = "solver::BiCgStab".to_string();
        for s in &mut other.spans {
            if s.name == "solver::Cg" {
                s.name = "solver::BiCgStab";
            }
        }
        store.fold(&other);
        assert_eq!(store.node_count(), 8, "cap respected");
        assert_eq!(store.evicted(), 3, "three spans had no room");

        // Re-running the same sequence reproduces the same retained set.
        let replay = armed_store(ProfileConfig {
            max_nodes: 8,
            window_solves: 0,
        });
        replay.fold(&cg_trace(1, 1));
        replay.fold(&other);
        assert_eq!(store.snapshot(), replay.snapshot());

        // Existing paths keep accumulating even while the cap holds.
        store.fold(&cg_trace(3, 1));
        assert_eq!(store.snapshot().find("solver::Cg").unwrap().calls, 2);
        assert_eq!(store.evicted(), 3, "no new evictions for known paths");
    }

    #[test]
    fn window_rotation_bounds_history() {
        let store = armed_store(ProfileConfig {
            max_nodes: 64,
            window_solves: 2,
        });
        store.fold(&cg_trace(1, 1));
        store.fold(&cg_trace(2, 1));
        // Window of 2 complete: live tree restarts.
        assert_eq!(store.snapshot().solves, 0);
        assert_eq!(store.snapshot().windows_completed, 1);
        let last = store.last_window().expect("rotated window");
        assert_eq!(last.solves, 2);
        assert_eq!(last.find("solver::Cg").unwrap().calls, 2);

        store.fold(&cg_trace(3, 7));
        let snap = store.snapshot();
        assert_eq!(snap.solves, 1);
        assert_eq!(snap.solves_total, 3);
        assert_eq!(snap.find("solver::Cg").unwrap().calls, 1);
    }

    #[test]
    fn folded_output_matches_grammar() {
        let store = armed_store(ProfileConfig::default());
        store.fold(&cg_trace(1, 3));
        let folded = store.snapshot().folded();
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (path, count) = line.rsplit_once(' ').expect("path <count>");
            assert!(!path.is_empty());
            assert!(path.split(';').all(|seg| !seg.is_empty()), "{line}");
            count.parse::<u64>().expect("integer count");
        }
        assert!(folded.contains("solver::Cg;iteration;csr "));
    }

    #[test]
    fn diff_ranks_regressions_and_handles_new_paths() {
        let store = armed_store(ProfileConfig::default());
        store.fold(&cg_trace(1, 1));
        let base = store.commit_baseline("t0");
        assert_eq!(store.baseline_names(), vec!["t0".to_string()]);

        // Second fold doubles every accumulated figure except the csr node,
        // which gets 10x the work.
        let mut slow = cg_trace(2, 1);
        for s in &mut slow.spans {
            if s.name == "csr" {
                s.dur_ns *= 10;
            }
        }
        store.fold(&slow);
        let d = diff(&base, &store.snapshot());
        assert_eq!(d.rows.first().map(|r| r.path.as_str()),
                   Some("solver::Cg;iteration;csr"),
                   "10x kernel must rank first: {:?}",
                   d.rows.iter().map(|r| (&r.path, r.delta_pct)).collect::<Vec<_>>());
        let top = &d.rows[0];
        assert!(top.delta_pct > 100.0, "{}", top.delta_pct);

        // A path only in the current window reports as new (infinite pct);
        // a path only in the baseline reports -100%.
        let disjoint = ProfileSnapshot::default();
        let d2 = diff(&store.snapshot(), &disjoint);
        assert!(d2.rows.iter().all(|r| r.delta_pct == -100.0));
        let d3 = diff(&disjoint, &store.snapshot());
        assert!(d3.rows.iter().all(|r| r.delta_pct.is_infinite() || r.self_ns == 0));
    }

    #[test]
    fn json_tree_nests_children_under_parents() {
        let store = armed_store(ProfileConfig::default());
        store.fold(&cg_trace(1, 1));
        let doc = store.snapshot().to_config();
        let roots = doc.get("roots").and_then(Config::as_array).expect("roots");
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.get("name").and_then(Config::as_str), Some("solver::Cg"));
        let children = root.get("children").and_then(Config::as_array).expect("children");
        assert_eq!(
            children[0].get("name").and_then(Config::as_str),
            Some("iteration")
        );
        // The document round-trips through the engine's own JSON.
        let text = crate::config::json::to_string_pretty(&doc);
        let back = Config::from_json(&text).expect("parse back");
        assert_eq!(back.get("solves").and_then(Config::as_int), Some(1));
    }

    #[test]
    fn reset_clears_live_window_but_keeps_baselines() {
        let store = armed_store(ProfileConfig::default());
        store.fold(&cg_trace(1, 1));
        store.commit_baseline("keep");
        store.reset();
        assert_eq!(store.snapshot().nodes.len(), 0);
        assert!(store.baseline("keep").is_some());
    }
}
