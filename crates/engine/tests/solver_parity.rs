//! Solver convergence parity: the omp executor must reproduce the
//! reference executor's Krylov iterations bit-for-bit up to reduction
//! reassociation.
//!
//! Per-kernel parity (see `parity.rs`) bounds a single reassociated sum by
//! a few ulps. A Krylov solve *compounds* those rounding differences
//! multiplicatively — each iteration's dot products scale the next
//! iteration's coefficients, and CGS/BiCGStab square the underlying
//! residual polynomial — so the honest cross-executor bound *doubles* per
//! iteration (measured: CGS reaches ~80 ulps after 8 iterations). The
//! checks below allow `TOL_ULPS << iteration` ulps, which after 8
//! iterations is still ~2e-13 relative — tight enough to catch racing or
//! mispartitioned kernels, which produce wholesale different (or
//! non-deterministic) results, not a few hundred ulps.

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::solver::{BiCgStab, Cg, Cgs, Gmres};
use gko::stop::Criteria;
use gko::{Dim2, Executor};
use std::sync::Arc;

/// Serial-on-omp, even split, prime, and wider-than-chunk-count.
const THREADS: [usize; 3] = [2, 7, 16];

/// Single-kernel reassociation tolerance (matches `parity.rs`).
const TOL_ULPS: u64 = 4;

/// Iterations each smoke solve runs for.
const ITERS: usize = 8;

fn ordered(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    if b < 0 {
        i64::MIN - b
    } else {
        b
    }
}

fn ulps(a: f64, b: f64) -> u64 {
    ordered(a).wrapping_sub(ordered(b)).unsigned_abs()
}

/// A 2D Poisson 5-point stencil on a `g`×`g` grid: SPD, well-conditioned
/// enough that every tested solver makes steady progress for `ITERS` steps.
fn poisson(exec: &Executor, g: usize) -> Arc<Csr<f64, i32>> {
    let n = g * g;
    let mut t = Vec::new();
    for i in 0..g {
        for j in 0..g {
            let r = i * g + j;
            t.push((r, r, 4.0));
            if i > 0 {
                t.push((r, r - g, -1.0));
            }
            if i + 1 < g {
                t.push((r, r + g, -1.0));
            }
            if j > 0 {
                t.push((r, r - 1, -1.0));
            }
            if j + 1 < g {
                t.push((r, r + 1, -1.0));
            }
        }
    }
    Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
}

/// Mildly varying right-hand side (not constant, so no accidental symmetry
/// hides partition-dependent bugs).
fn rhs(exec: &Executor, n: usize) -> Dense<f64> {
    let mut b = Dense::zeros(exec, Dim2::new(n, 1));
    for i in 0..n {
        b.set(i, 0, 1.0 + 0.25 * ((i % 7) as f64) - 0.125 * ((i % 3) as f64));
    }
    b
}

/// Compares reference vs omp histories and solutions for one solver kind.
fn assert_solver_parity(
    name: &str,
    histories: &[(usize, Vec<f64>, Vec<f64>)],
) {
    let (_, ref_hist, ref_x) = &histories[0];
    assert_eq!(ref_hist.len(), ITERS, "{name}: reference ran {ITERS} iters");
    let budget = TOL_ULPS << ITERS;
    for (threads, hist, x) in &histories[1..] {
        assert_eq!(
            hist.len(),
            ref_hist.len(),
            "{name}@omp{threads}: iteration count diverged"
        );
        for (it, (h, r)) in hist.iter().zip(ref_hist).enumerate() {
            // Rounding differences compound multiplicatively through the
            // recurrences: double the budget each iteration.
            let tol = TOL_ULPS << (it + 1);
            assert!(
                ulps(*h, *r) <= tol,
                "{name}@omp{threads} residual[{it}]: {h} vs {r} ({} ulps, tol {tol})",
                ulps(*h, *r)
            );
        }
        for (i, (g, r)) in x.iter().zip(ref_x).enumerate() {
            assert!(
                ulps(*g, *r) <= budget,
                "{name}@omp{threads} x[{i}]: {g} vs {r} ({} ulps, budget {budget})",
                ulps(*g, *r)
            );
        }
    }
}

macro_rules! parity_case {
    ($test:ident, $name:literal, $builder:expr) => {
        #[test]
        fn $test() {
            let g = 12; // 144 unknowns: several chunks per executor
            let mut histories = Vec::new();
            for (threads, exec) in std::iter::once((1usize, Executor::reference()))
                .chain(THREADS.into_iter().map(|t| (t, Executor::omp(t))))
            {
                let a = poisson(&exec, g);
                let n = a.size().rows;
                let solver = $builder(a as Arc<dyn LinOp<f64>>);
                let b = rhs(&exec, n);
                let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
                solver.apply(&b, &mut x).unwrap();
                let rec = solver.logger().snapshot();
                assert_eq!(
                    rec.residual_history.len(),
                    rec.iterations,
                    "{}@{threads}: history/iterations invariant",
                    $name
                );
                histories.push((threads, rec.residual_history.clone(), x.to_host_vec()));
            }
            assert_solver_parity($name, &histories);
        }
    };
}

parity_case!(cg_matches_reference_on_omp, "cg", |a| Cg::new(a)
    .unwrap()
    .with_criteria(Criteria::iterations(ITERS)));

parity_case!(cgs_matches_reference_on_omp, "cgs", |a| Cgs::new(a)
    .unwrap()
    .with_criteria(Criteria::iterations(ITERS)));

parity_case!(bicgstab_matches_reference_on_omp, "bicgstab", |a| {
    BiCgStab::new(a)
        .unwrap()
        .with_criteria(Criteria::iterations(ITERS))
});

parity_case!(gmres_matches_reference_on_omp, "gmres", |a| Gmres::new(a)
    .unwrap()
    .with_criteria(Criteria::iterations(ITERS)));
