//! Cross-solver regression tests for the stopping-criteria contract.
//!
//! Two edges every iterative solver inherits from [`gko::stop::Criteria`]:
//!
//! * **zero baseline** — `b = 0`, `x0 = 0` gives an initial residual of
//!   exactly zero, meaning the initial guess already solves the system. All
//!   eight solvers must converge at iteration 0 with `ResidualReduction`
//!   instead of relying on the accidental truth of `0.0 <= factor * 0.0`.
//! * **non-finite baseline** — a hostile `b` containing NaN poisons the
//!   initial residual norm. The solve must report `Breakdown` at iteration
//!   0, not burn `max_iters` iterations on comparisons that are false
//!   forever.

use std::sync::Arc;

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::solver::{BiCgStab, Cg, Cgs, Fcg, Gmres, Ir, Minres, MixedIr};
use gko::stop::{Criteria, StopReason};
use gko::{Dim2, Executor};

/// SPD tridiagonal Poisson matrix, the shared test system.
fn poisson(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
    let mut triplets = Vec::new();
    for i in 0..n {
        triplets.push((i, i, 2.0));
        if i + 1 < n {
            triplets.push((i, i + 1, -1.0));
            triplets.push((i + 1, i, -1.0));
        }
    }
    Arc::new(Csr::from_triplets(exec, Dim2::new(n, n), &triplets).unwrap())
}

/// Runs `b -> x` through every solver and hands each final record to `check`.
fn for_each_solver(b: &Dense<f64>, check: impl Fn(&'static str, gko::log::SolveRecord)) {
    let exec = b.executor().clone();
    let n = b.size().rows;
    let a = poisson(&exec, n);
    let criteria = Criteria::iterations_and_reduction(50, 1e-8);

    macro_rules! run {
        ($name:literal, $solver:expr) => {{
            let solver = $solver;
            let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
            solver.apply(b, &mut x).unwrap();
            check($name, solver.logger().snapshot());
        }};
    }

    run!("cg", Cg::new(a.clone()).unwrap().with_criteria(criteria));
    run!("fcg", Fcg::new(a.clone()).unwrap().with_criteria(criteria));
    run!("cgs", Cgs::new(a.clone()).unwrap().with_criteria(criteria));
    run!(
        "bicgstab",
        BiCgStab::new(a.clone()).unwrap().with_criteria(criteria)
    );
    run!("gmres", Gmres::new(a.clone()).unwrap().with_criteria(criteria));
    run!("ir", Ir::new(a.clone()).unwrap().with_criteria(criteria));
    run!(
        "minres",
        Minres::new(a.clone()).unwrap().with_criteria(criteria)
    );
    run!(
        "mixed_ir",
        MixedIr::<f64, f32>::new(a).unwrap().with_criteria(criteria)
    );
}

#[test]
fn zero_rhs_converges_immediately_in_all_solvers() {
    let exec = Executor::reference();
    let b = Dense::<f64>::zeros(&exec, Dim2::new(24, 1));
    for_each_solver(&b, |name, rec| {
        assert_eq!(rec.iterations, 0, "{name}: zero RHS must cost no iterations");
        assert_eq!(
            rec.stop_reason,
            Some(StopReason::ResidualReduction),
            "{name}: zero baseline converges via the explicit contract"
        );
        assert!(rec.converged(), "{name}");
        assert_eq!(rec.final_residual, 0.0, "{name}");
    });
}

#[test]
fn non_finite_rhs_breaks_down_immediately_in_all_solvers() {
    let exec = Executor::reference();
    let mut b = Dense::<f64>::zeros(&exec, Dim2::new(24, 1));
    b.set(3, 0, f64::NAN);
    for_each_solver(&b, |name, rec| {
        assert_eq!(
            rec.stop_reason,
            Some(StopReason::Breakdown),
            "{name}: a poisoned baseline must break down, not iterate"
        );
        assert_eq!(rec.iterations, 0, "{name}");
        assert!(!rec.converged(), "{name}");
    });
}
